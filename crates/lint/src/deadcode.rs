//! Unreachable-block detection, dead-store detection (via backward
//! liveness) and the optional CFG-prune transform.
//!
//! The prune transform rewrites a program into a semantically equivalent
//! one with less work for downstream consumers (naive symbolic
//! exploration in `octo-symex`):
//!
//! * a `br`/`switch` whose scrutinee is a propagated constant becomes a
//!   plain `jmp` to the only successor that can execute;
//! * an `ijmp` whose target is a block-address constant becomes a `jmp`;
//! * blocks unreachable after the rewrite are *neutralised*: their body
//!   is replaced by a single `trap` and their terminator by a self-jump.
//!   Executing a neutralised block would crash loudly — by construction
//!   it cannot execute, and a loud failure is preferable to silently
//!   diverging semantics if the reachability argument were ever wrong.
//!
//! Functions containing an unresolved indirect jump are left untouched:
//! with edges missing from the recovered graph, "unreachable" cannot be
//! trusted.

use octo_cfg::FuncCfg;
use octo_ir::{BlockId, Function, Inst, Program, Reg, Terminator};

use crate::constprop::{self, ResolvedFlow};
use crate::dataflow::{reachable_blocks, solve, Analysis, BlockStates, Direction};

/// Backward liveness of registers for one function.
pub struct Liveness<'f> {
    func: &'f Function,
}

impl<'f> Liveness<'f> {
    /// Creates the analysis for `func`.
    pub fn new(func: &'f Function) -> Liveness<'f> {
        Liveness { func }
    }
}

impl Analysis for Liveness<'_> {
    type Fact = Vec<bool>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> Vec<bool> {
        vec![false; self.func.n_regs as usize]
    }

    fn init(&self) -> Vec<bool> {
        vec![false; self.func.n_regs as usize]
    }

    fn join(&self, into: &mut Vec<bool>, from: &Vec<bool>) -> bool {
        let mut changed = false;
        for (a, b) in into.iter_mut().zip(from.iter()) {
            if *b && !*a {
                *a = true;
                changed = true;
            }
        }
        changed
    }

    /// `fact` is the block's live-out set; the result is live-in.
    fn transfer(&self, block: BlockId, fact: &Vec<bool>) -> Vec<bool> {
        let b = &self.func.blocks[block.0 as usize];
        let mut live = fact.clone();
        for u in b.term.uses() {
            live[u.0 as usize] = true;
        }
        for inst in b.insts.iter().rev() {
            if let Some(d) = inst.def() {
                live[d.0 as usize] = false;
            }
            for u in inst.uses() {
                live[u.0 as usize] = true;
            }
        }
        live
    }
}

/// Whether `inst` is free of side effects besides its register write, so
/// that a dead destination makes the whole instruction dead.
pub fn is_pure(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Const { .. }
            | Inst::Move { .. }
            | Inst::Bin { .. }
            | Inst::Un { .. }
            | Inst::FuncAddr { .. }
            | Inst::BlockAddr { .. }
    )
}

/// One dead store: a pure instruction whose result is never read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadStore {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
    /// The register written in vain.
    pub reg: Reg,
}

/// Finds pure instructions in reachable blocks whose destination is dead.
///
/// Returns nothing when the function has unresolved indirect jumps — a
/// missing edge could hide the only reader.
pub fn dead_stores(func: &Function, cfg: &FuncCfg) -> Vec<DeadStore> {
    if !cfg.unresolved_indirect.is_empty() {
        return Vec::new();
    }
    let states: BlockStates<Vec<bool>> = solve(&Liveness::new(func), cfg);
    let reach = reachable_blocks(cfg);
    let mut out = Vec::new();
    for (bi, block) in func.blocks.iter().enumerate() {
        if !reach[bi] {
            continue;
        }
        // Walk backwards from the block's live-out set.
        let mut live = states.input[bi].clone();
        for u in block.term.uses() {
            live[u.0 as usize] = true;
        }
        for (i, inst) in block.insts.iter().enumerate().rev() {
            if let Some(d) = inst.def() {
                if is_pure(inst) && !live[d.0 as usize] {
                    out.push(DeadStore {
                        block: BlockId(bi as u32),
                        inst: i,
                        reg: d,
                    });
                }
                live[d.0 as usize] = false;
            }
            for u in inst.uses() {
                live[u.0 as usize] = true;
            }
        }
    }
    out.sort_by_key(|d| (d.block.0, d.inst));
    out
}

/// Blocks of `func` not reachable from its entry over `cfg`.
///
/// Empty when the function has unresolved indirect jumps (missing edges
/// make reachability an under-approximation).
pub fn unreachable(func: &Function, cfg: &FuncCfg) -> Vec<BlockId> {
    if !cfg.unresolved_indirect.is_empty() {
        return Vec::new();
    }
    let reach = reachable_blocks(cfg);
    (0..func.blocks.len())
        .filter(|b| !reach[*b])
        .map(|b| BlockId(b as u32))
        .collect()
}

/// What [`prune_program`] changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// `br`/`switch` terminators folded to `jmp`.
    pub branches_folded: usize,
    /// `ijmp` terminators folded to `jmp`.
    pub ijmps_folded: usize,
    /// Unreachable blocks neutralised.
    pub blocks_neutralized: usize,
}

/// Returns a pruned copy of `program` (see the module docs) along with
/// statistics. Block and function ids are preserved — consumers keep
/// their indices. Functions with unresolved indirect jumps, and programs
/// whose dynamic CFG cannot be recovered at all, are returned unchanged.
pub fn prune_program(program: &Program) -> (Program, PruneStats) {
    let mut pruned = program.clone();
    let mut stats = PruneStats::default();
    let Ok(cfg) = octo_cfg::build_cfg(program, octo_cfg::CfgMode::Dynamic) else {
        return (pruned, stats);
    };

    for (fid, func) in program.iter() {
        let fcfg = cfg.func(fid);
        if !fcfg.unresolved_indirect.is_empty() {
            continue;
        }
        let (_, flow): (_, ResolvedFlow) = constprop::analyze(func, fid, fcfg);
        let out = &mut pruned.funcs_mut()[fid.0 as usize];

        // Fold statically decided terminators.
        for (bid, target) in &flow.const_branches {
            out.blocks[bid.0 as usize].term = Terminator::Jmp(*target);
            stats.branches_folded += 1;
        }
        for (bid, target) in &flow.resolved_ijmps {
            out.blocks[bid.0 as usize].term = Terminator::Jmp(*target);
            stats.ijmps_folded += 1;
        }

        // Recompute reachability over the folded graph.
        let n = out.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = Vec::with_capacity(n);
        let addr_taken: Vec<BlockId> = out
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter_map(|i| match i {
                Inst::BlockAddr { block, .. } => Some(*block),
                _ => None,
            })
            .collect();
        for b in &out.blocks {
            match &b.term {
                Terminator::JmpIndirect { .. } => succs.push(addr_taken.clone()),
                t => succs.push(t.static_successors()),
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for s in &succs[b] {
                if !seen[s.0 as usize] {
                    seen[s.0 as usize] = true;
                    stack.push(s.0 as usize);
                }
            }
        }
        for (bi, block) in out.blocks.iter_mut().enumerate() {
            if !seen[bi] {
                block.insts = vec![Inst::Trap { code: 0xDEAD }];
                block.term = Terminator::Jmp(BlockId(bi as u32));
                stats.blocks_neutralized += 1;
            }
        }
    }
    (pruned, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_cfg::{build_cfg, CfgMode};
    use octo_ir::parse::parse_program;

    #[test]
    fn dead_store_found_and_live_store_kept() {
        let p = parse_program("func main() {\nentry:\n a = 1\n b = 2\n halt a\n}\n").unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let ds = dead_stores(p.func(p.entry()), cfg.func(p.entry()));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].inst, 1, "only `b = 2` is dead");
    }

    #[test]
    fn overwritten_store_is_dead() {
        let p = parse_program("func main() {\nentry:\n a = 1\n a = 2\n halt a\n}\n").unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let ds = dead_stores(p.func(p.entry()), cfg.func(p.entry()));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].inst, 0, "the first write never survives");
    }

    #[test]
    fn impure_insts_never_reported() {
        // The call result is unused but calls have effects.
        let p = parse_program(
            "func main() {\nentry:\n r = call f(1)\n halt 0\n}\n\
             func f(a) {\nentry:\n ret a\n}\n",
        )
        .unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        assert!(dead_stores(p.func(p.entry()), cfg.func(p.entry())).is_empty());
    }

    #[test]
    fn unreachable_block_listed() {
        let p = parse_program("func main() {\nentry:\n halt 0\ndead:\n halt 1\n}\n").unwrap();
        let cfg = build_cfg(&p, CfgMode::Dynamic).unwrap();
        let u = unreachable(p.func(p.entry()), cfg.func(p.entry()));
        assert_eq!(u, vec![BlockId(1)]);
    }

    #[test]
    fn prune_folds_constant_branch_and_neutralises_dead_arm() {
        let p = parse_program(
            "func main() {\nentry:\n c = eq 1, 1\n br c, yes, no\nyes:\n halt 0\n\
             no:\n halt 1\n}\n",
        )
        .unwrap();
        let (q, stats) = prune_program(&p);
        assert_eq!(stats.branches_folded, 1);
        assert_eq!(stats.blocks_neutralized, 1);
        let f = q.func(q.entry());
        let yes = f.block_by_label("yes").unwrap();
        assert_eq!(f.blocks[0].term, Terminator::Jmp(yes));
        let no = f.block_by_label("no").unwrap();
        assert!(matches!(
            f.blocks[no.0 as usize].insts.as_slice(),
            [Inst::Trap { .. }]
        ));
        assert!(octo_ir::validate::validate(&q).is_ok());
        // Execution is unchanged: both versions halt with 0.
        assert_eq!(
            octo_vm::Vm::new(&p, b"").run(),
            octo_vm::Vm::new(&q, b"").run()
        );
    }

    #[test]
    fn prune_folds_resolved_ijmp() {
        let p = parse_program("func main() {\nentry:\n t = baddr tgt\n ijmp t\ntgt:\n halt 0\n}\n")
            .unwrap();
        let (q, stats) = prune_program(&p);
        assert_eq!(stats.ijmps_folded, 1);
        let f = q.func(q.entry());
        let tgt = f.block_by_label("tgt").unwrap();
        assert_eq!(f.blocks[0].term, Terminator::Jmp(tgt));
    }

    #[test]
    fn unresolved_ijmp_function_untouched() {
        let p = parse_program(
            "func main() {\nentry:\n t = 0xB10C_0000_0000_0000\n ijmp t\ndead:\n halt 0\n}\n",
        )
        .unwrap();
        let (q, stats) = prune_program(&p);
        assert_eq!(stats, PruneStats::default());
        assert_eq!(&q, &p);
    }
}
