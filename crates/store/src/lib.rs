//! Crash-safe, content-addressed, disk-backed blob store — the durable
//! tier under the in-memory `ArtifactCache`.
//!
//! Design invariants, in priority order:
//!
//! 1. **Verification never fails because caching failed.** Every public
//!    operation is total: [`BlobStore::open`] cannot error (an unusable
//!    root degrades the store to memory-only with a one-time stderr
//!    warning), [`BlobStore::get`] answers corruption with a quarantine
//!    and a miss, and any I/O failure mid-run flips the whole store to
//!    degraded mode for the rest of the process.
//! 2. **No torn reads, ever.** Blobs are published by temp-file +
//!    atomic rename (`O_EXCL` temp names, so racing writers of the same
//!    key are last-writer-wins and never interleave). A reader sees
//!    either a complete frame or no file. A crash between temp write
//!    and rename leaves only an orphan `.tmp-*` file, which
//!    [`BlobStore::gc`] sweeps.
//! 3. **Trust nothing on disk.** Every blob carries a magic/version
//!    header, its own key, the payload length, and an FNV-1a checksum
//!    of the payload. Any anomaly — short file, bad magic, version
//!    skew, key mismatch, checksum mismatch — moves the file to
//!    `quarantine/` (for post-mortem inspection), emits a
//!    `cache_quarantined` trace event, and reads as a clean miss so the
//!    caller recomputes and re-writes: the store self-heals.
//!
//! On-disk layout under the root:
//!
//! ```text
//! root/
//!   index                     generation-stamped key index (advisory)
//!   shards/<hh>/<key16>.blob  blobs, sharded by top key byte
//!   quarantine/               corrupt blobs, renamed aside
//! ```
//!
//! The index is an optimization for `stats`/`gc`, not a source of
//! truth: it is rebuilt by a directory walk whenever it is missing or
//! disagrees with the shards on disk, so deleting it (or crashing
//! before it was rewritten) costs a walk, never correctness.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime};

use octo_faults::FaultSite;
use octo_obs::Histogram;
use octo_trace::TraceKind;

/// Magic bytes opening every blob frame.
pub const BLOB_MAGIC: [u8; 4] = *b"OCTB";
/// Frame format version (independent of the payload's own version).
pub const FRAME_VERSION: u32 = 1;
/// Frame header size: magic + version + key + payload len + checksum.
pub const FRAME_HEADER: usize = 4 + 4 + 8 + 8 + 8;

/// FNV-1a 64-bit — same constants as the scheduler's cache `KeyHasher`,
/// re-derived here so the bottom-layer store stays dependency-light.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Counters snapshot for reporting (`octopocs cache stats`, batch
/// metrics sync).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Frame-valid blob reads.
    pub hits: u64,
    /// Reads that found no blob (including reads while degraded).
    pub misses: u64,
    /// Blobs successfully published (temp write + rename completed).
    pub writes: u64,
    /// Corrupt frames detected (short file, bad magic/version/key,
    /// checksum mismatch) plus payloads the caller reported unparseable.
    pub corrupt: u64,
    /// Files moved to `quarantine/` (≤ corrupt: a vanished file counts
    /// corrupt but leaves nothing to move).
    pub quarantined: u64,
    /// Blobs currently indexed on disk.
    pub entries: u64,
    /// Whether the store has degraded to memory-only mode.
    pub degraded: bool,
    /// Current write generation (increments once per `open`).
    pub generation: u64,
}

/// Outcome of [`BlobStore::verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Blobs whose frame and checksum validated.
    pub valid: u64,
    /// Keys of corrupt blobs (frame or checksum anomalies).
    pub corrupt: Vec<u64>,
    /// Orphan temp files left by crashed writers.
    pub orphan_temps: u64,
}

/// Outcome of [`BlobStore::gc`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GcReport {
    /// Blobs removed by the generation/age policy.
    pub removed: u64,
    /// Blobs retained.
    pub kept: u64,
    /// Orphan temp files swept.
    pub temps_swept: u64,
}

/// Metric handles the embedding runtime can attach so blob I/O lands in
/// its registry histograms. Optional: a bare store records nothing.
#[derive(Default)]
struct Observers {
    read_micros: Option<Arc<Histogram>>,
    write_micros: Option<Arc<Histogram>>,
}

/// The disk blob store. All methods take `&self`; the store is shared
/// across worker threads behind an `Arc`.
pub struct BlobStore {
    root: PathBuf,
    degraded: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    quarantined: AtomicU64,
    temp_seq: AtomicU64,
    generation: u64,
    /// key → generation last written, mirrored to `root/index`.
    index: Mutex<BTreeMap<u64, u64>>,
    observers: Mutex<Observers>,
}

impl BlobStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// Never fails: if the directory tree cannot be created or probed,
    /// the store comes up in degraded (memory-only) mode — a one-time
    /// warning on stderr, every `get` a miss, every `put` a no-op.
    pub fn open(root: &Path) -> BlobStore {
        let mut store = BlobStore {
            root: root.to_path_buf(),
            degraded: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            temp_seq: AtomicU64::new(0),
            generation: 0,
            index: Mutex::new(BTreeMap::new()),
            observers: Mutex::new(Observers::default()),
        };
        if let Err(err) = fs::create_dir_all(store.shards_dir())
            .and_then(|()| fs::create_dir_all(store.quarantine_dir()))
        {
            store.degrade("creating store directories", &err.to_string());
            return store;
        }
        let (index, stored_generation) = store.load_or_rebuild_index();
        store.generation = stored_generation + 1;
        *store.index.lock().unwrap() = index;
        // Persist the bumped generation immediately so a crashed run
        // still ages its blobs; failure here just degrades like any
        // other write failure.
        store.flush_index();
        store
    }

    /// Attaches registry histograms for blob read/write latencies.
    pub fn attach_histograms(&self, read_micros: Arc<Histogram>, write_micros: Arc<Histogram>) {
        let mut obs = self.observers.lock().unwrap();
        obs.read_micros = Some(read_micros);
        obs.write_micros = Some(write_micros);
    }

    /// Whether the store has degraded to memory-only mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The write generation of this open (monotonic across opens).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Reads the payload stored under `key`.
    ///
    /// Returns `None` for a clean miss, a corrupt blob (quarantined as a
    /// side effect), or a degraded store — the caller recomputes in all
    /// three cases and cannot tell them apart except via [`stats`].
    ///
    /// [`stats`]: BlobStore::stats
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        if self.is_degraded() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let started = Instant::now();
        let path = self.blob_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(err) => {
                self.degrade("reading blob", &err.to_string());
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match validate_frame(&bytes, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.observe_read(started);
                Some(payload.to_vec())
            }
            Err(reason) => {
                self.quarantine_path(&path, key, &reason);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes `payload` under `key` via temp-file + atomic rename.
    ///
    /// Failures degrade the store; they are never reported to the
    /// caller, whose computed value is already in the memory tier.
    pub fn put(&self, key: u64, payload: &[u8]) {
        if self.is_degraded() {
            return;
        }
        let started = Instant::now();
        let final_path = self.blob_path(key);
        let Some(shard) = final_path.parent().map(Path::to_path_buf) else {
            return;
        };
        if let Err(err) = fs::create_dir_all(&shard) {
            self.degrade("creating shard directory", &err.to_string());
            return;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&BLOB_MAGIC);
        frame.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        frame.extend_from_slice(&key.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&fnv64(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        let temp = match self.write_temp(&shard, key, &frame) {
            Ok(temp) => temp,
            Err(err) => {
                self.degrade("writing temp blob", &err);
                return;
            }
        };
        // The crash-consistency window: a process dying here leaves an
        // orphan temp file and no published blob. The fault site lets
        // tests exercise exactly that interleaving deterministically.
        if octo_faults::should_inject(FaultSite::StoreRename) {
            return;
        }
        if let Err(err) = fs::rename(&temp, &final_path) {
            let _ = fs::remove_file(&temp);
            self.degrade("publishing blob", &err.to_string());
            return;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.index.lock().unwrap().insert(key, self.generation);
        self.observe_write(started);
    }

    /// Quarantines the blob under `key` on the caller's behalf — used
    /// when the *payload* fails to decode even though the frame (and so
    /// the checksum) was valid, e.g. a payload-version mismatch.
    pub fn quarantine(&self, key: u64) {
        if self.is_degraded() {
            return;
        }
        let path = self.blob_path(key);
        self.quarantine_path(&path, key, "payload rejected by decoder");
    }

    /// Counter snapshot plus liveness flags.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            entries: self.index.lock().unwrap().len() as u64,
            degraded: self.is_degraded(),
            generation: self.generation,
        }
    }

    /// Walks every blob re-validating its frame and checksum.
    /// Non-destructive: corrupt blobs are reported, not moved (the next
    /// `get` will quarantine them).
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for (key, path) in self.walk_blobs() {
            match fs::read(&path) {
                Ok(bytes) => match validate_frame(&bytes, key) {
                    Ok(_) => report.valid += 1,
                    Err(_) => report.corrupt.push(key),
                },
                Err(_) => report.corrupt.push(key),
            }
        }
        report.orphan_temps = self.walk_temps().len() as u64;
        report
    }

    /// Prunes blobs last written more than `keep_generations` opens ago
    /// and/or with mtime older than `max_age_secs`, and sweeps orphan
    /// temp files. `None` policies keep everything (temps are always
    /// swept — a live writer holds its temp for microseconds, gc runs
    /// between batches).
    pub fn gc(&self, keep_generations: Option<u64>, max_age_secs: Option<u64>) -> GcReport {
        let mut report = GcReport::default();
        let now = SystemTime::now();
        let mut index = self.index.lock().unwrap();
        for (key, path) in self.walk_blobs() {
            let generation = index.get(&key).copied().unwrap_or(0);
            let too_old_gen = keep_generations
                .map(|keep| generation + keep < self.generation)
                .unwrap_or(false);
            let too_old_age = max_age_secs
                .map(|secs| {
                    fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| now.duration_since(m).ok())
                        .map(|age| age.as_secs() > secs)
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            if too_old_gen || too_old_age {
                if fs::remove_file(&path).is_ok() {
                    index.remove(&key);
                    report.removed += 1;
                }
            } else {
                report.kept += 1;
            }
        }
        for temp in self.walk_temps() {
            if fs::remove_file(&temp).is_ok() {
                report.temps_swept += 1;
            }
        }
        drop(index);
        self.flush_index();
        report
    }

    /// Rewrites `root/index` from the in-memory index (atomic rename).
    /// Failure degrades the store like any other write failure.
    pub fn flush_index(&self) {
        if self.is_degraded() {
            return;
        }
        let index = self.index.lock().unwrap();
        let mut text = format!("octo-store-index v1\ngeneration {}\n", self.generation);
        for (key, generation) in index.iter() {
            text.push_str(&format!("{key:016x} {generation}\n"));
        }
        drop(index);
        let temp = self.root.join(format!(
            ".index-tmp-{}-{}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result =
            fs::write(&temp, text).and_then(|()| fs::rename(&temp, self.root.join("index")));
        if let Err(err) = result {
            let _ = fs::remove_file(&temp);
            self.degrade("writing index", &err.to_string());
        }
    }

    // ---------------------------------------------------------- internals

    fn shards_dir(&self) -> PathBuf {
        self.root.join("shards")
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn blob_path(&self, key: u64) -> PathBuf {
        self.shards_dir()
            .join(format!("{:02x}", key >> 56))
            .join(format!("{key:016x}.blob"))
    }

    fn write_temp(&self, shard: &Path, key: u64, frame: &[u8]) -> Result<PathBuf, String> {
        // O_EXCL temp names: two workers racing the same key each get
        // their own temp file, then race the rename — last writer wins
        // with both outcomes being complete frames.
        for _ in 0..8 {
            let temp = shard.join(format!(
                ".tmp-{key:016x}-{}-{}",
                std::process::id(),
                self.temp_seq.fetch_add(1, Ordering::Relaxed)
            ));
            let mut file = match OpenOptions::new().write(true).create_new(true).open(&temp) {
                Ok(file) => file,
                Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(err) => return Err(err.to_string()),
            };
            return file
                .write_all(frame)
                .and_then(|()| file.flush())
                .map(|()| temp.clone())
                .map_err(|err| {
                    let _ = fs::remove_file(&temp);
                    err.to_string()
                });
        }
        Err("could not reserve a temp name".to_string())
    }

    fn quarantine_path(&self, path: &Path, key: u64, reason: &str) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        let dest = self.quarantine_dir().join(format!(
            "{key:016x}-{}.blob",
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        match fs::rename(path, &dest) {
            Ok(()) => {
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                self.index.lock().unwrap().remove(&key);
                octo_trace::emit(TraceKind::CacheQuarantined { key });
                eprintln!(
                    "octo-store: quarantined corrupt blob {key:016x} ({reason}) -> {}",
                    dest.display()
                );
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                // Vanished between read and rename (e.g. a concurrent
                // quarantine): nothing left to move.
                self.index.lock().unwrap().remove(&key);
            }
            Err(err) => self.degrade("quarantining blob", &err.to_string()),
        }
    }

    /// Flips the store to memory-only mode, warning once on stderr.
    fn degrade(&self, what: &str, err: &str) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            eprintln!(
                "octo-store: {what} failed ({err}); disk cache at {} degraded to \
                 memory-only for the rest of this run",
                self.root.display()
            );
        }
    }

    /// `(key, path)` for every `<key16>.blob` under `shards/`.
    fn walk_blobs(&self) -> Vec<(u64, PathBuf)> {
        let mut blobs = Vec::new();
        let Ok(shards) = fs::read_dir(self.shards_dir()) else {
            return blobs;
        };
        for shard in shards.flatten() {
            let Ok(entries) = fs::read_dir(shard.path()) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if let Some(hex) = name.strip_suffix(".blob") {
                    if let Ok(key) = u64::from_str_radix(hex, 16) {
                        blobs.push((key, path));
                    }
                }
            }
        }
        blobs.sort_by_key(|(key, _)| *key);
        blobs
    }

    /// Orphan `.tmp-*` files under `shards/`.
    fn walk_temps(&self) -> Vec<PathBuf> {
        let mut temps = Vec::new();
        let Ok(shards) = fs::read_dir(self.shards_dir()) else {
            return temps;
        };
        for shard in shards.flatten() {
            let Ok(entries) = fs::read_dir(shard.path()) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(".tmp-"))
                {
                    temps.push(path);
                }
            }
        }
        temps
    }

    /// Loads `root/index`; rebuilds it from a shard walk when missing,
    /// unparseable, or disagreeing with the blobs actually on disk.
    /// Returns the index and the stored generation.
    fn load_or_rebuild_index(&self) -> (BTreeMap<u64, u64>, u64) {
        let on_disk = self.walk_blobs();
        if let Some((index, generation)) = self.parse_index() {
            let matches =
                index.len() == on_disk.len() && on_disk.iter().all(|(k, _)| index.contains_key(k));
            if matches {
                return (index, generation);
            }
            // Stale: keep known generations, adopt walked-but-unindexed
            // blobs at the stored generation (we cannot date them).
            let rebuilt = on_disk
                .iter()
                .map(|(k, _)| (*k, index.get(k).copied().unwrap_or(generation)))
                .collect();
            return (rebuilt, generation);
        }
        let generation = 0;
        (
            on_disk.iter().map(|(k, _)| (*k, generation)).collect(),
            generation,
        )
    }

    fn parse_index(&self) -> Option<(BTreeMap<u64, u64>, u64)> {
        let text = fs::read_to_string(self.root.join("index")).ok()?;
        let mut lines = text.lines();
        if lines.next()? != "octo-store-index v1" {
            return None;
        }
        let generation = lines.next()?.strip_prefix("generation ")?.parse().ok()?;
        let mut index = BTreeMap::new();
        for line in lines {
            let (hex, generation) = line.split_once(' ')?;
            index.insert(u64::from_str_radix(hex, 16).ok()?, generation.parse().ok()?);
        }
        Some((index, generation))
    }

    fn observe_read(&self, started: Instant) {
        if let Some(h) = &self.observers.lock().unwrap().read_micros {
            h.observe(elapsed_micros(started));
        }
    }

    fn observe_write(&self, started: Instant) {
        if let Some(h) = &self.observers.lock().unwrap().write_micros {
            h.observe(elapsed_micros(started));
        }
    }
}

impl Drop for BlobStore {
    fn drop(&mut self) {
        self.flush_index();
    }
}

fn elapsed_micros(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Validates a frame read from disk, returning the payload slice.
fn validate_frame(bytes: &[u8], key: u64) -> Result<&[u8], String> {
    if bytes.len() < FRAME_HEADER {
        return Err(format!("short file: {} bytes", bytes.len()));
    }
    if bytes[..4] != BLOB_MAGIC {
        return Err("bad magic".to_string());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FRAME_VERSION {
        return Err(format!("frame version {version}"));
    }
    let stored_key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if stored_key != key {
        return Err(format!("key mismatch: frame says {stored_key:016x}"));
    }
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload = &bytes[FRAME_HEADER..];
    if payload_len != payload.len() as u64 {
        return Err(format!(
            "length mismatch: header says {payload_len}, file holds {}",
            payload.len()
        ));
    }
    let checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    if checksum != fnv64(payload) {
        return Err("checksum mismatch".to_string());
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("octo-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips_across_opens() {
        let root = temp_root("roundtrip");
        {
            let store = BlobStore::open(&root);
            store.put(0xabcd, b"hello blob");
            assert_eq!(store.get(0xabcd).as_deref(), Some(&b"hello blob"[..]));
            let stats = store.stats();
            assert_eq!((stats.hits, stats.writes, stats.entries), (1, 1, 1));
            assert!(!stats.degraded);
        }
        // A fresh open (warm start) sees the blob and a bumped generation.
        let store = BlobStore::open(&root);
        assert_eq!(store.get(0xabcd).as_deref(), Some(&b"hello blob"[..]));
        assert_eq!(store.generation(), 2);
        assert_eq!(store.get(0x1234), None, "unknown key is a clean miss");
        assert_eq!(store.stats().misses, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bit_flip_quarantines_and_self_heals() {
        let root = temp_root("bitflip");
        let store = BlobStore::open(&root);
        store.put(7, b"payload bytes");
        let path = store.blob_path(7);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        assert_eq!(store.get(7), None, "corrupt blob must read as a miss");
        let stats = store.stats();
        assert_eq!((stats.corrupt, stats.quarantined), (1, 1));
        assert!(!path.exists(), "corrupt blob moved aside");
        assert_eq!(
            fs::read_dir(root.join("quarantine")).unwrap().count(),
            1,
            "quarantine holds the evidence"
        );
        // Self-heal: recompute (the caller's job) and re-write.
        store.put(7, b"payload bytes");
        assert_eq!(store.get(7).as_deref(), Some(&b"payload bytes"[..]));
        assert!(!store.is_degraded());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncation_and_bad_magic_quarantine() {
        let root = temp_root("truncate");
        let store = BlobStore::open(&root);
        store.put(1, b"aaaa");
        store.put(2, b"bbbb");
        let p1 = store.blob_path(1);
        let bytes = fs::read(&p1).unwrap();
        fs::write(&p1, &bytes[..FRAME_HEADER - 3]).unwrap();
        let p2 = store.blob_path(2);
        let mut bytes = fs::read(&p2).unwrap();
        bytes[0] = b'X';
        fs::write(&p2, &bytes).unwrap();
        assert_eq!(store.get(1), None);
        assert_eq!(store.get(2), None);
        assert_eq!(store.stats().quarantined, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unusable_root_degrades_instead_of_failing() {
        let file = std::env::temp_dir().join(format!("octo-store-flat-{}", std::process::id()));
        fs::write(&file, b"not a directory").unwrap();
        let store = BlobStore::open(&file);
        assert!(store.is_degraded());
        store.put(1, b"dropped");
        assert_eq!(store.get(1), None);
        let stats = store.stats();
        assert_eq!((stats.writes, stats.misses), (0, 1));
        assert_eq!(
            fs::read(&file).unwrap(),
            b"not a directory",
            "target untouched"
        );
        let _ = fs::remove_file(&file);
    }

    #[test]
    fn verify_reports_corruption_without_moving_it() {
        let root = temp_root("verify");
        let store = BlobStore::open(&root);
        for key in 0..5u64 {
            store.put(key, format!("payload {key}").as_bytes());
        }
        let path = store.blob_path(3);
        let mut bytes = fs::read(&path).unwrap();
        bytes[FRAME_HEADER] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let report = store.verify();
        assert_eq!(report.valid, 4);
        assert_eq!(report.corrupt, vec![3]);
        assert!(path.exists(), "verify is non-destructive");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_prunes_by_generation_and_sweeps_temps() {
        let root = temp_root("gc");
        {
            let store = BlobStore::open(&root); // generation 1
            store.put(10, b"old");
        }
        let store = BlobStore::open(&root); // generation 2
        store.put(20, b"new");
        // An orphan temp from a "crashed" writer.
        let shard = store.blob_path(10);
        fs::write(shard.parent().unwrap().join(".tmp-deadbeef-1-1"), b"orphan").unwrap();

        let report = store.gc(Some(0), None); // keep current generation only
        assert_eq!((report.removed, report.kept, report.temps_swept), (1, 1, 1));
        assert_eq!(store.get(10), None);
        assert_eq!(store.get(20).as_deref(), Some(&b"new"[..]));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn index_rebuilds_after_deletion() {
        let root = temp_root("index");
        {
            let store = BlobStore::open(&root);
            store.put(0xff00, b"x");
            store.put(0x00ff, b"y");
        }
        fs::remove_file(root.join("index")).unwrap();
        let store = BlobStore::open(&root);
        assert_eq!(store.stats().entries, 2, "index rebuilt from shard walk");
        assert_eq!(store.get(0xff00).as_deref(), Some(&b"x"[..]));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn racing_writers_leave_a_complete_frame() {
        let root = temp_root("race");
        let store = Arc::new(BlobStore::open(&root));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    // Same key, same payload — like two workers preparing
                    // the same artifact.
                    let _ = i;
                    store.put(42, b"identical artifact payload");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            store.get(42).as_deref(),
            Some(&b"identical artifact payload"[..])
        );
        assert_eq!(store.stats().corrupt, 0);
        let _ = fs::remove_dir_all(&root);
    }
}
