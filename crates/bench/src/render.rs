//! Plain-text table rendering.

/// Renders `rows` under `headers` as an aligned plain-text table, matching
/// the row/column structure of the paper's tables.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&sep);
    out.push('\n');
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    " {:<width$} ",
                    c,
                    width = widths.get(i).copied().unwrap_or(0)
                )
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render_table(
            "Table X",
            &["Idx", "Name"],
            &[
                vec!["1".into(), "short".into()],
                vec!["12".into(), "a much longer name".into()],
            ],
        );
        assert!(t.contains("Table X"));
        assert!(t.contains("| a much longer name"));
        // Every data line has the same width.
        let lines: Vec<&str> = t.lines().skip(1).collect();
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{t}");
    }

    #[test]
    fn empty_rows_render_headers_only() {
        let t = render_table("T", &["A"], &[]);
        assert!(t.contains('A'));
    }
}
