//! Minimal JSON emit/parse for the table row types.
//!
//! The offline build cannot fetch `serde`/`serde_json`, and the row types
//! are flat records of strings, numbers, bools and optionals — a
//! dependency-free emitter plus a small flat-object parser covers the
//! whole need (pretty output for the table binaries, a parser so the
//! serialisation round-trip stays testable).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON scalar as used by the row types.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON string.
    Str(String),
    /// JSON number (all row numerics fit f64).
    Num(f64),
    /// JSON boolean.
    Bool(bool),
    /// JSON null (optional cells).
    Null,
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Rows that can emit themselves as ordered `(key, value)` JSON fields.
pub trait JsonRow {
    /// The row's fields in declaration order.
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)>;
}

/// Escapes `s` as the body of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_value(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        JsonValue::Num(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Null => out.push_str("null"),
    }
}

/// Serialises one row as a compact JSON object.
pub fn to_json<R: JsonRow>(row: &R) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in row.json_fields().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        write_value(&mut out, v);
    }
    out.push('}');
    out
}

/// Serialises a slice of rows as a pretty-printed JSON array (2-space
/// indent), the shape `serde_json::to_string_pretty` produced before.
pub fn to_json_pretty<R: JsonRow>(rows: &[R]) -> String {
    if rows.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (ri, row) in rows.iter().enumerate() {
        out.push_str("  {\n");
        let fields = row.json_fields();
        for (fi, (k, v)) in fields.iter().enumerate() {
            let _ = write!(out, "    \"{k}\": ");
            write_value(&mut out, v);
            if fi + 1 < fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }");
        if ri + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Parses one flat JSON object (`{"k": scalar, ...}`) into a field map.
/// Nested objects/arrays are out of scope — the row types have none.
pub fn parse_object(input: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(map);
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.parse_scalar()?;
        map.insert(key, value);
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", b as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(first) => {
                    // Multi-byte UTF-8: collect the full sequence.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s =
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            }
            other => Err(format!("unexpected scalar start {other:?}")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("expected literal {lit}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo;

    impl JsonRow for Demo {
        fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
            vec![
                ("name", JsonValue::Str("a \"quoted\" name".into())),
                ("count", JsonValue::Num(3.0)),
                ("ok", JsonValue::Bool(true)),
                ("missing", JsonValue::Null),
            ]
        }
    }

    #[test]
    fn emit_and_parse_round_trip() {
        let json = to_json(&Demo);
        let map = parse_object(&json).expect("parses");
        assert_eq!(map["name"].as_str(), Some("a \"quoted\" name"));
        assert_eq!(map["count"].as_num(), Some(3.0));
        assert_eq!(map["ok"].as_bool(), Some(true));
        assert!(map["missing"].is_null());
    }

    #[test]
    fn pretty_array_shape() {
        let text = to_json_pretty(&[Demo, Demo]);
        assert!(text.starts_with("[\n  {\n"));
        assert!(text.ends_with("  }\n]"));
        assert_eq!(text.matches("\"name\"").count(), 2);
        assert_eq!(to_json_pretty::<Demo>(&[]), "[]");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_object("{\"a\" 1}").is_err());
        assert!(parse_object("{\"a\": }").is_err());
        assert!(parse_object("[1]").is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        struct U;
        impl JsonRow for U {
            fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
                vec![("s", JsonValue::Str("héllo → 世界".into()))]
            }
        }
        let map = parse_object(&to_json(&U)).expect("parses");
        assert_eq!(map["s"].as_str(), Some("héllo → 世界"));
    }
}
