//! # octo-bench — the benchmark harness regenerating the paper's tables.
//!
//! One binary per evaluation artefact (see `DESIGN.md`, experiment index):
//!
//! | binary | artefact |
//! |---|---|
//! | `table2` | Table II — verification results for the 15 pairs (add `--latest` for the §V-B latest-version findings) |
//! | `table3` | Table III — context-aware vs context-free taint analysis |
//! | `table4` | Table IV — naive vs directed symbolic execution |
//! | `table5` | Table V — AFLFast / AFLGo / OctoPoCs time-to-verdict (`--full` for the paper's 20-hour virtual budget) |
//! | `survey` | §II-A PoC-type survey percentages |
//!
//! The library half holds the row types (serialisable via the
//! dependency-free [`json`] module) and plain-text table rendering shared
//! by the binaries and the Criterion benches.
#![warn(missing_docs)]

pub mod json;
pub mod render;
pub mod rows;

pub use render::render_table;
pub use rows::*;
