//! Measures the disk artifact cache's warm-start payoff on the corpus
//! batch: wall time against a **cold** (empty) cache directory versus a
//! **warm** one pre-seeded by a full prior run. Each mode runs the
//! whole 15-pair corpus several times and keeps the best wall time
//! (minimum is the standard noise-robust statistic for this shape of
//! benchmark); a discarded first pass seeds the warm directory.
//!
//! ```text
//! cargo run --release -p octo-bench --bin cache_warm [-- --out PATH]
//! ```
//!
//! Writes the rows as JSON to `--out` (default `BENCH_cache.json` in
//! the current directory) and prints them as a table. The acceptance
//! target is warm strictly faster than cold — CI asserts it.

use octo_bench::{render_table, CacheWarmRow};
use octo_sched::NullSink;
use octopocs::batch::{run_batch, BatchJob, BatchOptions};
use octopocs::PipelineConfig;

const ITERATIONS: usize = 3;
const WORKERS: usize = 4;

fn corpus_jobs() -> Vec<BatchJob> {
    octo_corpus::all_pairs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.display_name(),
            s: p.s,
            t: p.t,
            poc: p.poc,
            shared: p.shared,
        })
        .collect()
}

/// One corpus batch against `cache_dir`. Returns (wall seconds,
/// disk hits, disk writes).
fn run_once(jobs: &[BatchJob], cache_dir: &std::path::Path) -> (f64, u64, u64) {
    let options = BatchOptions {
        workers: WORKERS,
        cache_dir: Some(cache_dir.to_path_buf()),
        ..BatchOptions::default()
    };
    let start = std::time::Instant::now();
    let report = run_batch(jobs, &PipelineConfig::default(), &options, &NullSink);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(report.entries.len(), jobs.len());
    let disk = report.disk.expect("disk stats with a cache dir");
    assert!(!disk.degraded, "bench cache dir must be writable");
    (seconds, disk.hits, disk.writes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_cache.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out").clone(),
            other => {
                eprintln!("unknown flag `{other}` (usage: cache_warm [--out PATH])");
                std::process::exit(3);
            }
        }
    }

    let jobs = corpus_jobs();
    let scratch = std::env::temp_dir().join(format!("octopocs-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Cold: a fresh, empty directory every iteration.
    let mut cold_best = f64::INFINITY;
    let mut cold_writes = 0u64;
    for i in 0..ITERATIONS {
        let dir = scratch.join(format!("cold-{i}"));
        let (seconds, _hits, writes) = run_once(&jobs, &dir);
        if seconds < cold_best {
            cold_best = seconds;
            cold_writes = writes;
        }
    }

    // Warm: one discarded pass seeds the directory, then every
    // measured pass reads the same blobs back.
    let warm_dir = scratch.join("warm");
    let _ = run_once(&jobs, &warm_dir);
    let mut warm_best = f64::INFINITY;
    let mut warm_hits = 0u64;
    for _ in 0..ITERATIONS {
        let (seconds, hits, _writes) = run_once(&jobs, &warm_dir);
        if seconds < warm_best {
            warm_best = seconds;
            warm_hits = hits;
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let rows = vec![
        CacheWarmRow {
            mode: "cold".to_string(),
            seconds: cold_best,
            disk_hits: 0,
            disk_writes: cold_writes,
            saving_pct: 0.0,
        },
        CacheWarmRow {
            mode: "warm".to_string(),
            seconds: warm_best,
            disk_hits: warm_hits,
            disk_writes: 0,
            saving_pct: (1.0 - warm_best / cold_best) * 100.0,
        },
    ];

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.4}", r.seconds),
                r.disk_hits.to_string(),
                r.disk_writes.to_string(),
                format!("{:+.2}", r.saving_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Disk-cache warm start on the corpus batch (best of 3)",
            &["mode", "seconds", "disk hits", "disk writes", "saving %"],
            &cells,
        )
    );
    let json = octo_bench::json::to_json_pretty(&rows);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error writing {out_path}: {e}");
        std::process::exit(3);
    }
    println!("rows written to {out_path}");
}
