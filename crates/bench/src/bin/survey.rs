//! Regenerates the **§II-A PoC-type survey**: of the CVEs reported
//! 2016–2019 with Bugzilla references, how many shipped a PoC and what
//! type it was — the basis for OctoPoCs targeting malformed-file PoCs.
//!
//! ```text
//! cargo run --release -p octo-bench --bin survey
//! ```

use octo_bench::render_table;
use octo_corpus::{summarize, survey_records};

fn main() {
    let records = survey_records();
    let summary = summarize(&records);
    let mut cells: Vec<Vec<String>> = summary
        .by_type
        .iter()
        .map(|(ty, n)| {
            vec![
                ty.label().to_string(),
                n.to_string(),
                format!("{:.1}%", 100.0 * *n as f64 / summary.with_poc as f64),
            ]
        })
        .collect();
    cells.push(vec![
        "total with PoC".into(),
        summary.with_poc.to_string(),
        "100.0%".into(),
    ]);
    println!(
        "{}",
        render_table(
            "§II-A — PoC types among 2016–2019 CVEs with Bugzilla references",
            &["PoC type", "count", "share"],
            &cells,
        )
    );
    println!(
        "CVEs surveyed: {}; with PoC: {}; malformed-file share: {:.0}%",
        summary.total,
        summary.with_poc,
        100.0 * summary.malformed_file_share
    );
}
