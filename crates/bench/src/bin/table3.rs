//! Regenerates **Table III**: effectiveness of context-aware taint
//! analysis.
//!
//! The nine triggerable pairs (Idx 1–9) are verified twice — once with the
//! paper's context-aware extraction and once with the context-free
//! baseline ("taint analysis without context information"). The paper
//! found the baseline fails on three of nine (the multi-`ep`-entry pairs);
//! the reproduction must show the same split.
//!
//! ```text
//! cargo run --release -p octo-bench --bin table3 [-- --json]
//! ```

use octo_bench::{ox, render_table, Table3Row};
use octo_corpus::all_pairs;
use octopocs::{verify, PipelineConfig, SoftwarePairInput, Verdict};

fn triggered(verdict: &Verdict) -> bool {
    matches!(verdict, Verdict::Triggered { .. })
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows = Vec::new();
    for pair in all_pairs()
        .into_iter()
        .filter(|p| p.expected.poc_generated())
    {
        let input = SoftwarePairInput {
            s: &pair.s,
            t: &pair.t,
            poc: &pair.poc,
            shared: &pair.shared,
        };
        let aware = verify(&input, &PipelineConfig::default());
        let plain = verify(&input, &PipelineConfig::default().context_free());
        rows.push(Table3Row {
            idx: pair.idx,
            s: pair.s_name.to_string(),
            t: pair.t_name.to_string(),
            plain_taint_ok: triggered(&plain.verdict),
            context_aware_ok: triggered(&aware.verdict),
        });
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.idx.to_string(),
                r.s.clone(),
                r.t.clone(),
                ox(r.plain_taint_ok),
                ox(r.context_aware_ok),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table III — Effectiveness of context-aware taint analysis (reproduction)",
            &[
                "Idx",
                "S",
                "T",
                "Taint analysis†",
                "Context-aware taint analysis"
            ],
            &cells,
        )
    );
    println!("†: taint analysis without context information.");
    let plain_fail = rows.iter().filter(|r| !r.plain_taint_ok).count();
    let aware_ok = rows.iter().filter(|r| r.context_aware_ok).count();
    println!(
        "context-free fails on {plain_fail}/{} pairs; context-aware succeeds on {aware_ok}/{}",
        rows.len(),
        rows.len()
    );
    if json {
        println!("{}", octo_bench::json::to_json_pretty(&rows));
    }
}
