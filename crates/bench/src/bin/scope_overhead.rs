//! Measures the octo-scope observability-plane cost on the corpus run
//! through the in-process daemon: wall time with the plane **off**
//! (daemon only — no HTTP listener, no sampler) versus **scope** (a
//! live HTTP listener answering a `/metrics` + `/jobs/<id>` scrape
//! every 10 ms, plus the rate sampler snapshotting the registry every
//! 100 ms). Each mode runs the whole 15-pair corpus several times and
//! keeps the best wall time.
//!
//! ```text
//! cargo run --release -p octo-bench --bin scope_overhead [-- --out PATH]
//! ```
//!
//! Writes the rows as JSON to `--out` (default `BENCH_scope.json` in
//! the current directory) and prints them as a table. The acceptance
//! budget is scope-mode overhead within 3% of the plane-off baseline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use octo_bench::{render_table, ScopeOverheadRow};
use octo_obs::RateRecorder;
use octo_sched::CancelToken;
use octo_serve::{Daemon, Priority};
use octopocs::batch::{BatchJob, BatchOptions};
use octopocs::{batch_job_to_spec, PipelineConfig, ServeExecutor};

const ITERATIONS: usize = 3;
const WORKERS: usize = 4;
const SAMPLE_INTERVAL: Duration = Duration::from_millis(100);
const SCRAPE_INTERVAL: Duration = Duration::from_millis(10);

fn corpus_jobs() -> Vec<BatchJob> {
    octo_corpus::all_pairs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.display_name(),
            s: p.s,
            t: p.t,
            poc: p.poc,
            shared: p.shared,
        })
        .collect()
}

/// Runs the corpus once through an in-process daemon and returns
/// (wall seconds, scrapes served, sampler snapshots). `scope` turns the
/// HTTP plane plus its scrape/sample pressure on.
fn run_once(jobs: &[BatchJob], scope: bool) -> (f64, u64, u64) {
    let config = PipelineConfig::default();
    let options = BatchOptions {
        workers: WORKERS,
        ..BatchOptions::default()
    };
    let executor = Arc::new(ServeExecutor::new(&config, &options));
    let daemon = Daemon::new(executor.clone(), None, jobs.len().max(1));

    let stop = CancelToken::new();
    let mut pressure = Vec::new();
    let scrapes = Arc::new(AtomicU64::new(0));
    let samples = Arc::new(AtomicU64::new(0));
    if scope {
        let listener = octo_serve::bind_http("127.0.0.1:0").expect("bind http");
        let addr = listener.local_addr().expect("local addr").to_string();
        let rates = Arc::new(RateRecorder::new(64));
        {
            let daemon = daemon.clone();
            let stop = stop.clone();
            let rates = Arc::clone(&rates);
            pressure.push(std::thread::spawn(move || {
                octo_serve::serve_http(&daemon, Some(rates), listener, &stop);
            }));
        }
        {
            let executor = Arc::clone(&executor);
            let stop = stop.clone();
            let rates = Arc::clone(&rates);
            let samples = Arc::clone(&samples);
            pressure.push(std::thread::spawn(move || {
                let started = std::time::Instant::now();
                while !stop.is_cancelled() {
                    executor.sample_rates(&rates, started.elapsed().as_micros() as u64);
                    samples.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(SAMPLE_INTERVAL);
                }
            }));
        }
        {
            let stop = stop.clone();
            let scrapes = Arc::clone(&scrapes);
            pressure.push(std::thread::spawn(move || {
                // A continuous scraper: alternate the exposition scrape
                // with a timeline fetch every 10 ms — two orders of
                // magnitude denser than any real Prometheus interval.
                let mut flip = false;
                while !stop.is_cancelled() {
                    let path = if flip { "/jobs/1" } else { "/metrics" };
                    flip = !flip;
                    if octo_serve::http_get(&addr, path, Duration::from_secs(5)).is_ok() {
                        scrapes.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(SCRAPE_INTERVAL);
                }
            }));
        }
    }

    let start = std::time::Instant::now();
    for job in jobs {
        daemon
            .submit(batch_job_to_spec(job, Priority::Bulk))
            .expect("submit");
    }
    let workers = daemon.start_workers(WORKERS);
    daemon.wait_idle();
    let seconds = start.elapsed().as_secs_f64();

    stop.cancel();
    daemon.drain();
    for w in workers {
        w.join().expect("worker");
    }
    for t in pressure {
        t.join().expect("pressure thread");
    }
    (
        seconds,
        scrapes.load(Ordering::Relaxed),
        samples.load(Ordering::Relaxed),
    )
}

/// Best-of-N for both modes, interleaved off/scope/off/scope so slow
/// machine-level drift (page cache, thermals, co-tenants) lands on
/// both modes evenly instead of biasing whichever ran last.
fn run_modes(jobs: &[BatchJob]) -> [(f64, u64, u64); 2] {
    // One discarded warmup pays the lazy costs (page cache, allocator
    // warm pools) outside the measurement.
    let _ = run_once(jobs, false);
    let mut best = [(f64::INFINITY, 0, 0), (f64::INFINITY, 0, 0)];
    for _ in 0..ITERATIONS {
        for (slot, scope) in [(0, false), (1, true)] {
            let run = run_once(jobs, scope);
            if run.0 < best[slot].0 {
                best[slot] = run;
            }
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_scope.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out").clone(),
            other => {
                eprintln!("unknown flag `{other}` (usage: scope_overhead [--out PATH])");
                std::process::exit(3);
            }
        }
    }

    let jobs = corpus_jobs();
    let measured = run_modes(&jobs);
    let mut rows: Vec<ScopeOverheadRow> = Vec::new();
    let mut baseline = 0.0;
    for (slot, mode) in ["off", "scope"].into_iter().enumerate() {
        let (seconds, scrapes, samples) = measured[slot];
        if mode == "off" {
            baseline = seconds;
        }
        let overhead_pct = if baseline > 0.0 {
            (seconds / baseline - 1.0) * 100.0
        } else {
            0.0
        };
        rows.push(ScopeOverheadRow {
            mode: mode.to_string(),
            seconds,
            scrapes,
            samples,
            overhead_pct,
        });
    }

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.4}", r.seconds),
                r.scrapes.to_string(),
                r.samples.to_string(),
                format!("{:+.2}", r.overhead_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "octo-scope overhead on the daemon corpus (best of 3)",
            &["mode", "seconds", "scrapes", "samples", "overhead %"],
            &cells,
        )
    );
    let json = octo_bench::json::to_json_pretty(&rows);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error writing {out_path}: {e}");
        std::process::exit(3);
    }
    println!("rows written to {out_path}");
}
