//! Exports the 15-pair corpus to disk as MicroIR assembly plus PoC files,
//! in the layout the `octopocs` CLI consumes:
//!
//! ```text
//! cargo run --release -p octo-bench --bin export_corpus -- [out_dir]
//! ```
//!
//! produces `out_dir/idx_NN/{s.mir,t.mir,poc.bin,shared.txt,meta.txt}` for
//! every Table II row, so the end-to-end tool can be exercised by hand:
//!
//! ```text
//! octopocs --s idx_08/s.mir --t idx_08/t.mir --poc idx_08/poc.bin \
//!          --shared $(cat idx_08/shared.txt)
//! ```

use std::path::Path;

use octo_corpus::all_pairs;
use octo_ir::printer::print_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "corpus_out".to_string());
    let out = Path::new(&out_dir);
    std::fs::create_dir_all(out)?;

    for pair in all_pairs() {
        let dir = out.join(format!("idx_{:02}", pair.idx));
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join("s.mir"), print_program(&pair.s))?;
        std::fs::write(dir.join("t.mir"), print_program(&pair.t))?;
        std::fs::write(dir.join("poc.bin"), pair.poc.bytes())?;
        std::fs::write(dir.join("shared.txt"), pair.shared.join(","))?;
        std::fs::write(
            dir.join("meta.txt"),
            format!(
                "idx: {}\nS: {} {}\nT: {} {}\nvulnerability: {} ({})\nexpected: {}\n",
                pair.idx,
                pair.s_name,
                pair.s_version,
                pair.t_name,
                pair.t_version,
                pair.vuln_id,
                pair.cwe,
                pair.expected.label(),
            ),
        )?;
    }
    println!("corpus exported to {}", out.display());
    Ok(())
}
