//! Regenerates **Table V**: elapsed time to verify the propagated
//! vulnerability — AFLFast vs AFLGo vs OctoPoCs.
//!
//! The fuzzers run on the deterministic virtual clock; the paper gave them
//! 20 wall-clock hours. The default budget here is a scaled-down 2 virtual
//! hours (the outcome shape is identical — the magic-gated targets are
//! cracked at ~10⁻¹⁰ per execution, so neither 2 nor 20 hours finds them);
//! pass `--full` for the paper's full 20-hour virtual budget.
//!
//! ```text
//! cargo run --release -p octo-bench --bin table5 [-- --full] [--json]
//! ```

use octo_bench::{render_table, secs, Table5Row};
use octo_corpus::{all_pairs, SoftwarePair};
use octo_fuzz::{run_aflfast, run_aflgo, FuzzConfig, FuzzOutcome, FuzzTarget};
use octo_poc::formats::{mini_gif, mini_j2k, mini_pdf};
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

/// The comparison set (same as Table IV): Idx 7, 8, 9.
pub const COMPARISON_IDXS: [u32; 3] = [7, 8, 9];

/// A well-formed seed file for each fuzz target (fuzzers start from a
/// valid input, as AFL practice dictates).
fn seed_for(idx: u32) -> Vec<u8> {
    match idx {
        // opj_dump: a valid single-component J2K.
        7 => mini_j2k::Builder::new()
            .components(1)
            .tile(8, 8)
            .data(&[1, 2, 3, 4])
            .build(),
        // MuPDF: a valid PDF with options block and an embedded valid J2K.
        8 => {
            let img = mini_j2k::Builder::new().components(1).tile(8, 8).build();
            let pdf = mini_pdf::Builder::new()
                .object(mini_pdf::OBJ_IMAGE, &img)
                .build();
            // The MuPDF driver expects 16 option-flag bytes between the
            // version and the object count.
            let mut seeded = pdf[..5].to_vec();
            seeded.extend_from_slice(&[0u8; 16]);
            seeded.extend_from_slice(&pdf[5..]);
            seeded
        }
        // gif2png (artificial): a strictly valid GIF.
        9 => mini_gif::Builder::new().block(&[1, 2, 3]).build(),
        _ => unreachable!("comparison set is idx 7/8/9"),
    }
}

fn run_row(pair: &SoftwarePair, budget_secs: f64) -> Table5Row {
    let shared = pair.t.resolve_names(pair.shared.iter().map(String::as_str));
    let target = FuzzTarget {
        program: &pair.t,
        shared: shared.clone(),
        limits: octo_vm::Limits::default(),
    };
    let seeds = vec![seed_for(pair.idx)];
    let config = FuzzConfig {
        budget_virtual_secs: budget_secs,
        ..FuzzConfig::default()
    };

    // The two fuzzing campaigns are independent and deterministic on the
    // virtual clock — run them on scoped threads.
    eprintln!("  [{}] AFLFast + AFLGo ...", pair.t_name);
    let ep_t = pair.t.func_by_name(&pair.shared[0]).expect("ep in T");
    let (aflfast, aflgo) = std::thread::scope(|scope| {
        let fast = scope.spawn(|| run_aflfast(&target, &seeds, config));
        let go = scope.spawn(|| run_aflgo(&target, ep_t, &seeds, config));
        (fast.join().expect("aflfast"), go.join().expect("aflgo"))
    });

    eprintln!("  [{}] OctoPoCs ...", pair.t_name);
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    let t0 = std::time::Instant::now();
    let report = verify(&input, &PipelineConfig::default());
    assert!(
        report.verdict.poc_generated(),
        "OctoPoCs must verify Idx-{}: {:?}",
        pair.idx,
        report.verdict
    );
    let octo_seconds = t0.elapsed().as_secs_f64();

    let (aflgo_seconds, aflgo_error) = match aflgo {
        FuzzOutcome::CrashFound { stats, .. } => (Some(stats.virtual_seconds), None),
        FuzzOutcome::BudgetExhausted { .. } => (None, None),
        FuzzOutcome::ToolError { message } => (None, Some(message)),
    };
    Table5Row {
        s: pair.s_name.to_string(),
        t: pair.t_name.to_string(),
        aflfast_seconds: aflfast.time_to_crash(),
        aflgo_seconds,
        aflgo_error,
        octopocs_seconds: octo_seconds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let budget = if args.iter().any(|a| a == "--full") {
        72_000.0 // the paper's 20 hours
    } else {
        7_200.0 // scaled: 2 virtual hours
    };
    eprintln!("fuzzing budget: {budget} virtual seconds per campaign");

    let mut rows = Vec::new();
    for idx in COMPARISON_IDXS {
        let pair = all_pairs().into_iter().find(|p| p.idx == idx).expect("idx");
        rows.push(run_row(&pair, budget));
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let aflgo_cell = match (&r.aflgo_error, r.aflgo_seconds) {
                (Some(_), _) => "Error†".to_string(),
                (None, s) => secs(s),
            };
            vec![
                r.s.clone(),
                r.t.clone(),
                secs(r.aflfast_seconds),
                aflgo_cell,
                format!("{:.2}", r.octopocs_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table V — Elapsed time (s) for verifying the propagated vulnerability (reproduction)",
            &["S", "T", "AFLFast*", "AFLGo*", "OctoPoCs"],
            &cells,
        )
    );
    println!(
        "*: fuzzer virtual budget {budget} s; †: cannot execute due to tool error \
         (static CFG cannot reach the target)."
    );
    if json {
        println!("{}", octo_bench::json::to_json_pretty(&rows));
    }
}
