//! Measures the flight-recorder cost on the corpus batch: wall time with
//! the recorder **off**, recording into the **ring**, and recording plus
//! a **chrome-export** render. Each mode runs the whole 15-pair corpus
//! several times and keeps the best wall time (minimum is the standard
//! noise-robust statistic for this shape of benchmark).
//!
//! ```text
//! cargo run --release -p octo-bench --bin trace_overhead [-- --out PATH]
//! ```
//!
//! Writes the rows as JSON to `--out` (default `BENCH_trace.json` in the
//! current directory) and prints them as a table. The acceptance target
//! is ring-mode overhead within a few percent of the recorder-off
//! baseline.

use std::sync::Arc;

use octo_bench::{render_table, TraceOverheadRow};
use octo_sched::NullSink;
use octopocs::batch::{run_batch, BatchJob, BatchOptions};
use octopocs::{FlightRecorder, PipelineConfig};

const ITERATIONS: usize = 3;
const WORKERS: usize = 4;

fn corpus_jobs() -> Vec<BatchJob> {
    octo_corpus::all_pairs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.display_name(),
            s: p.s,
            t: p.t,
            poc: p.poc,
            shared: p.shared,
        })
        .collect()
}

/// Runs the corpus batch `ITERATIONS` times in one recorder mode and
/// returns (best wall seconds, events recorded, chrome export bytes).
fn run_mode(jobs: &[BatchJob], record: bool, export: bool) -> (f64, u64, u64) {
    let config = PipelineConfig::default();
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    let mut export_bytes = 0u64;
    for _ in 0..ITERATIONS {
        let recorder = record.then(|| Arc::new(FlightRecorder::with_default_capacity()));
        let options = BatchOptions {
            workers: WORKERS,
            trace: recorder.clone(),
            ..BatchOptions::default()
        };
        let start = std::time::Instant::now();
        let report = run_batch(jobs, &config, &options, &NullSink);
        let mut seconds = start.elapsed().as_secs_f64();
        if let Some(rec) = &recorder {
            if export {
                // The export is part of the measured cost in this mode.
                let rendered = octo_trace::chrome::render_chrome(&rec.snapshot());
                seconds = start.elapsed().as_secs_f64();
                export_bytes = rendered.len() as u64;
            }
            events = rec.len() as u64 + rec.dropped();
        }
        assert_eq!(report.entries.len(), jobs.len());
        best = best.min(seconds);
    }
    (best, events, export_bytes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_trace.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out").clone(),
            other => {
                eprintln!("unknown flag `{other}` (usage: trace_overhead [--out PATH])");
                std::process::exit(3);
            }
        }
    }

    let jobs = corpus_jobs();
    let modes: [(&str, bool, bool); 3] = [
        ("off", false, false),
        ("ring", true, false),
        ("chrome-export", true, true),
    ];
    let mut rows: Vec<TraceOverheadRow> = Vec::new();
    let mut baseline = 0.0;
    for (mode, record, export) in modes {
        let (seconds, events, export_bytes) = run_mode(&jobs, record, export);
        if mode == "off" {
            baseline = seconds;
        }
        let overhead_pct = if baseline > 0.0 {
            (seconds / baseline - 1.0) * 100.0
        } else {
            0.0
        };
        rows.push(TraceOverheadRow {
            mode: mode.to_string(),
            seconds,
            events,
            export_bytes,
            overhead_pct,
        });
    }

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.4}", r.seconds),
                r.events.to_string(),
                r.export_bytes.to_string(),
                format!("{:+.2}", r.overhead_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Flight-recorder overhead on the corpus batch (best of 3)",
            &["mode", "seconds", "events", "export bytes", "overhead %"],
            &cells,
        )
    );
    let json = octo_bench::json::to_json_pretty(&rows);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error writing {out_path}: {e}");
        std::process::exit(3);
    }
    println!("rows written to {out_path}");
}
