//! Regenerates **Table IV**: naive vs directed symbolic execution.
//!
//! For the three Type-II pairs (large guiding-input variation), measure
//! the time and simulated memory needed to drive the execution of `T` to
//! `ep`:
//!
//! * **naive** — angr-default breadth-first exploration given only the
//!   target location; the paper observed `MemError` (path explosion) on
//!   MuPDF and gif2png(arti.);
//! * **directed** — the backward-path-guided engine of OctoPoCs.
//!
//! ```text
//! cargo run --release -p octo-bench --bin table4 [-- --json]
//! ```

use octo_bench::{render_table, Table4Row};
use octo_cfg::{build_cfg, CfgMode, DistanceMap};
use octo_corpus::{all_pairs, SoftwarePair};
use octo_symex::{DirectedConfig, DirectedEngine, NaiveExplorer, NaiveOutcome};
use octo_taint::{extract_crash_primitives, TaintConfig};

/// The Table IV/V comparison set: the Type-II pairs (Idx 7, 8, 9).
pub const COMPARISON_IDXS: [u32; 3] = [7, 8, 9];

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

fn run_pair(pair: &SoftwarePair) -> Table4Row {
    let ep_s = pair.s.func_by_name(&pair.shared[0]).expect("ep in S");
    let taint_cfg = TaintConfig::new(
        ep_s,
        pair.s.resolve_names(pair.shared.iter().map(String::as_str)),
    );
    let extraction =
        extract_crash_primitives(&pair.s, &pair.poc, &taint_cfg).expect("S crashes on poc");

    let ep_t = pair.t.func_by_name(&pair.shared[0]).expect("ep in T");
    let file_len = pair.poc.len() as u64 + 64;

    // Naive exploration (angr default), given only the target.
    let naive = NaiveExplorer::new(&pair.t, file_len, ep_t);
    let (naive_outcome, naive_stats) = naive.run();
    let (naive_seconds, naive_ram_mb, naive_mem_error) = match naive_outcome {
        NaiveOutcome::ReachedTarget { .. } => (
            Some(naive_stats.wall_seconds),
            Some(mb(naive_stats.peak_mem_bytes)),
            false,
        ),
        NaiveOutcome::MemError => (None, None, true),
        _ => (None, None, false),
    };

    // Directed exploration with the correct-path information.
    let cfg = build_cfg(&pair.t, CfgMode::Dynamic).expect("CFG of T");
    let map = DistanceMap::compute(&pair.t, &cfg, ep_t);
    let config = DirectedConfig {
        file_len,
        ..DirectedConfig::default()
    };
    let engine = DirectedEngine::new(&pair.t, ep_t, &map, &extraction.primitives, config);
    let (outcome, directed_stats) = engine.run();
    assert!(
        outcome.generated(),
        "directed run must generate poc' for Idx-{}: {outcome:?}",
        pair.idx
    );

    Table4Row {
        s: pair.s_name.to_string(),
        t: pair.t_name.to_string(),
        naive_seconds,
        naive_ram_mb,
        naive_mem_error,
        directed_seconds: directed_stats.wall_seconds,
        directed_ram_mb: mb(directed_stats.peak_mem_bytes.max(1)),
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut rows = Vec::new();
    for idx in COMPARISON_IDXS {
        let pair = all_pairs().into_iter().find(|p| p.idx == idx).expect("idx");
        rows.push(run_pair(&pair));
    }
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let ram = if r.naive_mem_error {
                "*MemError".to_string()
            } else {
                r.naive_ram_mb
                    .map(|m| format!("{m:.3}"))
                    .unwrap_or_else(|| "N/A".into())
            };
            vec![
                r.s.clone(),
                r.t.clone(),
                r.naive_seconds
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_else(|| "N/A".into()),
                ram,
                format!("{:.4}", r.directed_seconds),
                format!("{:.3}", r.directed_ram_mb),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table IV — Effectiveness of directed symbolic execution (reproduction)",
            &[
                "S",
                "T",
                "SE† Time(s)",
                "SE† RAM(MB)",
                "D-SE‡ Time(s)",
                "D-SE‡ RAM(MB)"
            ],
            &cells,
        )
    );
    println!("†: symbolic execution, ‡: directed symbolic execution, *: memory error.");
    if json {
        println!("{}", octo_bench::json::to_json_pretty(&rows));
    }
}
