//! Measures clone-scanning throughput over the Table II corpus: raw
//! fingerprinting (functions/sec), all-pairs retrieval (program
//! pairs/sec), and the full `expand_scan` fan-out including callgraph
//! reachability (expanded jobs/sec). Each stage runs several full
//! passes and keeps the best wall time (minimum is the standard
//! noise-robust statistic for this shape of benchmark).
//!
//! ```text
//! cargo run --release -p octo-bench --bin clone_throughput [-- --out PATH]
//! ```
//!
//! Writes the rows as JSON to `--out` (default `BENCH_clone.json` in
//! the current directory) and prints them as a table. Fingerprinting is
//! the hot path of a fleet scan — it must stay far cheaper than one
//! pipeline run — so the acceptance target is tens of thousands of
//! functions per second.

use octo_bench::{render_table, CloneBenchRow};
use octo_clone::{fingerprint_program, retrieve_pairs, CloneParams};
use octo_ir::Program;
use octopocs::{corpus_scan_inputs, expand_scan};

const ITERATIONS: usize = 5;

/// Runs `pass` `ITERATIONS` times, returning (best seconds, items).
fn best_of<F: FnMut() -> u64>(mut pass: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut items = 0u64;
    for _ in 0..ITERATIONS {
        let start = std::time::Instant::now();
        items = pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, items)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_clone.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out").clone(),
            other => {
                eprintln!("unknown flag `{other}` (usage: clone_throughput [--out PATH])");
                std::process::exit(3);
            }
        }
    }

    let pairs = octo_corpus::all_pairs();
    let programs: Vec<&Program> = pairs.iter().flat_map(|p| [&p.s, &p.t]).collect();
    let (sources, targets) = corpus_scan_inputs();
    let params = CloneParams::default();

    let mut rows: Vec<CloneBenchRow> = Vec::new();
    let mut push = |stage: &str, (seconds, items): (f64, u64)| {
        rows.push(CloneBenchRow {
            stage: stage.to_string(),
            items,
            seconds,
            items_per_sec: items as f64 / seconds,
        });
    };

    push(
        "fingerprint",
        best_of(|| {
            programs
                .iter()
                .map(|p| fingerprint_program(p).funcs.len() as u64)
                .sum()
        }),
    );
    push(
        "retrieve",
        best_of(|| {
            let mut compared = 0u64;
            for s in &pairs {
                for t in &pairs {
                    std::hint::black_box(retrieve_pairs(&s.s, &t.t, &params));
                    compared += 1;
                }
            }
            compared
        }),
    );
    push(
        "expand",
        best_of(|| expand_scan(&sources, &targets, &params).jobs.len() as u64),
    );

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stage.clone(),
                r.items.to_string(),
                format!("{:.4}", r.seconds),
                format!("{:.0}", r.items_per_sec),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Clone-scanning throughput on the corpus (best of 5)",
            &["stage", "items", "seconds", "items/sec"],
            &cells,
        )
    );
    let json = octo_bench::json::to_json_pretty(&rows);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error writing {out_path}: {e}");
        std::process::exit(3);
    }
    println!("rows written to {out_path}");
}
