//! Regenerates **Table II**: vulnerability verification results for the 15
//! software pairs.
//!
//! ```text
//! cargo run --release -p octo-bench --bin table2 [-- --latest] [--json]
//! ```
//!
//! `--latest` appends the §V-B latest-version findings (experiment E6);
//! `--json` additionally dumps the rows as JSON for downstream tooling.

use octo_bench::{ox, render_table, Table2Row};
use octo_corpus::{all_pairs, latest_pairs, SoftwarePair};
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn run_pair(pair: &SoftwarePair) -> Table2Row {
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    let report = verify(&input, &PipelineConfig::default());
    Table2Row {
        idx: pair.idx,
        s: format!("{} {}", pair.s_name, pair.s_version),
        t: format!("{} {}", pair.t_name, pair.t_version),
        vuln_id: pair.vuln_id.to_string(),
        cwe: pair.cwe.to_string(),
        measured: report.verdict.type_label().to_string(),
        expected: pair.expected.label().to_string(),
        poc_generated: report.verdict.poc_generated(),
        verified: report.verdict.verified(),
        wall_seconds: report.wall_seconds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let latest = args.iter().any(|a| a == "--latest");
    let json = args.iter().any(|a| a == "--json");

    let mut rows = Vec::new();
    for pair in all_pairs() {
        rows.push(run_pair(&pair));
    }

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.idx.to_string(),
                r.s.clone(),
                r.t.clone(),
                r.vuln_id.clone(),
                r.cwe.clone(),
                r.measured.clone(),
                r.expected.clone(),
                ox(r.poc_generated),
                ox(r.verified),
                format!("{:.2}", r.wall_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table II — Vulnerability verification results of OctoPoCs (reproduction)",
            &[
                "Idx",
                "S",
                "T",
                "Vulnerability",
                "CWE",
                "Measured",
                "Paper",
                "poc'",
                "Verif.",
                "Time(s)"
            ],
            &cells,
        )
    );
    let matches = rows.iter().filter(|r| r.measured == r.expected).count();
    println!("rows matching the paper: {matches}/{} ", rows.len());

    if latest {
        println!();
        let mut latest_rows = Vec::new();
        for pair in latest_pairs() {
            latest_rows.push(run_pair(&pair));
        }
        let cells: Vec<Vec<String>> = latest_rows
            .iter()
            .map(|r| {
                vec![
                    r.idx.to_string(),
                    r.t.clone(),
                    r.measured.clone(),
                    ox(r.poc_generated),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                "§V-B — propagated vulnerabilities still triggered in the latest T versions",
                &["Idx", "T (latest)", "Verdict", "poc'"],
                &cells,
            )
        );
        rows.extend(latest_rows);
    }

    if json {
        println!("{}", octo_bench::json::to_json_pretty(&rows));
    }
}
