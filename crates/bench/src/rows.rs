//! Serialisable row types for each regenerated table.

use crate::json::{JsonRow, JsonValue};

fn num(v: f64) -> JsonValue {
    JsonValue::Num(v)
}

fn opt_num(v: Option<f64>) -> JsonValue {
    v.map_or(JsonValue::Null, JsonValue::Num)
}

fn s(v: &str) -> JsonValue {
    JsonValue::Str(v.to_string())
}

fn opt_s(v: &Option<String>) -> JsonValue {
    v.as_ref().map_or(JsonValue::Null, |x| s(x))
}

/// One Table II row as produced by this reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Table II index.
    pub idx: u32,
    /// Original software (name + version).
    pub s: String,
    /// Target software (name + version).
    pub t: String,
    /// Vulnerability identifier.
    pub vuln_id: String,
    /// CWE class label.
    pub cwe: String,
    /// Measured classification (Type-I/II/III/Failure).
    pub measured: String,
    /// Expected (paper) classification.
    pub expected: String,
    /// Whether `poc'` was generated (`O`/`X` column).
    pub poc_generated: bool,
    /// Whether verification succeeded (`O`/`X` column).
    pub verified: bool,
    /// Pipeline wall-clock seconds.
    pub wall_seconds: f64,
}

impl JsonRow for Table2Row {
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("idx", num(f64::from(self.idx))),
            ("s", s(&self.s)),
            ("t", s(&self.t)),
            ("vuln_id", s(&self.vuln_id)),
            ("cwe", s(&self.cwe)),
            ("measured", s(&self.measured)),
            ("expected", s(&self.expected)),
            ("poc_generated", JsonValue::Bool(self.poc_generated)),
            ("verified", JsonValue::Bool(self.verified)),
            ("wall_seconds", num(self.wall_seconds)),
        ]
    }
}

/// One Table III row: context-aware vs context-free taint analysis.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Table II index (1–9, the triggerable pairs).
    pub idx: u32,
    /// Original software.
    pub s: String,
    /// Target software.
    pub t: String,
    /// Whether the context-free baseline verified the vulnerability.
    pub plain_taint_ok: bool,
    /// Whether context-aware taint verified the vulnerability.
    pub context_aware_ok: bool,
}

impl JsonRow for Table3Row {
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("idx", num(f64::from(self.idx))),
            ("s", s(&self.s)),
            ("t", s(&self.t)),
            ("plain_taint_ok", JsonValue::Bool(self.plain_taint_ok)),
            ("context_aware_ok", JsonValue::Bool(self.context_aware_ok)),
        ]
    }
}

/// One Table IV row: naive vs directed symbolic execution.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Original software.
    pub s: String,
    /// Target software.
    pub t: String,
    /// Naive elapsed wall seconds (`None` = failed before finishing).
    pub naive_seconds: Option<f64>,
    /// Naive simulated memory (MB); `None` with `naive_mem_error` set
    /// reproduces the paper's `MemError` cell.
    pub naive_ram_mb: Option<f64>,
    /// Whether naive exploration aborted with a memory error.
    pub naive_mem_error: bool,
    /// Directed elapsed wall seconds.
    pub directed_seconds: f64,
    /// Directed simulated memory (MB).
    pub directed_ram_mb: f64,
}

impl JsonRow for Table4Row {
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("s", s(&self.s)),
            ("t", s(&self.t)),
            ("naive_seconds", opt_num(self.naive_seconds)),
            ("naive_ram_mb", opt_num(self.naive_ram_mb)),
            ("naive_mem_error", JsonValue::Bool(self.naive_mem_error)),
            ("directed_seconds", num(self.directed_seconds)),
            ("directed_ram_mb", num(self.directed_ram_mb)),
        ]
    }
}

/// One Table V row: elapsed time to verification per tool.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Original software.
    pub s: String,
    /// Target software.
    pub t: String,
    /// AFLFast virtual seconds to verification (`None` = N/A in budget).
    pub aflfast_seconds: Option<f64>,
    /// AFLGo virtual seconds (`None` = N/A; see `aflgo_error`).
    pub aflgo_seconds: Option<f64>,
    /// AFLGo tool error (the Table V `Error†` cell).
    pub aflgo_error: Option<String>,
    /// OctoPoCs seconds to verification.
    pub octopocs_seconds: f64,
}

impl JsonRow for Table5Row {
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("s", s(&self.s)),
            ("t", s(&self.t)),
            ("aflfast_seconds", opt_num(self.aflfast_seconds)),
            ("aflgo_seconds", opt_num(self.aflgo_seconds)),
            ("aflgo_error", opt_s(&self.aflgo_error)),
            ("octopocs_seconds", num(self.octopocs_seconds)),
        ]
    }
}

impl Table5Row {
    /// Parses a row back from its [`crate::json::to_json`] form (used to
    /// keep the serialisation round-trip testable without serde).
    pub fn from_json(input: &str) -> Result<Table5Row, String> {
        let map = crate::json::parse_object(input)?;
        let get = |k: &str| map.get(k).ok_or_else(|| format!("missing field {k}"));
        Ok(Table5Row {
            s: get("s")?.as_str().ok_or("s: not a string")?.to_string(),
            t: get("t")?.as_str().ok_or("t: not a string")?.to_string(),
            aflfast_seconds: get("aflfast_seconds")?.as_num(),
            aflgo_seconds: get("aflgo_seconds")?.as_num(),
            aflgo_error: get("aflgo_error")?.as_str().map(str::to_string),
            octopocs_seconds: get("octopocs_seconds")?
                .as_num()
                .ok_or("octopocs_seconds: not a number")?,
        })
    }
}

/// One `trace-overhead` row: corpus batch wall time with the flight
/// recorder off, recording into the ring, or recording plus a Chrome
/// trace export (see `docs/observability.md`).
#[derive(Debug, Clone)]
pub struct TraceOverheadRow {
    /// `"off"`, `"ring"`, or `"chrome-export"`.
    pub mode: String,
    /// Best-of-N batch wall seconds in this mode.
    pub seconds: f64,
    /// Trace events recorded (0 with the recorder off).
    pub events: u64,
    /// Chrome export size in bytes (0 unless exporting).
    pub export_bytes: u64,
    /// Wall-time overhead versus the `off` baseline, percent.
    pub overhead_pct: f64,
}

impl JsonRow for TraceOverheadRow {
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("mode", s(&self.mode)),
            ("seconds", num(self.seconds)),
            ("events", num(self.events as f64)),
            ("export_bytes", num(self.export_bytes as f64)),
            ("overhead_pct", num(self.overhead_pct)),
        ]
    }
}

/// One `scope_overhead` row: corpus wall time through the in-process
/// daemon with the octo-scope observability plane off versus serving
/// live HTTP scrapes plus rate sampling (see `docs/observability.md`).
#[derive(Debug, Clone)]
pub struct ScopeOverheadRow {
    /// `"off"` or `"scope"`.
    pub mode: String,
    /// Best-of-N daemon-corpus wall seconds in this mode.
    pub seconds: f64,
    /// `/metrics` + `/jobs/<id>` scrapes served during the best run
    /// (0 with the plane off).
    pub scrapes: u64,
    /// Registry snapshots taken by the rate sampler during the best
    /// run (0 with the plane off).
    pub samples: u64,
    /// Wall-time overhead versus the `off` baseline, percent.
    pub overhead_pct: f64,
}

impl JsonRow for ScopeOverheadRow {
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("mode", s(&self.mode)),
            ("seconds", num(self.seconds)),
            ("scrapes", num(self.scrapes as f64)),
            ("samples", num(self.samples as f64)),
            ("overhead_pct", num(self.overhead_pct)),
        ]
    }
}

/// One `clone_throughput` row: fingerprinting / retrieval / scan-expansion
/// throughput over the Table II corpus (see `docs/clone-scanning.md`).
#[derive(Debug, Clone)]
pub struct CloneBenchRow {
    /// `"fingerprint"`, `"retrieve"`, or `"expand"`.
    pub stage: String,
    /// Work items processed per iteration (functions for
    /// `fingerprint`, program pairs for `retrieve`, expanded jobs for
    /// `expand`).
    pub items: u64,
    /// Best-of-N wall seconds for one full pass.
    pub seconds: f64,
    /// `items / seconds` for the best pass.
    pub items_per_sec: f64,
}

impl JsonRow for CloneBenchRow {
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("stage", s(&self.stage)),
            ("items", num(self.items as f64)),
            ("seconds", num(self.seconds)),
            ("items_per_sec", num(self.items_per_sec)),
        ]
    }
}

/// One `cache_warm` row: corpus batch wall time against a cold (empty)
/// versus warm (pre-seeded) disk artifact cache (see `docs/caching.md`).
#[derive(Debug, Clone)]
pub struct CacheWarmRow {
    /// `"cold"` or `"warm"`.
    pub mode: String,
    /// Best-of-N batch wall seconds in this mode.
    pub seconds: f64,
    /// Disk-cache hits during the best run (0 cold).
    pub disk_hits: u64,
    /// Blobs published during the best run (0 warm).
    pub disk_writes: u64,
    /// Wall-time saving versus the `cold` baseline, percent (0 cold).
    pub saving_pct: f64,
}

impl JsonRow for CacheWarmRow {
    fn json_fields(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("mode", s(&self.mode)),
            ("seconds", num(self.seconds)),
            ("disk_hits", num(self.disk_hits as f64)),
            ("disk_writes", num(self.disk_writes as f64)),
            ("saving_pct", num(self.saving_pct)),
        ]
    }
}

/// Helper: `O`/`X` cells like the paper's tables.
pub fn ox(b: bool) -> String {
    if b {
        "O".into()
    } else {
        "X".into()
    }
}

/// Helper: optional seconds cell (`N/A` when absent).
pub fn secs(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:.2}"),
        None => "N/A".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::to_json;

    #[test]
    fn cells() {
        assert_eq!(ox(true), "O");
        assert_eq!(ox(false), "X");
        assert_eq!(secs(Some(1.234)), "1.23");
        assert_eq!(secs(None), "N/A");
    }

    #[test]
    fn rows_serialize() {
        let row = Table5Row {
            s: "gif2png".into(),
            t: "gif2png (arti.)".into(),
            aflfast_seconds: Some(201.0),
            aflgo_seconds: None,
            aflgo_error: None,
            octopocs_seconds: 1.0,
        };
        let json = to_json(&row);
        let back = Table5Row::from_json(&json).unwrap();
        assert_eq!(back.s, "gif2png");
        assert_eq!(back.aflfast_seconds, Some(201.0));
        assert_eq!(back.aflgo_seconds, None);
        assert_eq!(back.octopocs_seconds, 1.0);
    }
}
