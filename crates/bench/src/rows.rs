//! Serialisable row types for each regenerated table.

use serde::{Deserialize, Serialize};

/// One Table II row as produced by this reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Table II index.
    pub idx: u32,
    /// Original software (name + version).
    pub s: String,
    /// Target software (name + version).
    pub t: String,
    /// Vulnerability identifier.
    pub vuln_id: String,
    /// CWE class label.
    pub cwe: String,
    /// Measured classification (Type-I/II/III/Failure).
    pub measured: String,
    /// Expected (paper) classification.
    pub expected: String,
    /// Whether `poc'` was generated (`O`/`X` column).
    pub poc_generated: bool,
    /// Whether verification succeeded (`O`/`X` column).
    pub verified: bool,
    /// Pipeline wall-clock seconds.
    pub wall_seconds: f64,
}

/// One Table III row: context-aware vs context-free taint analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Table II index (1–9, the triggerable pairs).
    pub idx: u32,
    /// Original software.
    pub s: String,
    /// Target software.
    pub t: String,
    /// Whether the context-free baseline verified the vulnerability.
    pub plain_taint_ok: bool,
    /// Whether context-aware taint verified the vulnerability.
    pub context_aware_ok: bool,
}

/// One Table IV row: naive vs directed symbolic execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Original software.
    pub s: String,
    /// Target software.
    pub t: String,
    /// Naive elapsed wall seconds (`None` = failed before finishing).
    pub naive_seconds: Option<f64>,
    /// Naive simulated memory (MB); `None` with `naive_mem_error` set
    /// reproduces the paper's `MemError` cell.
    pub naive_ram_mb: Option<f64>,
    /// Whether naive exploration aborted with a memory error.
    pub naive_mem_error: bool,
    /// Directed elapsed wall seconds.
    pub directed_seconds: f64,
    /// Directed simulated memory (MB).
    pub directed_ram_mb: f64,
}

/// One Table V row: elapsed time to verification per tool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// Original software.
    pub s: String,
    /// Target software.
    pub t: String,
    /// AFLFast virtual seconds to verification (`None` = N/A in budget).
    pub aflfast_seconds: Option<f64>,
    /// AFLGo virtual seconds (`None` = N/A; see `aflgo_error`).
    pub aflgo_seconds: Option<f64>,
    /// AFLGo tool error (the Table V `Error†` cell).
    pub aflgo_error: Option<String>,
    /// OctoPoCs seconds to verification.
    pub octopocs_seconds: f64,
}

/// Helper: `O`/`X` cells like the paper's tables.
pub fn ox(b: bool) -> String {
    if b {
        "O".into()
    } else {
        "X".into()
    }
}

/// Helper: optional seconds cell (`N/A` when absent).
pub fn secs(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:.2}"),
        None => "N/A".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells() {
        assert_eq!(ox(true), "O");
        assert_eq!(ox(false), "X");
        assert_eq!(secs(Some(1.234)), "1.23");
        assert_eq!(secs(None), "N/A");
    }

    #[test]
    fn rows_serialize() {
        let row = Table5Row {
            s: "gif2png".into(),
            t: "gif2png (arti.)".into(),
            aflfast_seconds: Some(201.0),
            aflgo_seconds: None,
            aflgo_error: None,
            octopocs_seconds: 1.0,
        };
        let json = serde_json::to_string(&row).unwrap();
        let back: Table5Row = serde_json::from_str(&json).unwrap();
        assert_eq!(back.s, "gif2png");
    }
}
