//! P0 pre-screen benches: pipeline wall-time with and without
//! `PipelineConfig::static_prescreen` on the Type-III corpus rows.
//!
//! The interesting rows are the ones P0 can decide statically (Idx 10–12,
//! the hardcoded-argument pairs): there the whole directed symbolic
//! execution phase is skipped and verification reduces to P1 plus a call
//! graph walk. On rows P0 cannot decide (Idx 13–14, data-dependent `ep`
//! arguments) the screen must be close to free — its cost is one
//! interprocedural constant-propagation pass over `T`.

use criterion::{criterion_group, criterion_main, Criterion};
use octo_corpus::pair_by_idx;
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn run(pair: &octo_corpus::SoftwarePair, config: &PipelineConfig) -> octopocs::VerificationReport {
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    verify(&input, config)
}

fn bench_prescreen_type_iii(c: &mut Criterion) {
    let base = PipelineConfig::default();
    let screened = PipelineConfig::default().with_static_prescreen();
    for idx in [10u32, 11, 12, 13, 14] {
        let pair = pair_by_idx(idx).expect("Type-III pair");
        let mut group = c.benchmark_group(&format!("prescreen_idx{idx:02}"));
        group.sample_size(10);
        group.bench_function("off", |b| {
            b.iter(|| {
                let report = run(&pair, &base);
                assert!(!report.prescreen);
                report
            });
        });
        group.bench_function("on", |b| {
            b.iter(|| {
                let report = run(&pair, &screened);
                // Idx 10-12 are decided statically; 13-14 fall through.
                assert_eq!(report.prescreen, idx <= 12);
                report
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_prescreen_type_iii);
criterion_main!(benches);
