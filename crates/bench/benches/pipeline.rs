//! Criterion benches for the verification pipeline (Tables II and V).
//!
//! `table2/verify_idx_*` measures the full four-phase pipeline per corpus
//! pair; `table5/octopocs_*` measures the three comparison pairs the paper
//! times against the fuzzers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use octo_corpus::{all_pairs, pair_by_idx};
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for pair in all_pairs() {
        group.bench_function(&format!("verify_idx_{:02}", pair.idx), |b| {
            b.iter_batched(
                || (),
                |()| {
                    let input = SoftwarePairInput {
                        s: &pair.s,
                        t: &pair.t,
                        poc: &pair.poc,
                        shared: &pair.shared,
                    };
                    verify(&input, &PipelineConfig::default())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_table5_octopocs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    for idx in [7u32, 8, 9] {
        let pair = pair_by_idx(idx).expect("pair");
        group.bench_function(&format!("octopocs_idx_{idx:02}_{}", pair.t_name), |b| {
            b.iter(|| {
                let input = SoftwarePairInput {
                    s: &pair.s,
                    t: &pair.t,
                    poc: &pair.poc,
                    shared: &pair.shared,
                };
                let report = verify(&input, &PipelineConfig::default());
                assert!(report.verdict.poc_generated());
                report
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2, bench_table5_octopocs);
criterion_main!(benches);
