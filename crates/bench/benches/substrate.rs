//! Substrate micro-benchmarks: interpreter throughput, taint overhead,
//! solver cost. Not paper artefacts, but the numbers every optimisation
//! of the reproduction is judged against.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use octo_corpus::pair_by_idx;
use octo_ir::parse::parse_program;
use octo_solver::{Cond, Constraint, ConstraintSet, Expr};
use octo_taint::{TaintConfig, TaintEngine};
use octo_vm::{Limits, NoHook, Vm};

/// A compute-heavy loop program (~5k instructions per run).
fn loop_program() -> octo_ir::Program {
    parse_program(
        r#"
func main() {
entry:
    acc = 1
    i = 0
    jmp loop
loop:
    done = uge i, 1000
    br done, fin, body
body:
    acc = mul acc, 31
    acc = xor acc, i
    acc = add acc, 7
    i = add i, 1
    jmp loop
fin:
    halt acc
}
"#,
    )
    .expect("parses")
}

fn bench_vm_throughput(c: &mut Criterion) {
    let p = loop_program();
    let mut probe = Vm::new(&p, b"");
    probe.run();
    let insts = probe.insts_executed();

    let mut group = c.benchmark_group("vm");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("uninstrumented", |b| {
        b.iter(|| Vm::new(&p, b"").run_hooked(&mut NoHook))
    });
    // Coverage-hook overhead (what every fuzz exec pays).
    group.bench_function("coverage_hook", |b| {
        let mut hook = octo_fuzz::CoverageHook::new();
        b.iter(|| {
            hook.reset();
            Vm::new(&p, b"").run_hooked(&mut hook)
        })
    });
    group.finish();
}

fn bench_taint_overhead(c: &mut Criterion) {
    // The Idx-6 extraction: taint vs plain execution of the same run.
    let pair = pair_by_idx(6).expect("pair");
    let ep = pair.s.func_by_name(&pair.shared[0]).expect("ep");
    let shared = pair.s.resolve_names(pair.shared.iter().map(String::as_str));
    let mut group = c.benchmark_group("taint");
    group.bench_function("plain_execution", |b| {
        b.iter(|| {
            Vm::new(&pair.s, pair.poc.bytes())
                .with_limits(Limits::default())
                .run()
        })
    });
    group.bench_function("tainted_execution", |b| {
        b.iter(|| {
            let mut engine =
                TaintEngine::new(TaintConfig::new(ep, shared.clone()), pair.poc.clone());
            Vm::new(&pair.s, pair.poc.bytes()).run_hooked(&mut engine);
            engine.into_primitives()
        })
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.bench_function("bunch_placement_64_bytes", |b| {
        b.iter(|| {
            let mut set = ConstraintSet::new();
            for i in 0..64u32 {
                set.assert_byte(i, (i * 7) as u8);
            }
            set.solve()
        })
    });
    group.bench_function("word_equalities_and_ranges", |b| {
        b.iter(|| {
            let mut set = ConstraintSet::new();
            set.push(Constraint::new(
                Expr::concat_le(0, 4),
                Expr::val(0xDEAD_BEEF),
                Cond::Eq,
            ));
            set.push(Constraint::new(Expr::byte(5), Expr::val(64), Cond::Ult));
            set.push(Constraint::new(Expr::val(8), Expr::byte(5), Cond::Ule));
            set.solve()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vm_throughput,
    bench_taint_overhead,
    bench_solver
);
criterion_main!(benches);
