//! Criterion benches for the analysis engines (Tables III and IV).
//!
//! * `table3/*` — crash-primitive extraction, context-aware vs
//!   context-free, on the multi-entry pairs where the distinction matters.
//! * `table4/*` — directed symbolic execution per comparison pair, plus
//!   the naive baseline on the one target where it terminates (opj_dump);
//!   the naive MemError cases are asserted by the integration tests, not
//!   timed here (a memory-exhaustion run is not a meaningful throughput
//!   number).

use criterion::{criterion_group, criterion_main, Criterion};
use octo_cfg::{build_cfg, CfgMode, DistanceMap};
use octo_corpus::pair_by_idx;
use octo_symex::{DirectedConfig, DirectedEngine, NaiveExplorer, NaiveOutcome};
use octo_taint::{extract_crash_primitives, TaintConfig};

fn bench_table3_taint(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    for idx in [3u32, 4, 9] {
        let pair = pair_by_idx(idx).expect("pair");
        let ep = pair.s.func_by_name(&pair.shared[0]).expect("ep");
        let shared = pair.s.resolve_names(pair.shared.iter().map(String::as_str));
        let aware = TaintConfig::new(ep, shared.clone());
        let plain = TaintConfig::new(ep, shared).context_free();
        group.bench_function(&format!("context_aware_idx_{idx:02}"), |b| {
            b.iter(|| extract_crash_primitives(&pair.s, &pair.poc, &aware).expect("extracts"));
        });
        group.bench_function(&format!("context_free_idx_{idx:02}"), |b| {
            b.iter(|| extract_crash_primitives(&pair.s, &pair.poc, &plain).expect("extracts"));
        });
    }
    group.finish();
}

fn bench_table4_symex(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for idx in [7u32, 8, 9] {
        let pair = pair_by_idx(idx).expect("pair");
        let ep_s = pair.s.func_by_name(&pair.shared[0]).expect("ep in S");
        let q = extract_crash_primitives(
            &pair.s,
            &pair.poc,
            &TaintConfig::new(
                ep_s,
                pair.s.resolve_names(pair.shared.iter().map(String::as_str)),
            ),
        )
        .expect("P1")
        .primitives;
        let ep_t = pair.t.func_by_name(&pair.shared[0]).expect("ep in T");
        let file_len = pair.poc.len() as u64 + 64;
        let cfg = build_cfg(&pair.t, CfgMode::Dynamic).expect("cfg");
        let map = DistanceMap::compute(&pair.t, &cfg, ep_t);
        let config = DirectedConfig {
            file_len,
            ..DirectedConfig::default()
        };
        group.bench_function(&format!("directed_idx_{idx:02}_{}", pair.t_name), |b| {
            b.iter(|| {
                let engine = DirectedEngine::new(&pair.t, ep_t, &map, &q, config);
                let (outcome, _) = engine.run();
                assert!(outcome.generated());
            });
        });
        if idx == 7 {
            // The only naive run that terminates (paper: 3.49 s, 461 MB).
            group.bench_function("naive_idx_07_opj_dump", |b| {
                b.iter(|| {
                    let (out, _) = NaiveExplorer::new(&pair.t, file_len, ep_t).run();
                    assert!(matches!(out, NaiveOutcome::ReachedTarget { .. }));
                });
            });
        }
    }
    group.finish();
}

fn bench_backward_path_finding(c: &mut Criterion) {
    // The backward-path step in isolation (§III-B): CFG + distance map.
    let mut group = c.benchmark_group("backward_path");
    for idx in [7u32, 8, 9] {
        let pair = pair_by_idx(idx).expect("pair");
        let ep_t = pair.t.func_by_name(&pair.shared[0]).expect("ep in T");
        group.bench_function(&format!("cfg_and_distance_idx_{idx:02}"), |b| {
            b.iter(|| {
                let cfg = build_cfg(&pair.t, CfgMode::Dynamic).expect("cfg");
                DistanceMap::compute(&pair.t, &cfg, ep_t)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table3_taint,
    bench_table4_symex,
    bench_backward_path_finding
);
criterion_main!(benches);
