//! Ablation benches for the design decisions called out in `DESIGN.md` §5:
//!
//! * **θ sweep** — directed symbolic execution on the loop-heavy gif2png
//!   pair with decreasing loop budgets: below the iterations the PoC
//!   needs, verification fails (the paper's declared failure mode); the
//!   bench shows the cost/benefit of larger θ.
//! * **CFG mode** — dynamic vs static CFG on the MuPDF pair: static CFG
//!   misses the indirect dispatch edges, so the distance map cannot reach
//!   `ep` and verification degrades (it is also cheaper to build — the
//!   trade-off §IV-B describes).
//! * **taint granularity** — byte-level vs word-level tainting: word
//!   granularity over-taints, growing bunches.

use criterion::{criterion_group, criterion_main, Criterion};
use octo_cfg::{build_cfg, CfgMode, DistanceMap};
use octo_corpus::pair_by_idx;
use octo_taint::{extract_crash_primitives, TaintConfig};
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn bench_theta_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("theta_sweep");
    group.sample_size(10);
    let pair = pair_by_idx(9).expect("gif2png pair");
    for theta in [4u32, 16, 120] {
        group.bench_function(&format!("gif2png_theta_{theta:03}"), |b| {
            b.iter(|| {
                let input = SoftwarePairInput {
                    s: &pair.s,
                    t: &pair.t,
                    poc: &pair.poc,
                    shared: &pair.shared,
                };
                verify(&input, &PipelineConfig::default().with_theta(theta))
            });
        });
    }
    group.finish();
}

fn bench_cfg_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("cfg_mode");
    let pair = pair_by_idx(8).expect("MuPDF pair");
    let ep = pair.t.func_by_name(&pair.shared[0]).expect("ep");
    group.bench_function("mupdf_dynamic_cfg", |b| {
        b.iter(|| {
            let cfg = build_cfg(&pair.t, CfgMode::Dynamic).expect("dynamic cfg");
            let map = DistanceMap::compute(&pair.t, &cfg, ep);
            assert!(map.reaches(pair.t.entry(), octo_ir::BlockId(0)));
            map
        });
    });
    group.bench_function("mupdf_static_cfg", |b| {
        b.iter(|| {
            let cfg = build_cfg(&pair.t, CfgMode::Static).expect("static cfg");
            let map = DistanceMap::compute(&pair.t, &cfg, ep);
            // Static CFG cannot see through the indirect dispatch.
            assert!(!map.reaches(pair.t.entry(), octo_ir::BlockId(0)));
            map
        });
    });
    group.finish();
}

fn bench_taint_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("taint_granularity");
    let pair = pair_by_idx(6).expect("pdfalto pair");
    let ep = pair.s.func_by_name(&pair.shared[0]).expect("ep");
    let shared = pair.s.resolve_names(pair.shared.iter().map(String::as_str));
    let byte_cfg = TaintConfig::new(ep, shared.clone());
    let word_cfg = TaintConfig::new(ep, shared).word_level();
    group.bench_function("byte_level", |b| {
        b.iter(|| extract_crash_primitives(&pair.s, &pair.poc, &byte_cfg).expect("extracts"));
    });
    group.bench_function("word_level", |b| {
        b.iter(|| extract_crash_primitives(&pair.s, &pair.poc, &word_cfg).expect("extracts"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_theta_sweep,
    bench_cfg_mode,
    bench_taint_granularity
);
criterion_main!(benches);
