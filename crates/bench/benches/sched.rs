//! Scheduler benches: static chunking vs work stealing on skewed job
//! mixes.
//!
//! Batch verification cost is dominated by a few directed-symbolic-
//! execution jobs; most corpus rows resolve in microseconds. Static
//! chunking (the pre-`octo-sched` `verify_portfolio` strategy) pins the
//! heavy job's whole chunk on one worker while the rest idle, so its
//! wall time approaches `heavy + chunk_mates`; the work-stealing deque
//! redistributes the chunk-mates and approaches `max(heavy, rest/N)`.

use criterion::{criterion_group, criterion_main, Criterion};
use octo_corpus::all_pairs;
use octo_sched::run_jobs;
use octopocs::batch::{run_batch, BatchJob, BatchOptions};
use octopocs::PipelineConfig;

/// Deterministic busywork (FNV spin) returning a value the optimiser
/// cannot drop.
fn spin(seed: u64, iters: u64) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for i in 0..iters {
        h ^= i;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The skewed mix: job 0 costs ~64× each of the other 31 jobs.
fn costs() -> Vec<u64> {
    (0..32)
        .map(|i| if i == 0 { 2_000_000 } else { 31_250 })
        .collect()
}

/// The old `verify_portfolio` strategy: contiguous chunks, one thread
/// each, no rebalancing.
fn run_chunked(jobs: &[u64], workers: usize) -> u64 {
    let chunk = jobs.len().div_ceil(workers).max(1);
    let mut total = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|chunk_jobs| {
                scope.spawn(move || {
                    chunk_jobs
                        .iter()
                        .enumerate()
                        .map(|(i, &cost)| spin(i as u64, cost))
                        .fold(0u64, u64::wrapping_add)
                })
            })
            .collect();
        for h in handles {
            total = total.wrapping_add(h.join().expect("worker"));
        }
    });
    total
}

fn bench_skewed_mix(c: &mut Criterion) {
    let jobs = costs();
    let mut group = c.benchmark_group("sched_skewed_32jobs_4workers");
    group.sample_size(10);
    group.bench_function("chunked", |b| b.iter(|| run_chunked(&jobs, 4)));
    group.bench_function("stealing", |b| {
        b.iter(|| {
            let (out, _stats) = run_jobs(jobs.clone(), 4, |_, cost| spin(cost, cost));
            out.iter()
                .map(|r| r.as_ref().expect("no job panics"))
                .fold(0u64, |a, &v| a.wrapping_add(v))
        })
    });
    group.finish();
}

fn bench_corpus_batch(c: &mut Criterion) {
    let jobs: Vec<BatchJob> = all_pairs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.display_name(),
            s: p.s,
            t: p.t,
            poc: p.poc,
            shared: p.shared,
        })
        .collect();
    let config = PipelineConfig::default();
    let mut group = c.benchmark_group("batch_corpus15");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_function(&format!("workers{workers}"), |b| {
            b.iter(|| {
                let report = run_batch(
                    &jobs,
                    &config,
                    &BatchOptions {
                        workers,
                        ..BatchOptions::default()
                    },
                    &octo_sched::NullSink,
                );
                assert_eq!(report.cache.misses, 10);
                report.entries.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skewed_mix, bench_corpus_batch);
criterion_main!(benches);
