//! # octo-clone — static MicroIR clone fingerprinting and ℓ retrieval.
//!
//! The OCTOPOCS paper takes the shared vulnerable function set ℓ as an
//! *input*; this crate discovers it. Every function is fingerprinted
//! with normalized instruction-sequence shingles (canonical block order,
//! window-local register numbering, relative branch offsets — see
//! [`fingerprint`]) plus callgraph-context features, and candidate
//! shared/cloned pairs between a source S and a fleet of targets are
//! retrieved and scored ([`retrieve`]).
//!
//! Retrieval is the cheap, high-recall stage of a retrieve-then-validate
//! design: candidates flow into the batch verification oracle
//! (`octopocs scan`), which reforms and replays the PoC to decide
//! whether the clone is actually triggerable.
#![warn(missing_docs)]

pub mod fingerprint;
pub mod retrieve;

pub use fingerprint::{
    containment, context_similarity, fingerprint_function, fingerprint_program, ContextFeatures,
    Fnv, FuncFingerprint, ProgramFingerprints, SHINGLE_K,
};
pub use retrieve::{
    retrieve_from_fingerprints, retrieve_pairs, Candidate, CloneParams, CONTAINMENT_WEIGHT,
};
