//! Clone-pair retrieval between a source program and target programs.
//!
//! This is the cheap, high-recall half of a retrieve-then-validate
//! pipeline (VulCoCo's design): every candidate it emits is meant to be
//! *verified* by the expensive PoC-reformation oracle, so scoring errs
//! toward inclusion and annotates each candidate with how trustworthy
//! its reachability evidence is.

use octo_ir::Program;
use octo_lint::ReachKind;

use crate::fingerprint::{
    containment, context_similarity, fingerprint_program, FuncFingerprint, ProgramFingerprints,
};

/// Retrieval parameters.
#[derive(Debug, Clone, Copy)]
pub struct CloneParams {
    /// Minimum combined score for a candidate to be kept.
    pub threshold: f64,
    /// Keep at most this many candidates per (S, T) program pair
    /// (`0` = unlimited). Applied after score ordering.
    pub top_k: usize,
    /// Source functions with fewer instructions are not used as queries
    /// (tiny functions shingle to almost nothing and match everywhere).
    pub min_insts: usize,
    /// Whether program entry functions may appear in candidates. Entry
    /// functions are the application drivers, not shared library code —
    /// ℓ members must be callable *under* the entry, so the default
    /// excludes them on both sides.
    pub include_entry: bool,
}

impl Default for CloneParams {
    fn default() -> CloneParams {
        CloneParams {
            threshold: 0.5,
            top_k: 0,
            min_insts: 4,
            include_entry: false,
        }
    }
}

/// Weight of shingle containment in the combined score; the remainder is
/// callgraph-context similarity.
pub const CONTAINMENT_WEIGHT: f64 = 0.85;

/// One retrieved candidate: "source function `s_func` appears cloned as
/// `t_func` in the target".
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Function name in S.
    pub s_func: String,
    /// Function name in T.
    pub t_func: String,
    /// Combined score in `[0, 1]` (exactly `1.0` iff canonical bodies
    /// are identical).
    pub score: f64,
    /// Shingle containment `|S ∩ T| / |S|`.
    pub containment: f64,
    /// Context-feature similarity.
    pub context: f64,
    /// Whether the canonical bodies are byte-identical.
    pub exact: bool,
    /// How the target function is reached from T's entry — candidates in
    /// unreachable code verify trivially to "not triggerable", so the
    /// scan reports this up front.
    pub reach: ReachKind,
}

impl Candidate {
    /// Stable label for the reachability column.
    pub fn reach_label(&self) -> &'static str {
        match self.reach {
            ReachKind::No => "none",
            ReachKind::Direct => "direct",
            ReachKind::OverApprox => "over-approx",
        }
    }
}

/// Scores one (source function, target function) pair.
fn score_pair(s: &FuncFingerprint, t: &FuncFingerprint) -> (f64, f64, f64, bool) {
    if s.exact == t.exact {
        return (1.0, 1.0, context_similarity(&s.ctx, &t.ctx), true);
    }
    let c = containment(&s.shingles, &t.shingles);
    let x = context_similarity(&s.ctx, &t.ctx);
    (
        CONTAINMENT_WEIGHT * c + (1.0 - CONTAINMENT_WEIGHT) * x,
        c,
        x,
        false,
    )
}

/// Retrieves clone candidates between pre-computed fingerprints.
/// `t_reach` must be `cg.reach_kinds_from(T.entry())` for the target.
pub fn retrieve_from_fingerprints(
    s: &ProgramFingerprints,
    t: &ProgramFingerprints,
    t_reach: &[ReachKind],
    params: &CloneParams,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (si, sf) in s.funcs.iter().enumerate() {
        if !params.include_entry && si == s.entry {
            continue;
        }
        if sf.insts < params.min_insts {
            continue;
        }
        for (ti, tf) in t.funcs.iter().enumerate() {
            if !params.include_entry && ti == t.entry {
                continue;
            }
            let (score, cont, ctx, exact) = score_pair(sf, tf);
            if score >= params.threshold {
                out.push(Candidate {
                    s_func: sf.name.clone(),
                    t_func: tf.name.clone(),
                    score,
                    containment: cont,
                    context: ctx,
                    exact,
                    reach: t_reach.get(ti).copied().unwrap_or(ReachKind::No),
                });
            }
        }
    }
    // Deterministic: score descending, then names.
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.s_func.cmp(&b.s_func))
            .then_with(|| a.t_func.cmp(&b.t_func))
    });
    if params.top_k > 0 {
        out.truncate(params.top_k);
    }
    out
}

/// Retrieves clone candidates between two programs (fingerprinting both
/// on the fly). For fleet scans, fingerprint S once and call
/// [`retrieve_from_fingerprints`] per target instead.
pub fn retrieve_pairs(s: &Program, t: &Program, params: &CloneParams) -> Vec<Candidate> {
    let sf = fingerprint_program(s);
    let tf = fingerprint_program(t);
    let cg = octo_lint::build_call_graph(t);
    let reach = cg.reach_kinds_from(t.entry());
    retrieve_from_fingerprints(&sf, &tf, &reach, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    const LOOPY: &str = "entry:\n fd = open\n buf = alloc 16\n i = 0\n jmp loop\n\
                         loop:\n done = uge i, 16\n br done, fin, body\n\
                         body:\n v = getc fd\n p = add buf, i\n store.1 p, v\n \
                         i = add i, 1\n jmp loop\n\
                         fin:\n ret i\n";

    fn prog(frag_name: &str, frag_body: &str) -> Program {
        parse_program(&format!(
            "func main() {{\nentry:\n r = call {frag_name}()\n halt r\n}}\n\
             func {frag_name}() {{\n{frag_body}}}\n"
        ))
        .unwrap()
    }

    #[test]
    fn identical_clone_scores_one_and_entry_is_excluded() {
        let s = prog("decode", LOOPY);
        let t = prog("decode", LOOPY);
        let cands = retrieve_pairs(&s, &t, &CloneParams::default());
        assert_eq!(cands.len(), 1, "{cands:?}");
        let c = &cands[0];
        assert_eq!((c.s_func.as_str(), c.t_func.as_str()), ("decode", "decode"));
        assert!(c.exact);
        assert!((c.score - 1.0).abs() < 1e-12);
        assert_eq!(c.reach, ReachKind::Direct);
    }

    #[test]
    fn renamed_clone_is_still_retrieved_across_names() {
        let s = prog("decode", LOOPY);
        let t = prog("parse_chunk", LOOPY);
        let cands = retrieve_pairs(&s, &t, &CloneParams::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].t_func, "parse_chunk");
        assert!(cands[0].exact);
    }

    #[test]
    fn unrelated_function_is_below_threshold() {
        let s = prog("decode", LOOPY);
        let t = prog(
            "decode",
            "entry:\n a = 1\n b = shl a, 4\n c = xor b, 0x5a\n d = mul c, 3\n ret d\n",
        );
        let cands = retrieve_pairs(&s, &t, &CloneParams::default());
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    fn top_k_limits_candidates() {
        let s = prog("decode", LOOPY);
        let t = parse_program(&format!(
            "func main() {{\nentry:\n r = call a()\n s = call b()\n halt r\n}}\n\
             func a() {{\n{LOOPY}}}\n\
             func b() {{\n{LOOPY}}}\n"
        ))
        .unwrap();
        let all = retrieve_pairs(&s, &t, &CloneParams::default());
        assert_eq!(all.len(), 2);
        let one = retrieve_pairs(
            &s,
            &t,
            &CloneParams {
                top_k: 1,
                ..CloneParams::default()
            },
        );
        assert_eq!(one.len(), 1);
        // Ties break by name: `a` sorts before `b`.
        assert_eq!(one[0].t_func, "a");
    }

    #[test]
    fn unreachable_target_clone_is_flagged_not_dropped() {
        let s = prog("decode", LOOPY);
        // T contains the clone but never calls it.
        let t = parse_program(&format!(
            "func main() {{\nentry:\n halt 0\n}}\n\
             func decode() {{\n{LOOPY}}}\n"
        ))
        .unwrap();
        let cands = retrieve_pairs(&s, &t, &CloneParams::default());
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].reach, ReachKind::No);
        assert_eq!(cands[0].reach_label(), "none");
    }
}
