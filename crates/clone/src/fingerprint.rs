//! Function fingerprints: normalized instruction-sequence shingles plus
//! callgraph-context features.
//!
//! A fingerprint must be *stable under renaming and reordering* — the
//! transformations propagated code actually undergoes (paper §II: shared
//! code is copied, then drifts) — while still changing under semantic
//! edits. Three normalizations deliver that:
//!
//! 1. The instruction stream is taken from the **canonical** form of the
//!    function ([`octo_ir::canonicalize_function`]): entry-first DFS
//!    block order, positional labels, definition-order registers.
//! 2. Shingle hashes renumber registers **window-locally** (first
//!    occurrence inside the k-gram), so embedding a clone after extra
//!    prologue code (the "inlined callee" case) shifts no shingle.
//! 3. Block targets hash as **relative offsets** in canonical order, so
//!    a uniform shift of the block list leaves branch shingles intact.
//!
//! Call instructions hash as `call:<arity>` without the callee name —
//! cross-program function ids are meaningless and callee names may be
//! renamed. Callee identity is instead captured by the context features
//! (out-degree, reachable-set size, …) computed from `octo-lint`'s call
//! graph.

use octo_ir::{canonicalize_function, Function, Inst, Operand, Program, Terminator};

/// Shingle width: hashes cover `K` consecutive tokens (instructions or
/// terminators). Streams shorter than `K` contribute one whole-stream
/// shingle.
pub const SHINGLE_K: usize = 4;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a, the workspace-standard dependency-free hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    /// Absorbs one u64 (byte-wise, little-endian).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// One normalized token: an instruction or terminator stripped to its
/// shape. Register identity is resolved at hash time (globally for the
/// exact hash, window-locally for shingles).
#[derive(Debug, Clone)]
struct Token {
    /// Opcode + static shape, e.g. `bin:add`, `load:4`, `call:2:r`.
    op: String,
    /// Registers in positional order (defs first, then uses).
    regs: Vec<u16>,
    /// Immediate values (constants, offsets, switch cases).
    imms: Vec<u64>,
    /// Referenced blocks as canonical-position deltas from this token's
    /// own block.
    blk_deltas: Vec<i64>,
}

fn op_token(op: &Operand, regs: &mut Vec<u16>, imms: &mut Vec<u64>) -> &'static str {
    match op {
        Operand::Reg(r) => {
            regs.push(r.0);
            "r"
        }
        Operand::Imm(v) => {
            imms.push(*v);
            "i"
        }
    }
}

/// Flattens the canonical function into its token stream. `canon` must
/// already be canonical: block position == block id.
fn tokenize(canon: &Function) -> Vec<Token> {
    let mut toks = Vec::new();
    for (bi, block) in canon.blocks.iter().enumerate() {
        let bi = bi as i64;
        let delta = |b: &octo_ir::BlockId| i64::from(b.0) - bi;
        for inst in &block.insts {
            let mut regs = Vec::new();
            let mut imms = Vec::new();
            let mut blk_deltas = Vec::new();
            if let Some(d) = inst.def() {
                regs.push(d.0);
            }
            let op = match inst {
                Inst::Const { value, .. } => {
                    imms.push(*value);
                    "const".to_string()
                }
                Inst::Move { src, .. } => format!("move:{}", op_token(src, &mut regs, &mut imms)),
                Inst::Bin { op, lhs, rhs, .. } => {
                    let l = op_token(lhs, &mut regs, &mut imms);
                    let r = op_token(rhs, &mut regs, &mut imms);
                    format!("bin:{}:{l}{r}", op.mnemonic())
                }
                Inst::Un { op, src, .. } => {
                    format!(
                        "un:{}:{}",
                        op.mnemonic(),
                        op_token(src, &mut regs, &mut imms)
                    )
                }
                Inst::CheckedBin {
                    op,
                    width,
                    lhs,
                    rhs,
                    ..
                } => {
                    let l = op_token(lhs, &mut regs, &mut imms);
                    let r = op_token(rhs, &mut regs, &mut imms);
                    format!("chk:{}:{width}:{l}{r}", op.mnemonic())
                }
                Inst::Load {
                    addr,
                    offset,
                    width,
                    ..
                } => {
                    imms.push(*offset);
                    format!("load:{width}:{}", op_token(addr, &mut regs, &mut imms))
                }
                Inst::Store {
                    addr,
                    offset,
                    src,
                    width,
                } => {
                    imms.push(*offset);
                    let a = op_token(addr, &mut regs, &mut imms);
                    let s = op_token(src, &mut regs, &mut imms);
                    format!("store:{width}:{a}{s}")
                }
                Inst::Alloc { size, region, .. } => {
                    format!("alloc:{region:?}:{}", op_token(size, &mut regs, &mut imms))
                }
                Inst::Call { dst, args, .. } => {
                    for a in args {
                        op_token(a, &mut regs, &mut imms);
                    }
                    format!(
                        "call:{}:{}",
                        args.len(),
                        if dst.is_some() { "r" } else { "v" }
                    )
                }
                Inst::CallIndirect { dst, target, args } => {
                    op_token(target, &mut regs, &mut imms);
                    for a in args {
                        op_token(a, &mut regs, &mut imms);
                    }
                    format!(
                        "icall:{}:{}",
                        args.len(),
                        if dst.is_some() { "r" } else { "v" }
                    )
                }
                // Function identity is context, not shape.
                Inst::FuncAddr { .. } => "faddr".to_string(),
                Inst::BlockAddr { block, .. } => {
                    blk_deltas.push(delta(block));
                    "baddr".to_string()
                }
                Inst::FileOpen { .. } => "open".to_string(),
                Inst::FileRead { fd, buf, len, .. } => {
                    let f = op_token(fd, &mut regs, &mut imms);
                    let b = op_token(buf, &mut regs, &mut imms);
                    let l = op_token(len, &mut regs, &mut imms);
                    format!("read:{f}{b}{l}")
                }
                Inst::FileGetc { fd, .. } => {
                    format!("getc:{}", op_token(fd, &mut regs, &mut imms))
                }
                Inst::FileSeek { fd, pos } => {
                    let f = op_token(fd, &mut regs, &mut imms);
                    let p = op_token(pos, &mut regs, &mut imms);
                    format!("seek:{f}{p}")
                }
                Inst::FileTell { fd, .. } => {
                    format!("tell:{}", op_token(fd, &mut regs, &mut imms))
                }
                Inst::FileSize { fd, .. } => {
                    format!("fsize:{}", op_token(fd, &mut regs, &mut imms))
                }
                Inst::MemMap { fd, .. } => {
                    format!("mmap:{}", op_token(fd, &mut regs, &mut imms))
                }
                Inst::Trap { code } => {
                    imms.push(*code);
                    "trap".to_string()
                }
                Inst::Nop => "nop".to_string(),
            };
            toks.push(Token {
                op,
                regs,
                imms,
                blk_deltas,
            });
        }

        let mut regs = Vec::new();
        let mut imms = Vec::new();
        let mut blk_deltas = Vec::new();
        let op = match &block.term {
            Terminator::Jmp(b) => {
                blk_deltas.push(delta(b));
                "jmp".to_string()
            }
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = op_token(cond, &mut regs, &mut imms);
                blk_deltas.push(delta(then_bb));
                blk_deltas.push(delta(else_bb));
                format!("br:{c}")
            }
            Terminator::Switch {
                scrut,
                cases,
                default,
            } => {
                let s = op_token(scrut, &mut regs, &mut imms);
                for (v, b) in cases {
                    imms.push(*v);
                    blk_deltas.push(delta(b));
                }
                blk_deltas.push(delta(default));
                format!("switch:{}:{s}", cases.len())
            }
            Terminator::JmpIndirect { target } => {
                format!("ijmp:{}", op_token(target, &mut regs, &mut imms))
            }
            Terminator::Ret(None) => "ret".to_string(),
            Terminator::Ret(Some(v)) => {
                format!("ret:{}", op_token(v, &mut regs, &mut imms))
            }
            Terminator::Halt { code } => {
                format!("halt:{}", op_token(code, &mut regs, &mut imms))
            }
        };
        toks.push(Token {
            op,
            regs,
            imms,
            blk_deltas,
        });
    }
    toks
}

/// Hashes `window` with window-local register numbering.
fn hash_window(window: &[Token]) -> u64 {
    let mut local: Vec<u16> = Vec::new();
    let mut h = Fnv::new();
    for tok in window {
        h.write_bytes(tok.op.as_bytes());
        h.write_u64(0x5eed); // separator
        for r in &tok.regs {
            let id = match local.iter().position(|x| x == r) {
                Some(i) => i,
                None => {
                    local.push(*r);
                    local.len() - 1
                }
            };
            h.write_u64(id as u64);
        }
        for v in &tok.imms {
            h.write_u64(*v);
        }
        for d in &tok.blk_deltas {
            h.write_u64(*d as u64);
        }
    }
    h.finish()
}

/// Callgraph-context features of one function, compared by ratio in
/// [`context_similarity`]. All counts come from
/// [`octo_lint::build_call_graph`] over the whole program, so they see
/// through the function body to its interprocedural role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextFeatures {
    /// Distinct direct callees.
    pub out_degree: u64,
    /// Distinct direct callers.
    pub in_degree: u64,
    /// Functions reachable from this one (proven edges only).
    pub reach_count: u64,
    /// Whether the function's address is taken (`faddr`).
    pub addr_taken: bool,
    /// Declared parameter count.
    pub n_params: u64,
}

impl ContextFeatures {
    fn ratios(&self) -> [u64; 4] {
        [
            self.out_degree,
            self.in_degree,
            self.reach_count,
            self.n_params,
        ]
    }
}

/// Similarity of two context-feature vectors in `[0, 1]`: the mean of
/// per-feature `min+1 / max+1` ratios, with address-takenness as an
/// exact-match feature.
pub fn context_similarity(a: &ContextFeatures, b: &ContextFeatures) -> f64 {
    let mut total = 0.0;
    for (x, y) in a.ratios().iter().zip(b.ratios().iter()) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        total += (*lo as f64 + 1.0) / (*hi as f64 + 1.0);
    }
    total += if a.addr_taken == b.addr_taken {
        1.0
    } else {
        0.0
    };
    total / 5.0
}

/// The fingerprint of one function.
#[derive(Debug, Clone)]
pub struct FuncFingerprint {
    /// Function name (as spelled in its program).
    pub name: String,
    /// Non-terminator instruction count (size guard for retrieval).
    pub insts: usize,
    /// Basic-block count.
    pub blocks: usize,
    /// FNV-1a over the full canonical token stream with global register
    /// ids — equal exactly when the canonical bodies are identical.
    pub exact: u64,
    /// Sorted, deduplicated k-gram shingle hashes.
    pub shingles: Vec<u64>,
    /// Interprocedural context.
    pub ctx: ContextFeatures,
}

/// Fingerprints of every function in a program, in function-id order.
#[derive(Debug, Clone)]
pub struct ProgramFingerprints {
    /// One fingerprint per function, indexed by `FuncId`.
    pub funcs: Vec<FuncFingerprint>,
    /// Index of the program entry function.
    pub entry: usize,
}

/// Fingerprints one function. `ctx` is supplied by the caller (it needs
/// whole-program callgraph knowledge).
pub fn fingerprint_function(f: &Function, ctx: ContextFeatures) -> FuncFingerprint {
    let canon = canonicalize_function(f);
    let toks = tokenize(&canon);

    let mut exact = Fnv::new();
    for t in &toks {
        exact.write_bytes(t.op.as_bytes());
        exact.write_u64(0x5eed);
        for r in &t.regs {
            exact.write_u64(u64::from(*r));
        }
        for v in &t.imms {
            exact.write_u64(*v);
        }
        for d in &t.blk_deltas {
            exact.write_u64(*d as u64);
        }
    }

    let mut shingles: Vec<u64> = if toks.len() <= SHINGLE_K {
        vec![hash_window(&toks)]
    } else {
        toks.windows(SHINGLE_K).map(hash_window).collect()
    };
    shingles.sort_unstable();
    shingles.dedup();

    FuncFingerprint {
        name: f.name.clone(),
        insts: f.inst_count(),
        blocks: f.blocks.len(),
        exact: exact.finish(),
        shingles,
        ctx,
    }
}

/// Fingerprints every function of `p`, deriving context features from
/// `octo-lint`'s call graph (proven edges only — unknown indirect calls
/// widen reachability for *scoring paths*, not for context identity).
pub fn fingerprint_program(p: &Program) -> ProgramFingerprints {
    let cg = octo_lint::build_call_graph(p);
    let n = p.function_count();
    let mut in_degree = vec![0u64; n];
    for caller in 0..n {
        let mut seen: Vec<usize> = Vec::new();
        for c in cg.direct[caller]
            .iter()
            .chain(cg.resolved_icalls[caller].iter())
        {
            let c = c.0 as usize;
            if !seen.contains(&c) {
                seen.push(c);
                in_degree[c] += 1;
            }
        }
    }

    let funcs = p
        .iter()
        .map(|(fid, f)| {
            let fi = fid.0 as usize;
            let reach_count = cg
                .reach_kinds_from(fid)
                .iter()
                .filter(|k| matches!(k, octo_lint::ReachKind::Direct))
                .count() as u64
                - 1; // exclude self
            let ctx = ContextFeatures {
                out_degree: cg.direct[fi].len() as u64 + cg.resolved_icalls[fi].len() as u64,
                in_degree: in_degree[fi],
                reach_count,
                addr_taken: cg.addr_taken[fi],
                n_params: u64::from(f.n_params),
            };
            fingerprint_function(f, ctx)
        })
        .collect();

    ProgramFingerprints {
        funcs,
        entry: p.entry().0 as usize,
    }
}

/// `|a ∩ b| / |a|` over sorted shingle vectors: how much of `a` survives
/// in `b`. Containment (not Jaccard) keeps the score high when the
/// clone is *embedded* in a larger function — the inlined-callee case.
pub fn containment(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut shared = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    fn ctx0() -> ContextFeatures {
        ContextFeatures {
            out_degree: 0,
            in_degree: 0,
            reach_count: 0,
            addr_taken: false,
            n_params: 0,
        }
    }

    #[test]
    fn renamed_registers_share_the_fingerprint() {
        let a = parse_program(
            "func main() {\nentry:\n fd = open\n v = getc fd\n w = add v, 2\n halt w\n}\n",
        )
        .unwrap();
        let b = parse_program(
            "func main() {\nentry:\n handle = open\n x = getc handle\n y = add x, 2\n halt y\n}\n",
        )
        .unwrap();
        let fa = fingerprint_function(a.func(a.entry()), ctx0());
        let fb = fingerprint_function(b.func(b.entry()), ctx0());
        assert_eq!(fa.exact, fb.exact);
        assert_eq!(fa.shingles, fb.shingles);
    }

    #[test]
    fn constant_change_alters_the_fingerprint() {
        let a = parse_program("func main() {\nentry:\n v = 5\n halt v\n}\n").unwrap();
        let b = parse_program("func main() {\nentry:\n v = 6\n halt v\n}\n").unwrap();
        let fa = fingerprint_function(a.func(a.entry()), ctx0());
        let fb = fingerprint_function(b.func(b.entry()), ctx0());
        assert_ne!(fa.exact, fb.exact);
        assert_ne!(fa.shingles, fb.shingles);
    }

    #[test]
    fn embedded_clone_has_full_containment() {
        // The same loop body, once bare and once behind a prologue block:
        // every original shingle must survive verbatim.
        let bare = parse_program(
            "func main() {\nentry:\n fd = open\n i = 0\n jmp loop\n\
             loop:\n done = uge i, 4\n br done, fin, body\n\
             body:\n v = getc fd\n i = add i, 1\n jmp loop\n\
             fin:\n ret i\n}\n",
        )
        .unwrap();
        let embedded = parse_program(
            "func main() {\nentry:\n pad = 123\n scratch = alloc 8\n store.4 scratch, pad\n \
             jmp inner\n\
             inner:\n fd = open\n i = 0\n jmp loop\n\
             loop:\n done = uge i, 4\n br done, fin, body\n\
             body:\n v = getc fd\n i = add i, 1\n jmp loop\n\
             fin:\n ret i\n}\n",
        )
        .unwrap();
        let fa = fingerprint_function(bare.func(bare.entry()), ctx0());
        let fb = fingerprint_function(embedded.func(embedded.entry()), ctx0());
        let c = containment(&fa.shingles, &fb.shingles);
        assert!((c - 1.0).abs() < 1e-12, "containment {c} < 1.0");
        assert_ne!(
            fa.exact, fb.exact,
            "embedding must still change the exact hash"
        );
    }

    #[test]
    fn context_similarity_is_one_for_equal_and_decays() {
        let a = ContextFeatures {
            out_degree: 2,
            in_degree: 1,
            reach_count: 3,
            addr_taken: false,
            n_params: 1,
        };
        assert!((context_similarity(&a, &a) - 1.0).abs() < 1e-12);
        let b = ContextFeatures { out_degree: 9, ..a };
        let s = context_similarity(&a, &b);
        assert!(s < 1.0 && s > 0.5, "{s}");
    }
}
