//! Property tests for fingerprint invariance: the transforms a
//! downstream vendor applies when cloning a function (register
//! renaming, block reordering, prologue embedding) must not change what
//! retrieval sees, while semantic edits must.
//!
//! The transforms come from `octo_corpus::variants` — the same ones the
//! precision/recall harness uses — applied here to randomly chosen real
//! corpus functions with randomized seeds.

use octo_clone::{
    containment, fingerprint_function, retrieve_pairs, CloneParams, ContextFeatures,
    FuncFingerprint,
};
use octo_corpus::variants::{embed_prologue, permute_registers, reorder_blocks, semantic_edit};
use octo_corpus::{all_pairs, pair_by_idx};
use octo_ir::{Function, Program};
use proptest::prelude::*;

/// Fingerprints with a fixed context: these properties are about the
/// *body* fingerprint, and body transforms never change the callgraph
/// context anyway.
fn fp(f: &Function) -> FuncFingerprint {
    fingerprint_function(
        f,
        ContextFeatures {
            out_degree: 0,
            in_degree: 0,
            reach_count: 0,
            addr_taken: false,
            n_params: u64::from(f.n_params),
        },
    )
}

/// Every shared corpus function big enough to be a retrieval query,
/// with its host program index.
fn query_functions() -> Vec<(u32, String)> {
    all_pairs()
        .iter()
        .flat_map(|p| {
            p.shared
                .iter()
                .map(|s| (p.idx, s.clone()))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn lookup(idx: u32, name: &str) -> Function {
    let pair = pair_by_idx(idx).unwrap();
    let id = pair.t.func_by_name(name).unwrap();
    pair.t.func(id).clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Register renaming and block reordering are invisible to the
    /// fingerprint: exact hash, shingles and everything else identical.
    #[test]
    fn fingerprint_invariant_under_rename_and_reorder(
        choice in 0usize..100,
        seed in 1u64..u64::MAX,
    ) {
        let queries = query_functions();
        let (idx, name) = &queries[choice % queries.len()];
        let f = lookup(*idx, name);
        let base = fp(&f);

        let renamed = fp(&permute_registers(&f, seed));
        prop_assert_eq!(base.exact, renamed.exact, "rename changed the exact hash");
        prop_assert_eq!(&base.shingles, &renamed.shingles);

        let reordered = fp(&reorder_blocks(&f, seed));
        prop_assert_eq!(base.exact, reordered.exact, "reorder changed the exact hash");
        prop_assert_eq!(&base.shingles, &reordered.shingles);
    }

    /// Embedding the body behind a host prologue keeps containment at
    /// exactly 1.0 — every original shingle survives — even though the
    /// exact hash must differ.
    #[test]
    fn embedded_clone_keeps_full_containment(choice in 0usize..100) {
        let queries = query_functions();
        let (idx, name) = &queries[choice % queries.len()];
        let f = lookup(*idx, name);
        let base = fp(&f);
        let embedded = fp(&embed_prologue(&f));
        prop_assert_ne!(base.exact, embedded.exact);
        let c = containment(&base.shingles, &embedded.shingles);
        prop_assert!((c - 1.0).abs() < 1e-12, "containment {} != 1.0", c);
    }

    /// A semantic edit (operands swapped, constants perturbed) touches
    /// every window: the fingerprints must share almost nothing.
    #[test]
    fn semantic_edit_destroys_the_fingerprint(choice in 0usize..100) {
        let queries = query_functions();
        let (idx, name) = &queries[choice % queries.len()];
        let f = lookup(*idx, name);
        let base = fp(&f);
        let edited = fp(&semantic_edit(&f));
        prop_assert_ne!(base.exact, edited.exact);
        let c = containment(&base.shingles, &edited.shingles);
        prop_assert!(c < 0.5, "decoy containment {} too high for {}", c, name);
    }
}

/// Deterministic end-to-end spot check kept outside proptest: the
/// retrieval layer (not just raw fingerprints) sees through a combined
/// rename + reorder of every shared function.
#[test]
fn retrieval_survives_combined_rename_and_reorder() {
    for pair in all_pairs() {
        let funcs: Vec<Function> = pair
            .t
            .iter()
            .map(|(_, f)| {
                if pair.shared.iter().any(|s| s == &f.name) {
                    reorder_blocks(&permute_registers(f, 0xDEC0DE), 0xC0FFEE)
                } else {
                    f.clone()
                }
            })
            .collect();
        let entry = pair.t.func(pair.t.entry()).name.clone();
        let t = Program::from_functions(funcs, &entry).unwrap();
        let cands = retrieve_pairs(&pair.s, &t, &CloneParams::default());
        for shared in &pair.shared {
            assert!(
                cands
                    .iter()
                    .any(|c| &c.s_func == shared && &c.t_func == shared && c.exact),
                "idx{:02}: {} not retrieved as exact after rename+reorder",
                pair.idx,
                shared
            );
        }
    }
}
