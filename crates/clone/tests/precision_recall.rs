//! Precision/recall harness over the synthesized variant corpus.
//!
//! For every Table II pair, `octo_corpus::variants` synthesizes three
//! positive variants of `T` (registers renamed, blocks reordered, body
//! embedded behind a host prologue) and one negative decoy (same shape,
//! different computation everywhere). Retrieval at the default
//! threshold must rediscover every shared function in every positive
//! variant (recall 1.0 — the paper's setting assumes the clone detector
//! finds ℓ) and reject decoys often enough to keep precision ≥ 0.8.
//!
//! The floors pinned here are quoted in `docs/clone-scanning.md`; keep
//! the two in sync.

use octo_clone::{retrieve_pairs, CloneParams};
use octo_corpus::variants::{variant_corpus, VariantKind};

/// Recall floor for positive variants: every shared function retrieved,
/// no exceptions. (The verification oracle can reject false positives
/// downstream; a false *negative* is silent missed propagation.)
const RECALL_FLOOR: f64 = 1.0;

/// Precision floor over the whole variant corpus.
const PRECISION_FLOOR: f64 = 0.8;

#[test]
fn recall_is_total_and_precision_holds_on_variant_corpus() {
    let params = CloneParams::default();
    let mut tp = 0usize; // shared function retrieved in a positive variant
    let mut fnr = Vec::new(); // false negatives (named, for the message)
    let mut fpr = Vec::new(); // false positives: decoy retrieved
    let mut tn = 0usize;

    for case in variant_corpus() {
        let cands = retrieve_pairs(&case.s, &case.t, &params);
        for shared in &case.shared {
            let hit = cands
                .iter()
                .any(|c| &c.s_func == shared && &c.t_func == shared);
            match (case.kind.is_positive(), hit) {
                (true, true) => tp += 1,
                (true, false) => fnr.push(format!("{}:{shared}", case.name)),
                (false, true) => fpr.push(format!("{}:{shared}", case.name)),
                (false, false) => tn += 1,
            }
        }
    }

    let recall = tp as f64 / (tp + fnr.len()) as f64;
    assert!(
        recall >= RECALL_FLOOR,
        "recall {recall:.3} < {RECALL_FLOOR} — missed: {fnr:?}"
    );
    let precision = tp as f64 / (tp + fpr.len()) as f64;
    assert!(
        precision >= PRECISION_FLOOR,
        "precision {precision:.3} < {PRECISION_FLOOR} — false positives: {fpr:?}"
    );
    // The harness must actually exercise both classes.
    assert!(tp >= 45, "positives exercised: {tp}");
    assert!(tn + fpr.len() >= 15, "decoys exercised: {}", tn + fpr.len());
}

/// Positive variants score high enough that the default threshold is
/// not load-bearing: renamed and reordered clones are *exact* matches
/// (score 1.0), embedded clones keep containment 1.0.
#[test]
fn positive_variants_score_at_the_top() {
    let params = CloneParams::default();
    for case in variant_corpus() {
        if !case.kind.is_positive() {
            continue;
        }
        let cands = retrieve_pairs(&case.s, &case.t, &params);
        for shared in &case.shared {
            let c = cands
                .iter()
                .find(|c| &c.s_func == shared && &c.t_func == shared)
                .unwrap_or_else(|| panic!("{}:{shared} not retrieved", case.name));
            match case.kind {
                VariantKind::Renamed | VariantKind::Reordered => {
                    assert!(c.exact, "{}:{shared} should be an exact match", case.name);
                }
                VariantKind::Inlined => {
                    assert!(
                        (c.containment - 1.0).abs() < 1e-12,
                        "{}:{shared} containment {:.4}",
                        case.name,
                        c.containment
                    );
                }
                VariantKind::Decoy => unreachable!(),
            }
        }
    }
}
