//! Bounded, region-based process memory.
//!
//! Every allocation becomes a [`Region`] with hard bounds; regions are
//! separated by guard gaps so an out-of-bounds access lands in unmapped
//! space and is reported — the moral equivalent of a SIGSEGV, which is how
//! the paper's subject binaries crash on CWE-119 vulnerabilities.

use octo_ir::{RegionKind, Width};

/// Base address of the first allocation. Anything below
/// [`NULL_PAGE_END`] is the "null page": accessing it is a null-pointer
/// dereference rather than a generic out-of-bounds fault.
pub const HEAP_BASE: u64 = 0x0001_0000;
/// Upper bound of the null page.
pub const NULL_PAGE_END: u64 = 0x1000;
/// Guard gap inserted between consecutive regions.
pub const GUARD_GAP: u64 = 64;

/// One contiguous allocated region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// First valid address.
    pub base: u64,
    /// Region size in bytes.
    pub size: u64,
    /// Heap or stack (affects crash classification only).
    pub kind: RegionKind,
    /// Backing bytes (len == size).
    pub data: Vec<u8>,
}

impl Region {
    /// Whether `addr` lies within the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

/// Why a memory access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Address in the null page.
    Null {
        /// Faulting address.
        addr: u64,
    },
    /// Address outside every region (or straddling a region end).
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Kind of the nearest region below the address, when one exists —
        /// used to classify heap vs stack overflow.
        nearest: Option<RegionKind>,
    },
}

/// Byte-addressable memory made of bounds-checked regions.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    regions: Vec<Region>,
    next_base: u64,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory {
            regions: Vec::new(),
            next_base: HEAP_BASE,
        }
    }

    /// Allocates `size` bytes (zero-initialised) and returns the base
    /// address. Zero-size allocations still receive a unique address.
    pub fn alloc(&mut self, size: u64, kind: RegionKind) -> u64 {
        let base = self.next_base;
        self.next_base = base + size.max(1) + GUARD_GAP;
        // keep 16-byte alignment for readability of addresses in reports
        self.next_base = (self.next_base + 15) & !15;
        self.regions.push(Region {
            base,
            size,
            kind,
            data: vec![0; size as usize],
        });
        base
    }

    /// Allocates a region pre-filled with `bytes` (used by `mmap`).
    /// An empty `bytes` produces a zero-size region: it has a unique base
    /// address but no accessible bytes.
    pub fn alloc_with(&mut self, bytes: &[u8], kind: RegionKind) -> u64 {
        let base = self.alloc(bytes.len() as u64, kind);
        if !bytes.is_empty() {
            let region = self.region_of_mut(base).expect("region just allocated");
            region.data.copy_from_slice(bytes);
        }
        base
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: u64) -> Option<&Region> {
        match self.regions.binary_search_by(|r| cmp_region(r, addr)) {
            Ok(i) => Some(&self.regions[i]),
            Err(_) => None,
        }
    }

    fn region_of_mut(&mut self, addr: u64) -> Option<&mut Region> {
        match self.regions.binary_search_by(|r| cmp_region(r, addr)) {
            Ok(i) => Some(&mut self.regions[i]),
            Err(_) => None,
        }
    }

    /// Classifies a fault at `addr` (which must not resolve to a region).
    fn fault(&self, addr: u64) -> MemFault {
        if addr < NULL_PAGE_END {
            return MemFault::Null { addr };
        }
        let nearest = self
            .regions
            .iter()
            .rfind(|r| r.base <= addr)
            .map(|r| r.kind);
        MemFault::OutOfBounds { addr, nearest }
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Faults if `addr` is unmapped.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        match self.region_of(addr) {
            Some(r) => Ok(r.data[(addr - r.base) as usize]),
            None => Err(self.fault(addr)),
        }
    }

    /// Writes one byte.
    ///
    /// # Errors
    /// Faults if `addr` is unmapped.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), MemFault> {
        match self.region_of_mut(addr) {
            Some(r) => {
                let off = (addr - r.base) as usize;
                r.data[off] = value;
                Ok(())
            }
            None => Err(self.fault(addr)),
        }
    }

    /// Reads `width` bytes little-endian starting at `addr`.
    ///
    /// # Errors
    /// Faults on the first unmapped byte.
    pub fn read(&self, addr: u64, width: Width) -> Result<u64, MemFault> {
        let mut value = 0u64;
        for i in 0..width.bytes() {
            let b = self.read_u8(addr.wrapping_add(i))?;
            value |= u64::from(b) << (8 * i);
        }
        Ok(value)
    }

    /// Writes the low `width` bytes of `value` little-endian at `addr`.
    ///
    /// # Errors
    /// Faults on the first unmapped byte. Bytes before the fault are
    /// written (like a real partial store before the faulting access).
    pub fn write(&mut self, addr: u64, value: u64, width: Width) -> Result<(), MemFault> {
        for i in 0..width.bytes() {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Copies `bytes` into memory at `addr`.
    ///
    /// # Errors
    /// Faults on the first unmapped byte.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b)?;
        }
        Ok(())
    }

    /// Number of regions allocated so far.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total bytes allocated across all regions.
    pub fn allocated_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }
}

fn cmp_region(r: &Region, addr: u64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    if addr < r.base {
        Ordering::Greater
    } else if addr >= r.base + r.size {
        Ordering::Less
    } else {
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let mut m = Memory::new();
        let a = m.alloc(16, RegionKind::Heap);
        m.write(a, 0x1122_3344_5566_7788, Width::W8).unwrap();
        assert_eq!(m.read(a, Width::W8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read(a, Width::W1).unwrap(), 0x88); // little-endian
        assert_eq!(m.read(a + 7, Width::W1).unwrap(), 0x11);
    }

    #[test]
    fn oob_is_detected_and_classified() {
        let mut m = Memory::new();
        let a = m.alloc(8, RegionKind::Stack);
        let err = m.read_u8(a + 8).unwrap_err();
        assert_eq!(
            err,
            MemFault::OutOfBounds {
                addr: a + 8,
                nearest: Some(RegionKind::Stack)
            }
        );
    }

    #[test]
    fn straddling_read_faults() {
        let mut m = Memory::new();
        let a = m.alloc(4, RegionKind::Heap);
        assert!(m.read(a, Width::W4).is_ok());
        assert!(m.read(a + 1, Width::W4).is_err());
    }

    #[test]
    fn null_page_faults_as_null() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0).unwrap_err(), MemFault::Null { addr: 0 });
        assert_eq!(m.read_u8(0x20).unwrap_err(), MemFault::Null { addr: 0x20 });
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut m = Memory::new();
        let a = m.alloc(100, RegionKind::Heap);
        let b = m.alloc(100, RegionKind::Heap);
        assert!(b >= a + 100 + GUARD_GAP);
        m.write_u8(a + 99, 1).unwrap();
        assert!(m.write_u8(a + 100, 1).is_err());
        m.write_u8(b, 2).unwrap();
    }

    #[test]
    fn alloc_with_copies_contents() {
        let mut m = Memory::new();
        let a = m.alloc_with(b"hello", RegionKind::Heap);
        assert_eq!(m.read_u8(a + 1).unwrap(), b'e');
        assert_eq!(m.allocated_bytes(), 5);
        assert_eq!(m.region_count(), 1);
    }

    #[test]
    fn zero_size_allocations_get_unique_addresses() {
        let mut m = Memory::new();
        let a = m.alloc(0, RegionKind::Heap);
        let b = m.alloc(0, RegionKind::Heap);
        assert_ne!(a, b);
        assert!(m.read_u8(a).is_err());
    }
}
