//! Execution trace recording.
//!
//! A [`TraceHook`] records the block-level path one execution takes — the
//! analogue of a PIN basic-block trace. Traces back dynamic-CFG evidence,
//! diffing two inputs' behaviour, and the `--trace` mode of the CLI tool.

use std::fmt;

use octo_ir::{BlockId, FuncId, Program};

use crate::hooks::Hook;

/// One recorded control-transfer event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An intraprocedural edge was taken.
    Edge {
        /// Function containing the edge.
        func: FuncId,
        /// Source block.
        from: BlockId,
        /// Target block.
        to: BlockId,
    },
    /// A call entered `callee` at the given depth.
    Call {
        /// The function entered.
        callee: FuncId,
        /// Call depth inside the callee.
        depth: usize,
    },
    /// A function returned.
    Ret {
        /// The function that returned.
        func: FuncId,
    },
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// The recorded events in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Distinct functions entered, in first-entry order.
    pub fn functions_entered(&self) -> Vec<FuncId> {
        let mut seen = Vec::new();
        for e in &self.events {
            if let TraceEvent::Call { callee, .. } = e {
                if !seen.contains(callee) {
                    seen.push(*callee);
                }
            }
        }
        seen
    }

    /// How many times `func` was entered.
    pub fn entry_count(&self, func: FuncId) -> u32 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Call { callee, .. } if *callee == func))
            .count() as u32
    }

    /// The first index where this trace diverges from `other`, or `None`
    /// if one is a prefix of the other.
    pub fn divergence(&self, other: &Trace) -> Option<usize> {
        self.events
            .iter()
            .zip(other.events.iter())
            .position(|(a, b)| a != b)
    }

    /// Renders the trace with function names from `program`.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        let mut depth = 0usize;
        for e in &self.events {
            match e {
                TraceEvent::Call { callee, .. } => {
                    out.push_str(&format!(
                        "{:indent$}-> {}\n",
                        "",
                        program.func(*callee).name,
                        indent = depth * 2
                    ));
                    depth += 1;
                }
                TraceEvent::Ret { func } => {
                    depth = depth.saturating_sub(1);
                    out.push_str(&format!(
                        "{:indent$}<- {}\n",
                        "",
                        program.func(*func).name,
                        indent = depth * 2
                    ));
                }
                TraceEvent::Edge { func, from, to } => {
                    out.push_str(&format!(
                        "{:indent$}   {}:{}→{}\n",
                        "",
                        program.func(*func).name,
                        from,
                        to,
                        indent = depth * 2
                    ));
                }
            }
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trace({} events)", self.len())
    }
}

/// Hook that records a [`Trace`], optionally capped to a maximum event
/// count (long traces of watchdog loops would otherwise balloon).
#[derive(Debug, Default)]
pub struct TraceHook {
    /// The trace recorded so far.
    pub trace: Trace,
    /// Maximum events to keep (0 = unlimited).
    pub max_events: usize,
}

impl TraceHook {
    /// Unlimited trace recorder.
    pub fn new() -> TraceHook {
        TraceHook::default()
    }

    /// Recorder keeping at most `max_events` events.
    pub fn with_limit(max_events: usize) -> TraceHook {
        TraceHook {
            trace: Trace::default(),
            max_events,
        }
    }

    fn push(&mut self, e: TraceEvent) {
        if self.max_events == 0 || self.trace.events.len() < self.max_events {
            self.trace.events.push(e);
        }
    }
}

impl Hook for TraceHook {
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        self.push(TraceEvent::Edge { func, from, to });
    }

    fn on_call(&mut self, callee: FuncId, _args: &[u64], depth: usize) {
        self.push(TraceEvent::Call { callee, depth });
    }

    fn on_ret(&mut self, func: FuncId, _value: Option<u64>, _depth: usize) {
        self.push(TraceEvent::Ret { func });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Vm;
    use octo_ir::parse::parse_program;

    const SRC: &str = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = eq b, 1
    br c, yes, no
yes:
    call helper()
    halt 0
no:
    halt 1
}
func helper() {
entry:
    ret
}
"#;

    #[test]
    fn records_calls_edges_and_rets() {
        let p = parse_program(SRC).unwrap();
        let mut hook = TraceHook::new();
        Vm::new(&p, &[1]).run_hooked(&mut hook);
        let helper = p.func_by_name("helper").unwrap();
        assert_eq!(hook.trace.entry_count(helper), 1);
        assert_eq!(hook.trace.functions_entered(), vec![p.entry(), helper]);
        assert!(hook
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Ret { func } if *func == helper)));
    }

    #[test]
    fn divergence_pinpoints_input_difference() {
        let p = parse_program(SRC).unwrap();
        let mut a = TraceHook::new();
        Vm::new(&p, &[1]).run_hooked(&mut a);
        let mut b = TraceHook::new();
        Vm::new(&p, &[2]).run_hooked(&mut b);
        // Identical up to the branch, diverging at the first edge.
        let d = a.trace.divergence(&b.trace).expect("diverges");
        assert!(matches!(a.trace.events()[d], TraceEvent::Edge { .. }));
        assert!(a.trace.divergence(&a.trace).is_none());
    }

    #[test]
    fn limit_caps_recording() {
        let p = parse_program("func main() {\nentry:\n jmp entry\n}\n").unwrap();
        let mut hook = TraceHook::with_limit(10);
        Vm::new(&p, &[])
            .with_limits(crate::vm::Limits {
                max_insts: 10_000,
                max_call_depth: 4,
            })
            .run_hooked(&mut hook);
        assert_eq!(hook.trace.len(), 10);
    }

    #[test]
    fn render_shows_call_nesting() {
        let p = parse_program(SRC).unwrap();
        let mut hook = TraceHook::new();
        Vm::new(&p, &[1]).run_hooked(&mut hook);
        let text = hook.trace.render(&p);
        assert!(text.contains("-> helper"), "{text}");
        assert!(text.contains("<- helper"), "{text}");
    }
}
