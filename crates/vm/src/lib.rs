//! # octo-vm — concrete MicroIR interpreter with instrumentation hooks.
//!
//! This crate is the reproduction's substitute for Intel PIN (the dynamic
//! binary instrumentation framework the paper's taint engine is built on,
//! §IV-A). It executes [`octo_ir`] programs against a single input file and
//! exposes the same observables PIN exposes on native binaries:
//!
//! * a per-instruction callback with access to the live register file,
//! * file-read / memory-mapping hook events carrying the *file offsets*
//!   uploaded into memory (Fig. 4 of the paper),
//! * function entry/exit events (for `ep` counting),
//! * block-entry events (edge coverage for the greybox fuzzers),
//! * crash reports with a call-stack backtrace (for `ep` identification,
//!   paper "Preprocessing").
//!
//! The crash model maps onto the CWE classes in the paper's Table II:
//! out-of-bounds access → CWE-119, checked-arithmetic overflow → CWE-190,
//! watchdog expiry → CWE-835 (infinite loop), plus null dereference,
//! division by zero, and explicit traps.
//!
//! ```
//! use octo_ir::parse::parse_program;
//! use octo_vm::{Vm, RunOutcome};
//!
//! let program = parse_program(
//!     "func main() {\nentry:\n fd = open\n b = getc fd\n ret b\n}\n",
//! ).expect("valid program");
//! let outcome = Vm::new(&program, b"A").run();
//! assert_eq!(outcome, RunOutcome::Exit(65));
//! ```
#![warn(missing_docs)]

pub mod crash;
pub mod hooks;
pub mod mem;
pub mod trace;
pub mod vm;

pub use crash::{Backtrace, CrashKind, CrashReport};
pub use hooks::{Hook, HookCtx, NoHook};
pub use mem::{Memory, Region};
pub use trace::{Trace, TraceEvent, TraceHook};
pub use vm::{Limits, RunOutcome, Vm};

/// Instruction-to-time calibration for the virtual clock.
///
/// The evaluation tables report elapsed time on the paper's testbed
/// (i7-7700). Our substrate is an interpreter, so wall-clock time measures
/// the interpreter, not the subject program; the *virtual clock* instead
/// charges each executed instruction a fixed cost. `INSTS_PER_SECOND` is
/// calibrated so the corpus programs land in the same order of magnitude as
/// the paper's Table IV/V entries.
pub const INSTS_PER_SECOND: u64 = 100_000;

/// Virtual seconds corresponding to `insts` executed instructions.
pub fn virtual_seconds(insts: u64) -> f64 {
    insts as f64 / INSTS_PER_SECOND as f64
}
