//! The concrete MicroIR interpreter.

use octo_ir::{
    decode_block_addr, decode_func_addr, encode_block_addr, encode_func_addr, BlockId, FuncId,
    Inst, Operand, Program, Reg, RegionKind, Terminator,
};

use crate::crash::{Backtrace, CrashKind, CrashReport};
use crate::hooks::{Hook, HookCtx, NoHook};
use crate::mem::{MemFault, Memory};

/// The (only) file descriptor value returned by `open`.
pub const INPUT_FD: u64 = 3;

/// Resource limits for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Watchdog: executing more instructions than this is reported as a
    /// suspected infinite loop (CWE-835).
    pub max_insts: u64,
    /// Maximum call depth before a stack-overflow crash.
    pub max_call_depth: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_insts: 2_000_000,
            max_call_depth: 128,
        }
    }
}

/// Result of one program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Clean termination with an exit code (`halt` or return from entry).
    Exit(u64),
    /// The program crashed.
    Crash(CrashReport),
}

impl RunOutcome {
    /// The crash report, if the run crashed.
    pub fn crash(&self) -> Option<&CrashReport> {
        match self {
            RunOutcome::Crash(r) => Some(r),
            RunOutcome::Exit(_) => None,
        }
    }

    /// Whether the run crashed.
    pub fn is_crash(&self) -> bool {
        matches!(self, RunOutcome::Crash(_))
    }
}

struct Frame {
    func: FuncId,
    block: BlockId,
    idx: usize,
    regs: Vec<u64>,
    ret_dst: Option<Reg>,
}

/// A single-use interpreter for one `(program, input)` execution.
///
/// ```
/// use octo_ir::parse::parse_program;
/// use octo_vm::Vm;
///
/// let p = parse_program("func main() {\nentry:\n halt 42\n}\n")?;
/// let outcome = Vm::new(&p, b"").run();
/// assert_eq!(outcome, octo_vm::RunOutcome::Exit(42));
/// # Ok::<(), octo_ir::parse::ParseError>(())
/// ```
pub struct Vm<'p> {
    program: &'p Program,
    input: &'p [u8],
    limits: Limits,
    insts_executed: u64,
}

impl<'p> Vm<'p> {
    /// Creates an interpreter for `program` reading `input` as its file.
    pub fn new(program: &'p Program, input: &'p [u8]) -> Vm<'p> {
        Vm {
            program,
            input,
            limits: Limits::default(),
            insts_executed: 0,
        }
    }

    /// Replaces the default limits.
    pub fn with_limits(mut self, limits: Limits) -> Vm<'p> {
        self.limits = limits;
        self
    }

    /// Runs to completion without instrumentation.
    pub fn run(&mut self) -> RunOutcome {
        self.run_hooked(&mut NoHook)
    }

    /// Runs to completion, delivering events to `hook`.
    pub fn run_hooked<H: Hook>(&mut self, hook: &mut H) -> RunOutcome {
        let mut exec = Exec {
            program: self.program,
            input: self.input,
            mem: Memory::new(),
            file_pos: 0,
            fd_opened: false,
            frames: Vec::new(),
            insts: 0,
            limits: self.limits,
        };
        let outcome = exec.run(hook);
        self.insts_executed = exec.insts;
        if let RunOutcome::Crash(report) = &outcome {
            hook.on_crash(report);
        }
        outcome
    }

    /// Instructions executed by the most recent `run*` call (the virtual
    /// clock tick count).
    pub fn insts_executed(&self) -> u64 {
        self.insts_executed
    }
}

enum Step {
    Continue,
    Exited(u64),
}

struct Exec<'p> {
    program: &'p Program,
    input: &'p [u8],
    mem: Memory,
    file_pos: u64,
    fd_opened: bool,
    frames: Vec<Frame>,
    insts: u64,
    limits: Limits,
}

impl<'p> Exec<'p> {
    fn run<H: Hook>(&mut self, hook: &mut H) -> RunOutcome {
        let entry = self.program.entry();
        let f = self.program.func(entry);
        self.frames.push(Frame {
            func: entry,
            block: f.entry(),
            idx: 0,
            regs: vec![0; f.n_regs as usize],
            ret_dst: None,
        });
        hook.on_call(entry, &[], 1);
        loop {
            match self.step(hook) {
                Ok(Step::Continue) => {}
                Ok(Step::Exited(code)) => return RunOutcome::Exit(code),
                Err(kind) => return RunOutcome::Crash(self.report(kind)),
            }
        }
    }

    fn report(&self, kind: CrashKind) -> CrashReport {
        let frames = self
            .frames
            .iter()
            .map(|fr| (fr.func, self.program.func(fr.func).name.clone()))
            .collect();
        let top = self.frames.last().expect("crash with live frame");
        CrashReport {
            kind,
            func: top.func,
            block: top.block,
            inst_idx: top.idx.saturating_sub(1),
            backtrace: Backtrace::new(frames),
            insts_executed: self.insts,
        }
    }

    fn eval(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.frames.last().expect("live frame").regs[r.0 as usize],
            Operand::Imm(v) => v,
        }
    }

    fn set(&mut self, r: Reg, v: u64) {
        self.frames.last_mut().expect("live frame").regs[r.0 as usize] = v;
    }

    fn fault_to_crash(&self, fault: MemFault) -> CrashKind {
        match fault {
            MemFault::Null { addr } => CrashKind::NullDeref { addr },
            MemFault::OutOfBounds { addr, nearest } => CrashKind::OutOfBounds {
                addr,
                region: nearest,
            },
        }
    }

    fn check_fd(&self, fd: u64) -> Result<(), CrashKind> {
        if self.fd_opened && fd == INPUT_FD {
            Ok(())
        } else {
            Err(CrashKind::BadFileDescriptor { fd })
        }
    }

    fn step<H: Hook>(&mut self, hook: &mut H) -> Result<Step, CrashKind> {
        self.insts += 1;
        if self.insts > self.limits.max_insts {
            return Err(CrashKind::InfiniteLoop);
        }
        let (func_id, block_id, idx) = {
            let fr = self.frames.last().expect("live frame");
            (fr.func, fr.block, fr.idx)
        };
        // Borrow the code through the program reference (lifetime 'p), not
        // through `self`: this avoids cloning every instruction — notably
        // call-argument vectors — on every step, which dominates the
        // fuzzing hot loop otherwise.
        let program = self.program;
        let func = program.func(func_id);
        let block = func.block(block_id);

        if idx < block.insts.len() {
            let inst = &block.insts[idx];
            {
                let fr = self.frames.last().expect("live frame");
                let ctx = HookCtx {
                    func: func_id,
                    block: block_id,
                    inst_idx: idx,
                    regs: &fr.regs,
                    depth: self.frames.len(),
                    file_pos: self.file_pos,
                    file_size: self.input.len() as u64,
                };
                hook.on_inst(&ctx, inst);
            }
            self.frames.last_mut().expect("live frame").idx += 1;
            self.exec_inst(inst, hook)?;
            return Ok(Step::Continue);
        }

        // Terminator.
        {
            let fr = self.frames.last().expect("live frame");
            let ctx = HookCtx {
                func: func_id,
                block: block_id,
                inst_idx: idx,
                regs: &fr.regs,
                depth: self.frames.len(),
                file_pos: self.file_pos,
                file_size: self.input.len() as u64,
            };
            hook.on_term(&ctx, &block.term);
        }
        match &block.term {
            Terminator::Jmp(target) => self.goto(func_id, block_id, *target, hook),
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                let taken = if self.eval(*cond) != 0 {
                    *then_bb
                } else {
                    *else_bb
                };
                self.goto(func_id, block_id, taken, hook)
            }
            Terminator::Switch {
                scrut,
                cases,
                default,
            } => {
                let v = self.eval(*scrut);
                let taken = cases
                    .iter()
                    .find(|(c, _)| *c == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                self.goto(func_id, block_id, taken, hook)
            }
            Terminator::JmpIndirect { target } => {
                let value = self.eval(*target);
                match decode_block_addr(value) {
                    Some((f, b)) if f == func_id && (b.0 as usize) < func.blocks.len() => {
                        self.goto(func_id, block_id, b, hook)
                    }
                    _ => Err(CrashKind::BadIndirect { value }),
                }
            }
            Terminator::Ret(value) => {
                let v = value.as_ref().map(|op| self.eval(*op));
                let fr = self.frames.pop().expect("live frame");
                hook.on_ret(fr.func, v, self.frames.len() + 1);
                match self.frames.last_mut() {
                    None => Ok(Step::Exited(v.unwrap_or(0))),
                    Some(caller) => {
                        if let Some(dst) = fr.ret_dst {
                            caller.regs[dst.0 as usize] = v.unwrap_or(0);
                        }
                        Ok(Step::Continue)
                    }
                }
            }
            Terminator::Halt { code } => Ok(Step::Exited(self.eval(*code))),
        }
    }

    fn goto<H: Hook>(
        &mut self,
        func: FuncId,
        from: BlockId,
        to: BlockId,
        hook: &mut H,
    ) -> Result<Step, CrashKind> {
        hook.on_edge(func, from, to);
        let fr = self.frames.last_mut().expect("live frame");
        fr.block = to;
        fr.idx = 0;
        Ok(Step::Continue)
    }

    fn do_call<H: Hook>(
        &mut self,
        callee: FuncId,
        args: &[Operand],
        dst: Option<Reg>,
        hook: &mut H,
    ) -> Result<(), CrashKind> {
        if self.frames.len() >= self.limits.max_call_depth {
            return Err(CrashKind::StackOverflow);
        }
        let f = self.program.func(callee);
        let mut regs = vec![0u64; f.n_regs as usize];
        let mut arg_values = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let v = self.eval(*a);
            arg_values.push(v);
            // Missing args stay zero; extra args are ignored (C calling
            // convention style).
            if i < f.n_params as usize {
                regs[i] = v;
            }
        }
        self.frames.push(Frame {
            func: callee,
            block: f.entry(),
            idx: 0,
            regs,
            ret_dst: dst,
        });
        hook.on_call(callee, &arg_values, self.frames.len());
        Ok(())
    }

    fn exec_inst<H: Hook>(&mut self, inst: &Inst, hook: &mut H) -> Result<(), CrashKind> {
        match inst {
            Inst::Const { dst, value } => self.set(*dst, *value),
            Inst::Move { dst, src } => {
                let v = self.eval(*src);
                self.set(*dst, v);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let (a, b) = (self.eval(*lhs), self.eval(*rhs));
                let v = op.eval(a, b).ok_or(CrashKind::DivByZero)?;
                self.set(*dst, v);
            }
            Inst::Un { dst, op, src } => {
                let v = op.eval(self.eval(*src));
                self.set(*dst, v);
            }
            Inst::CheckedBin {
                dst,
                op,
                width,
                lhs,
                rhs,
            } => {
                let (a, b) = (self.eval(*lhs), self.eval(*rhs));
                let v = op
                    .eval(*width, a, b)
                    .ok_or(CrashKind::IntegerOverflow { width: *width })?;
                self.set(*dst, v);
            }
            Inst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                let a = self.eval(*addr).wrapping_add(*offset);
                let v = self
                    .mem
                    .read(a, *width)
                    .map_err(|f| self.fault_to_crash(f))?;
                hook.on_mem_read(a, *width, v);
                self.set(*dst, v);
            }
            Inst::Store {
                addr,
                offset,
                src,
                width,
            } => {
                let a = self.eval(*addr).wrapping_add(*offset);
                let v = self.eval(*src);
                self.mem
                    .write(a, v, *width)
                    .map_err(|f| self.fault_to_crash(f))?;
                hook.on_mem_write(a, *width, v);
            }
            Inst::Alloc { dst, size, region } => {
                let size = self.eval(*size);
                let base = self.mem.alloc(size, *region);
                self.set(*dst, base);
            }
            Inst::Call { dst, callee, args } => {
                self.do_call(*callee, args, *dst, hook)?;
            }
            Inst::CallIndirect { dst, target, args } => {
                let value = self.eval(*target);
                let callee = decode_func_addr(value)
                    .filter(|f| (f.0 as usize) < self.program.function_count())
                    .ok_or(CrashKind::BadIndirect { value })?;
                self.do_call(callee, args, *dst, hook)?;
            }
            Inst::FuncAddr { dst, func } => self.set(*dst, encode_func_addr(*func)),
            Inst::BlockAddr { dst, block } => {
                let func = self.frames.last().expect("live frame").func;
                self.set(*dst, encode_block_addr(func, *block));
            }
            Inst::FileOpen { dst } => {
                self.fd_opened = true;
                self.set(*dst, INPUT_FD);
            }
            Inst::FileRead { dst, fd, buf, len } => {
                self.check_fd(self.eval(*fd))?;
                let buf_addr = self.eval(*buf);
                let want = self.eval(*len);
                let pos = self.file_pos.min(self.input.len() as u64);
                let avail = self.input.len() as u64 - pos;
                let count = want.min(avail);
                if count > 0 {
                    let bytes = &self.input[pos as usize..(pos + count) as usize];
                    self.mem
                        .write_bytes(buf_addr, bytes)
                        .map_err(|f| self.fault_to_crash(f))?;
                    hook.on_file_read(buf_addr, pos, count);
                }
                self.file_pos = pos + count;
                self.set(*dst, count);
            }
            Inst::FileGetc { dst, fd } => {
                self.check_fd(self.eval(*fd))?;
                let pos = self.file_pos;
                if (pos as usize) < self.input.len() {
                    let b = self.input[pos as usize];
                    self.file_pos += 1;
                    hook.on_file_getc(pos, b);
                    self.set(*dst, u64::from(b));
                } else {
                    self.set(*dst, u64::MAX);
                }
            }
            Inst::FileSeek { fd, pos } => {
                self.check_fd(self.eval(*fd))?;
                self.file_pos = self.eval(*pos);
            }
            Inst::FileTell { dst, fd } => {
                self.check_fd(self.eval(*fd))?;
                let pos = self.file_pos;
                self.set(*dst, pos);
            }
            Inst::FileSize { dst, fd } => {
                self.check_fd(self.eval(*fd))?;
                self.set(*dst, self.input.len() as u64);
            }
            Inst::MemMap { dst, fd } => {
                self.check_fd(self.eval(*fd))?;
                let base = self.mem.alloc_with(self.input, RegionKind::Heap);
                hook.on_mmap(base, self.input.len() as u64);
                self.set(*dst, base);
            }
            Inst::Trap { code } => return Err(CrashKind::Trap { code: *code }),
            Inst::Nop => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_ir::Width;

    fn run(src: &str, input: &[u8]) -> RunOutcome {
        let p = parse_program(src).expect("parse");
        octo_ir::validate::validate(&p).expect("validate");
        Vm::new(&p, input).run()
    }

    #[test]
    fn arithmetic_and_exit_code() {
        let out = run(
            "func main() {\nentry:\n x = 6\n y = mul x, 7\n halt y\n}\n",
            b"",
        );
        assert_eq!(out, RunOutcome::Exit(42));
    }

    #[test]
    fn file_read_into_buffer() {
        let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 8
    n = read fd, buf, 8
    v = load.4 buf
    halt v
}
"#;
        let out = run(src, b"\x78\x56\x34\x12rest");
        assert_eq!(out, RunOutcome::Exit(0x1234_5678));
    }

    #[test]
    fn getc_advances_and_eofs() {
        let src = r#"
func main() {
entry:
    fd = open
    a = getc fd
    b = getc fd
    c = getc fd
    iseof = eq c, -1
    br iseof, good, bad
good:
    x = add a, b
    halt x
bad:
    halt 99
}
"#;
        let out = run(src, b"\x01\x02");
        assert_eq!(out, RunOutcome::Exit(3));
    }

    #[test]
    fn seek_and_tell() {
        let src = r#"
func main() {
entry:
    fd = open
    seek fd, 3
    p = tell fd
    b = getc fd
    x = add p, b
    halt x
}
"#;
        let out = run(src, b"abcde");
        assert_eq!(out, RunOutcome::Exit(3 + u64::from(b'd')));
    }

    #[test]
    fn mmap_exposes_whole_input() {
        let src = r#"
func main() {
entry:
    fd = open
    base = mmap fd
    sz = fsize fd
    last = add base, sz
    last = sub last, 1
    v = load.1 last
    halt v
}
"#;
        let out = run(src, b"xyz!");
        assert_eq!(out, RunOutcome::Exit(u64::from(b'!')));
    }

    #[test]
    fn oob_store_crashes_cwe119() {
        let src = r#"
func main() {
entry:
    buf = alloc 4
    store.1 buf + 4, 65
    halt 0
}
"#;
        let out = run(src, b"");
        let report = out.crash().expect("crash");
        assert_eq!(report.kind.class(), "CWE-119");
    }

    #[test]
    fn null_deref_detected() {
        let out = run("func main() {\nentry:\n v = load.1 0\n halt v\n}\n", b"");
        assert!(matches!(
            out.crash().expect("crash").kind,
            CrashKind::NullDeref { addr: 0 }
        ));
    }

    #[test]
    fn div_by_zero_detected() {
        let out = run(
            "func main() {\nentry:\n z = 0\n v = udiv 5, z\n halt v\n}\n",
            b"",
        );
        assert_eq!(out.crash().expect("crash").kind, CrashKind::DivByZero);
    }

    #[test]
    fn checked_overflow_is_cwe190() {
        let src = "func main() {\nentry:\n a = 0xFFFF\n b = cmul.2 a, 2\n halt b\n}\n";
        let out = run(src, b"");
        assert_eq!(
            out.crash().expect("crash").kind,
            CrashKind::IntegerOverflow { width: Width::W2 }
        );
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let src = "func main() {\nentry:\n jmp entry\n}\n";
        let p = parse_program(src).unwrap();
        let out = Vm::new(&p, b"")
            .with_limits(Limits {
                max_insts: 1000,
                max_call_depth: 16,
            })
            .run();
        assert_eq!(out.crash().expect("crash").kind, CrashKind::InfiniteLoop);
    }

    #[test]
    fn recursion_hits_stack_limit() {
        let src = "func main() {\nentry:\n call f()\n halt 0\n}\nfunc f() {\nentry:\n call f()\n ret\n}\n";
        let p = parse_program(src).unwrap();
        let out = Vm::new(&p, b"")
            .with_limits(Limits {
                max_insts: 1_000_000,
                max_call_depth: 20,
            })
            .run();
        assert_eq!(out.crash().expect("crash").kind, CrashKind::StackOverflow);
    }

    #[test]
    fn call_and_return_values_flow() {
        let src = r#"
func main() {
entry:
    r = call addmul(3, 4)
    halt r
}
func addmul(a, b) {
entry:
    s = add a, b
    m = mul s, 2
    ret m
}
"#;
        assert_eq!(run(src, b""), RunOutcome::Exit(14));
    }

    #[test]
    fn indirect_call_through_faddr() {
        let src = r#"
func main() {
entry:
    f = faddr target
    r = icall f(5)
    halt r
}
func target(x) {
entry:
    y = add x, 1
    ret y
}
"#;
        assert_eq!(run(src, b""), RunOutcome::Exit(6));
    }

    #[test]
    fn indirect_call_through_garbage_crashes() {
        let src = "func main() {\nentry:\n g = 1234\n r = icall g()\n halt r\n}\n";
        let out = run(src, b"");
        assert_eq!(
            out.crash().expect("crash").kind,
            CrashKind::BadIndirect { value: 1234 }
        );
    }

    #[test]
    fn indirect_jump_through_baddr() {
        let src = r#"
func main() {
entry:
    t = baddr finish
    ijmp t
finish:
    halt 7
}
"#;
        assert_eq!(run(src, b""), RunOutcome::Exit(7));
    }

    #[test]
    fn switch_dispatch() {
        let src = r#"
func main() {
entry:
    fd = open
    v = getc fd
    switch v { 65 -> a, 66 -> b, _ -> other }
a:
    halt 1
b:
    halt 2
other:
    halt 3
}
"#;
        assert_eq!(run(src, b"A"), RunOutcome::Exit(1));
        assert_eq!(run(src, b"B"), RunOutcome::Exit(2));
        assert_eq!(run(src, b"Z"), RunOutcome::Exit(3));
    }

    #[test]
    fn file_op_without_open_crashes() {
        let src = "func main() {\nentry:\n v = getc 3\n halt v\n}\n";
        let out = run(src, b"x");
        assert_eq!(
            out.crash().expect("crash").kind,
            CrashKind::BadFileDescriptor { fd: 3 }
        );
    }

    #[test]
    fn trap_reports_code_and_backtrace() {
        let src =
            "func main() {\nentry:\n call f()\n halt 0\n}\nfunc f() {\nentry:\n trap 9\n ret\n}\n";
        let out = run(src, b"");
        let report = out.crash().expect("crash");
        assert_eq!(report.kind, CrashKind::Trap { code: 9 });
        let names: Vec<&str> = report
            .backtrace
            .frames()
            .iter()
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(names, vec!["main", "f"]);
    }

    #[test]
    fn read_past_eof_returns_short_count() {
        let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 16
    n = read fd, buf, 16
    halt n
}
"#;
        assert_eq!(run(src, b"abc"), RunOutcome::Exit(3));
    }

    #[test]
    fn hook_sees_file_read_offsets() {
        #[derive(Default)]
        struct Rec {
            reads: Vec<(u64, u64, u64)>,
            getcs: Vec<(u64, u8)>,
        }
        impl Hook for Rec {
            fn on_file_read(&mut self, buf: u64, off: u64, len: u64) {
                self.reads.push((buf, off, len));
            }
            fn on_file_getc(&mut self, off: u64, v: u8) {
                self.getcs.push((off, v));
            }
        }
        let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 4
    n = read fd, buf, 4
    c = getc fd
    halt c
}
"#;
        let p = parse_program(src).unwrap();
        let mut hook = Rec::default();
        let out = Vm::new(&p, b"ABCDE").run_hooked(&mut hook);
        assert_eq!(out, RunOutcome::Exit(u64::from(b'E')));
        assert_eq!(hook.reads.len(), 1);
        assert_eq!(hook.reads[0].1, 0);
        assert_eq!(hook.reads[0].2, 4);
        assert_eq!(hook.getcs, vec![(4, b'E')]);
    }

    #[test]
    fn insts_executed_counts_work() {
        let p = parse_program("func main() {\nentry:\n x = 1\n y = 2\n halt y\n}\n").unwrap();
        let mut vm = Vm::new(&p, b"");
        vm.run();
        assert_eq!(vm.insts_executed(), 3); // two insts + terminator
    }
}
