//! Instrumentation hooks — the PIN-style callback surface.
//!
//! A [`Hook`] is attached to a [`crate::Vm`] run and receives events as the
//! program executes. All methods have empty default bodies, so a hook only
//! implements what it needs:
//!
//! * the taint engine ([`octo-taint`](https://docs.rs)) implements
//!   `on_inst`, the file events, and the call events;
//! * the fuzzers implement `on_edge` for coverage;
//! * tests implement whatever they assert on.

use octo_ir::{BlockId, FuncId, Inst, Terminator, Width};

use crate::crash::CrashReport;

/// Read-only view of the execution context passed to instruction hooks.
#[derive(Debug)]
pub struct HookCtx<'a> {
    /// Currently executing function.
    pub func: FuncId,
    /// Currently executing block.
    pub block: BlockId,
    /// Index of the instruction within the block.
    pub inst_idx: usize,
    /// Registers of the current frame (pre-state: the instruction has not
    /// executed yet).
    pub regs: &'a [u64],
    /// Current call depth (1 = inside the entry function).
    pub depth: usize,
    /// Current file position indicator (pre-state).
    pub file_pos: u64,
    /// Total input file size.
    pub file_size: u64,
}

/// Execution event callbacks. All default to no-ops.
#[allow(unused_variables)]
pub trait Hook {
    /// Fired before each instruction executes. `ctx.regs` holds pre-state
    /// register values, so operand addresses can be computed by the hook.
    fn on_inst(&mut self, ctx: &HookCtx<'_>, inst: &Inst) {}

    /// Fired before each block terminator executes (same pre-state contract
    /// as [`Hook::on_inst`]).
    fn on_term(&mut self, ctx: &HookCtx<'_>, term: &Terminator) {}

    /// Fired after a memory load completes.
    fn on_mem_read(&mut self, addr: u64, width: Width, value: u64) {}

    /// Fired after a memory store completes.
    fn on_mem_write(&mut self, addr: u64, width: Width, value: u64) {}

    /// Fired after `read` uploads input bytes to memory: `len` bytes from
    /// file offset `file_off` were copied to `buf_addr`. This is the
    /// file-read hook of the paper's Fig. 4.
    fn on_file_read(&mut self, buf_addr: u64, file_off: u64, len: u64) {}

    /// Fired after `getc` reads the byte at `file_off` into a register
    /// (not fired at EOF).
    fn on_file_getc(&mut self, file_off: u64, value: u8) {}

    /// Fired after `mmap` maps the whole input at `base`.
    fn on_mmap(&mut self, base: u64, len: u64) {}

    /// Fired when a call transfers control into `callee` (after arguments
    /// are bound). `depth` is the depth *inside* the callee.
    fn on_call(&mut self, callee: FuncId, args: &[u64], depth: usize) {}

    /// Fired when `func` returns. `depth` is the depth that was left.
    fn on_ret(&mut self, func: FuncId, value: Option<u64>, depth: usize) {}

    /// Fired on every control-flow edge taken between blocks of the same
    /// function (fuzzer coverage granularity).
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {}

    /// Fired once if the run ends in a crash.
    fn on_crash(&mut self, report: &CrashReport) {}
}

/// The do-nothing hook, for plain uninstrumented runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl Hook for NoHook {}

/// Combines two hooks, delivering every event to both (first `A`, then `B`).
#[derive(Debug, Default)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Hook, B: Hook> Hook for Pair<A, B> {
    fn on_inst(&mut self, ctx: &HookCtx<'_>, inst: &Inst) {
        self.0.on_inst(ctx, inst);
        self.1.on_inst(ctx, inst);
    }
    fn on_term(&mut self, ctx: &HookCtx<'_>, term: &Terminator) {
        self.0.on_term(ctx, term);
        self.1.on_term(ctx, term);
    }
    fn on_mem_read(&mut self, addr: u64, width: Width, value: u64) {
        self.0.on_mem_read(addr, width, value);
        self.1.on_mem_read(addr, width, value);
    }
    fn on_mem_write(&mut self, addr: u64, width: Width, value: u64) {
        self.0.on_mem_write(addr, width, value);
        self.1.on_mem_write(addr, width, value);
    }
    fn on_file_read(&mut self, buf_addr: u64, file_off: u64, len: u64) {
        self.0.on_file_read(buf_addr, file_off, len);
        self.1.on_file_read(buf_addr, file_off, len);
    }
    fn on_file_getc(&mut self, file_off: u64, value: u8) {
        self.0.on_file_getc(file_off, value);
        self.1.on_file_getc(file_off, value);
    }
    fn on_mmap(&mut self, base: u64, len: u64) {
        self.0.on_mmap(base, len);
        self.1.on_mmap(base, len);
    }
    fn on_call(&mut self, callee: FuncId, args: &[u64], depth: usize) {
        self.0.on_call(callee, args, depth);
        self.1.on_call(callee, args, depth);
    }
    fn on_ret(&mut self, func: FuncId, value: Option<u64>, depth: usize) {
        self.0.on_ret(func, value, depth);
        self.1.on_ret(func, value, depth);
    }
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        self.0.on_edge(func, from, to);
        self.1.on_edge(func, from, to);
    }
    fn on_crash(&mut self, report: &CrashReport) {
        self.0.on_crash(report);
        self.1.on_crash(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        calls: usize,
    }

    impl Hook for Counter {
        fn on_call(&mut self, _callee: FuncId, _args: &[u64], _depth: usize) {
            self.calls += 1;
        }
    }

    #[test]
    fn pair_delivers_to_both() {
        let mut pair = Pair(Counter::default(), Counter::default());
        pair.on_call(FuncId(0), &[], 1);
        pair.on_call(FuncId(1), &[], 2);
        assert_eq!(pair.0.calls, 2);
        assert_eq!(pair.1.calls, 2);
    }
}
