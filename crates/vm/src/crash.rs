//! Crash classification and backtraces.

use std::fmt;

use octo_ir::{BlockId, FuncId, RegionKind, Width};

/// Why the program crashed.
///
/// The variants map onto the CWE classes of the paper's Table II so the
/// pipeline can check not only *that* the propagated software crashes but
/// that it crashes with the propagated vulnerability's class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Access outside every mapped region (CWE-119, buffer overflow). The
    /// region kind of the nearest lower allocation distinguishes heap from
    /// stack overflows when available.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Kind of the overflowed region, when identifiable.
        region: Option<RegionKind>,
    },
    /// Dereference in the null page.
    NullDeref {
        /// Faulting address.
        addr: u64,
    },
    /// Unsigned division or remainder by zero.
    DivByZero,
    /// Overflow-checked arithmetic exceeded its width (CWE-190).
    IntegerOverflow {
        /// Width of the checked operation.
        width: Width,
    },
    /// Explicit `trap` instruction (assertion failure).
    Trap {
        /// Trap code from the instruction.
        code: u64,
    },
    /// Watchdog expiry: the instruction budget was exhausted, which is how
    /// an infinite-loop denial of service (CWE-835) manifests.
    InfiniteLoop,
    /// Call-stack depth limit exceeded.
    StackOverflow,
    /// Indirect jump or call through a value that is not a valid code
    /// address.
    BadIndirect {
        /// The invalid target value.
        value: u64,
    },
    /// File operation on an invalid descriptor.
    BadFileDescriptor {
        /// The invalid descriptor value.
        fd: u64,
    },
}

impl CrashKind {
    /// Short CWE-style label for reports.
    pub fn class(&self) -> &'static str {
        match self {
            CrashKind::OutOfBounds { .. } => "CWE-119",
            CrashKind::IntegerOverflow { .. } => "CWE-190",
            CrashKind::InfiniteLoop => "CWE-835",
            CrashKind::NullDeref { .. } => "NULL-DEREF",
            CrashKind::DivByZero => "DIV-ZERO",
            CrashKind::Trap { .. } => "TRAP",
            CrashKind::StackOverflow => "STACK-OVERFLOW",
            CrashKind::BadIndirect { .. } => "BAD-INDIRECT",
            CrashKind::BadFileDescriptor { .. } => "BAD-FD",
        }
    }
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashKind::OutOfBounds { addr, region } => match region {
                Some(k) => write!(f, "out-of-bounds {k} access at {addr:#x}"),
                None => write!(f, "out-of-bounds access at {addr:#x}"),
            },
            CrashKind::NullDeref { addr } => write!(f, "null dereference at {addr:#x}"),
            CrashKind::DivByZero => f.write_str("division by zero"),
            CrashKind::IntegerOverflow { width } => {
                write!(f, "integer overflow in {}-byte checked arithmetic", width)
            }
            CrashKind::Trap { code } => write!(f, "trap (code {code})"),
            CrashKind::InfiniteLoop => f.write_str("watchdog: infinite loop suspected"),
            CrashKind::StackOverflow => f.write_str("call stack overflow"),
            CrashKind::BadIndirect { value } => {
                write!(f, "indirect transfer through non-code value {value:#x}")
            }
            CrashKind::BadFileDescriptor { fd } => write!(f, "bad file descriptor {fd}"),
        }
    }
}

/// The call stack at the moment of a crash, outermost frame first.
///
/// This is the substitute for glibc `backtrace()` (paper §III,
/// "Preprocessing"): OctoPoCs identifies `ep` as the first function on the
/// crash stack that belongs to the shared set `ℓ`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Backtrace {
    frames: Vec<(FuncId, String)>,
}

impl Backtrace {
    /// Builds a backtrace from `(id, name)` frames, outermost first.
    pub fn new(frames: Vec<(FuncId, String)>) -> Backtrace {
        Backtrace { frames }
    }

    /// Frames outermost-first.
    pub fn frames(&self) -> &[(FuncId, String)] {
        &self.frames
    }

    /// The innermost (crashing) function, if the stack is non-empty.
    pub fn innermost(&self) -> Option<FuncId> {
        self.frames.last().map(|(id, _)| *id)
    }

    /// The first (bottom-most / outermost) frame whose function is in
    /// `set` — exactly the paper's definition of `ep`.
    pub fn first_in(&self, set: &[FuncId]) -> Option<FuncId> {
        self.frames
            .iter()
            .map(|(id, _)| *id)
            .find(|id| set.contains(id))
    }

    /// Whether any frame belongs to `set`.
    pub fn any_in(&self, set: &[FuncId]) -> bool {
        self.first_in(set).is_some()
    }
}

impl fmt::Display for Backtrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (_, name)) in self.frames.iter().enumerate() {
            writeln!(f, "#{i} {name}")?;
        }
        Ok(())
    }
}

/// A complete crash report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashReport {
    /// Classification of the fault.
    pub kind: CrashKind,
    /// Function executing at the fault.
    pub func: FuncId,
    /// Block executing at the fault.
    pub block: BlockId,
    /// Index of the faulting instruction within the block (instructions
    /// only; `usize::MAX` marks the terminator).
    pub inst_idx: usize,
    /// Call stack, outermost first (includes `func` as the last frame).
    pub backtrace: Backtrace,
    /// Instructions executed up to (and including) the fault.
    pub insts_executed: u64,
}

impl fmt::Display for CrashReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "crash: {} [{}]", self.kind, self.kind.class())?;
        write!(f, "{}", self.backtrace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtrace_first_in_picks_outermost_shared_frame() {
        let bt = Backtrace::new(vec![
            (FuncId(0), "main".into()),
            (FuncId(3), "wrapper".into()),
            (FuncId(5), "shared_outer".into()),
            (FuncId(6), "shared_inner".into()),
        ]);
        let shared = vec![FuncId(6), FuncId(5)];
        assert_eq!(bt.first_in(&shared), Some(FuncId(5)));
        assert_eq!(bt.innermost(), Some(FuncId(6)));
        assert!(bt.any_in(&shared));
        assert!(!bt.any_in(&[FuncId(9)]));
    }

    #[test]
    fn crash_kind_classes() {
        assert_eq!(
            CrashKind::OutOfBounds {
                addr: 1,
                region: None
            }
            .class(),
            "CWE-119"
        );
        assert_eq!(
            CrashKind::IntegerOverflow { width: Width::W4 }.class(),
            "CWE-190"
        );
        assert_eq!(CrashKind::InfiniteLoop.class(), "CWE-835");
    }

    #[test]
    fn display_is_nonempty() {
        let kinds = [
            CrashKind::NullDeref { addr: 0 },
            CrashKind::DivByZero,
            CrashKind::Trap { code: 9 },
            CrashKind::StackOverflow,
            CrashKind::BadIndirect { value: 3 },
            CrashKind::BadFileDescriptor { fd: 7 },
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
