//! Property tests: VM execution is total (never panics), deterministic,
//! and bounded by its limits.

use octo_ir::parse::parse_program;
use octo_vm::{Limits, RunOutcome, Vm};
use proptest::prelude::*;

/// Random but syntactically valid programs from source-text templates:
/// a chain of byte reads with data-dependent branches and arithmetic.
fn arb_source() -> impl Strategy<Value = String> {
    (
        prop::collection::vec((any::<u8>(), any::<u8>(), 0u8..4), 1..8),
        any::<bool>(),
    )
        .prop_map(|(steps, loopy)| {
            let mut src = String::from("func main() {\nentry:\n    fd = open\n    acc = 0\n");
            src.push_str("    jmp s0\n");
            for (i, (k, v, op)) in steps.iter().enumerate() {
                let opname = ["add", "xor", "mul", "sub"][*op as usize];
                src.push_str(&format!(
                    "s{i}:\n    b{i} = getc fd\n    acc = {opname} acc, b{i}\n    c{i} = eq b{i}, {k}\n    br c{i}, h{i}, n{i}\nh{i}:\n    acc = add acc, {v}\n    jmp n{i}\nn{i}:\n"
                ));
                let next = if i + 1 == steps.len() {
                    "fin".to_string()
                } else {
                    format!("s{}", i + 1)
                };
                src.push_str(&format!("    jmp {next}\n"));
            }
            if loopy {
                src.push_str("fin:\n    done = eq acc, acc\n    br done, fin, out\nout:\n    halt acc\n}\n");
            } else {
                src.push_str("fin:\n    halt acc\n}\n");
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Execution is deterministic: two runs of the same program on the
    /// same input produce identical outcomes and instruction counts.
    #[test]
    fn execution_is_deterministic(
        src in arb_source(),
        input in prop::collection::vec(any::<u8>(), 0..16)
    ) {
        let p = parse_program(&src).expect("template parses");
        octo_ir::validate::validate(&p).expect("valid");
        let limits = Limits { max_insts: 50_000, max_call_depth: 8 };
        let mut vm1 = Vm::new(&p, &input).with_limits(limits);
        let out1 = vm1.run();
        let mut vm2 = Vm::new(&p, &input).with_limits(limits);
        let out2 = vm2.run();
        prop_assert_eq!(out1, out2);
        prop_assert_eq!(vm1.insts_executed(), vm2.insts_executed());
    }

    /// The watchdog bounds every execution: no run exceeds the limit by
    /// more than one instruction.
    #[test]
    fn watchdog_bounds_execution(
        src in arb_source(),
        input in prop::collection::vec(any::<u8>(), 0..16),
        budget in 10u64..500,
    ) {
        let p = parse_program(&src).expect("template parses");
        let mut vm = Vm::new(&p, &input).with_limits(Limits {
            max_insts: budget,
            max_call_depth: 8,
        });
        let _ = vm.run();
        prop_assert!(vm.insts_executed() <= budget + 1);
    }

    /// Clean exits return the accumulator; crashes only come from the
    /// watchdog in this template family (no memory ops, no traps).
    #[test]
    fn template_family_crashes_only_via_watchdog(
        src in arb_source(),
        input in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let p = parse_program(&src).expect("template parses");
        let out = Vm::new(&p, &input)
            .with_limits(Limits { max_insts: 50_000, max_call_depth: 8 })
            .run();
        if let RunOutcome::Crash(report) = out {
            prop_assert_eq!(report.kind, octo_vm::CrashKind::InfiniteLoop);
        }
    }
}
