//! Edge-case behaviour of the interpreter's I/O and call model.

use octo_ir::parse::parse_program;
use octo_vm::{Limits, RunOutcome, Vm};

fn run(src: &str, input: &[u8]) -> RunOutcome {
    let p = parse_program(src).expect("parses");
    Vm::new(&p, input).run()
}

#[test]
fn mmap_of_empty_input_yields_empty_region() {
    let src = r#"
func main() {
entry:
    fd = open
    base = mmap fd
    sz = fsize fd
    halt sz
}
"#;
    assert_eq!(run(src, b""), RunOutcome::Exit(0));
    // Loading from the empty mapping crashes (zero-size region).
    let src2 = r#"
func main() {
entry:
    fd = open
    base = mmap fd
    v = load.1 base
    halt v
}
"#;
    assert!(run(src2, b"").is_crash());
}

#[test]
fn zero_length_read_returns_zero() {
    let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 4
    n = read fd, buf, 0
    halt n
}
"#;
    assert_eq!(run(src, b"abcd"), RunOutcome::Exit(0));
}

#[test]
fn seek_past_eof_then_getc_is_eof() {
    let src = r#"
func main() {
entry:
    fd = open
    seek fd, 1000
    b = getc fd
    iseof = eq b, -1
    br iseof, yes, no
yes:
    halt 0
no:
    halt 1
}
"#;
    assert_eq!(run(src, b"short"), RunOutcome::Exit(0));
}

#[test]
fn seek_past_eof_then_read_returns_zero() {
    let src = r#"
func main() {
entry:
    fd = open
    seek fd, 1000
    buf = alloc 8
    n = read fd, buf, 8
    halt n
}
"#;
    assert_eq!(run(src, b"short"), RunOutcome::Exit(0));
}

#[test]
fn call_arity_mismatch_follows_c_convention() {
    // Extra args dropped; missing args zero.
    let src = r#"
func main() {
entry:
    a = call two(7, 8)
    b = call two(9)
    x = mul a, 100
    x = add x, b
    halt x
}
func two(p, q) {
entry:
    s = add p, q
    ret s
}
"#;
    let p = parse_program(src).unwrap();
    // call validation rejects arity mismatches statically…
    assert!(octo_ir::validate::validate(&p).is_err());
    // …but the runtime is still total about them (C convention): (7+8)=15
    // and (9+0)=9.
    assert_eq!(Vm::new(&p, b"").run(), RunOutcome::Exit(1509));
}

#[test]
fn call_depth_boundary_is_exact() {
    // depth limit N: a chain of N-1 nested calls (depth N including main)
    // succeeds; one more crashes.
    let src = r#"
func main() {
entry:
    r = call f(3)
    halt r
}
func f(n) {
entry:
    z = eq n, 0
    br z, done, rec
rec:
    m = sub n, 1
    r = call f(m)
    ret r
done:
    ret 42
}
"#;
    let p = parse_program(src).unwrap();
    // main(1) + f(3..0): 4 f-frames → depth 5.
    let ok = Vm::new(&p, b"")
        .with_limits(Limits {
            max_insts: 10_000,
            max_call_depth: 5,
        })
        .run();
    assert_eq!(ok, RunOutcome::Exit(42));
    let too_deep = Vm::new(&p, b"")
        .with_limits(Limits {
            max_insts: 10_000,
            max_call_depth: 4,
        })
        .run();
    assert_eq!(
        too_deep.crash().expect("crash").kind,
        octo_vm::CrashKind::StackOverflow
    );
}

#[test]
fn halt_takes_register_values() {
    let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    halt b
}
"#;
    assert_eq!(run(src, b"\x2A"), RunOutcome::Exit(42));
}

#[test]
fn alloc_size_zero_then_access_crashes() {
    let src = r#"
func main() {
entry:
    buf = alloc 0
    v = load.1 buf
    halt v
}
"#;
    assert!(run(src, b"").is_crash());
}

#[test]
fn partial_store_before_fault_is_visible_model() {
    // A 4-byte store that straddles a region end writes the in-bounds
    // bytes before faulting — documented partial-store semantics.
    let src = r#"
func main() {
entry:
    buf = alloc 2
    store.4 buf, 0x04030201
    halt 0
}
"#;
    assert!(run(src, b"").is_crash());
}
