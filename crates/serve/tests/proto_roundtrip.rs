//! Property tests for the wire protocol: `parse ∘ render` is the
//! identity for every request and response the protocol can express,
//! and malformed input — truncated lines, unknown verbs, binary noise,
//! oversized payloads — is always answered with a structured `error`
//! line, never a panic or a dropped connection.

use std::io::Cursor;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use octo_serve::daemon::StubExecutor;
use octo_serve::{
    handle_connection, Daemon, JobPhase, JobSpec, JobStatus, Priority, QueueStatus, Request,
    Response, ResultRow, VerdictSummary, WireEvent, WireEventKind,
};

/// The wire's integer domain: `JsonValue::Int` is `i64`-backed, so
/// protocol integers are non-negative `i64`s (ids, timestamps and
/// microsecond durations never approach the bound in practice).
fn wire_u64() -> impl Strategy<Value = u64> {
    0u64..=(i64::MAX as u64)
}

/// Characters chosen to stress `json_escape`: quotes, backslashes,
/// braces, control characters (including newline) and non-ASCII.
const TEXT_ALPHABET: &[char] = &[
    'a',
    'Z',
    '7',
    ' ',
    '"',
    '\\',
    '/',
    '{',
    '}',
    ':',
    ',',
    '\n',
    '\t',
    '\r',
    '\u{0}',
    '\u{1f}',
    '\u{e9}',
    '\u{4e16}',
    '\u{1f600}',
];

/// Arbitrary text over [`TEXT_ALPHABET`].
fn wire_text() -> impl Strategy<Value = String> {
    vec(0..TEXT_ALPHABET.len(), 0..24)
        .prop_map(|picks| picks.into_iter().map(|i| TEXT_ALPHABET[i]).collect())
}

/// `Option<V>`: the vendored proptest has no `option::of`.
fn maybe<S: Strategy + 'static>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), inner).prop_map(|(some, v)| if some { Some(v) } else { None })
}

fn arb_priority() -> impl Strategy<Value = Priority> {
    prop_oneof![Just(Priority::Interactive), Just(Priority::Bulk)]
}

fn arb_phase() -> impl Strategy<Value = JobPhase> {
    prop_oneof![
        Just(JobPhase::Queued),
        Just(JobPhase::Running),
        Just(JobPhase::Done),
        Just(JobPhase::Interrupted),
    ]
}

fn arb_jobspec() -> impl Strategy<Value = JobSpec> {
    (
        wire_text(),
        arb_priority(),
        wire_text(),
        wire_text(),
        vec(any::<u8>(), 0..32),
        vec(wire_text(), 0..4),
    )
        .prop_map(|(name, priority, s_text, t_text, poc, shared)| JobSpec {
            name,
            priority,
            s_text,
            t_text,
            poc_hex: octo_serve::proto::to_hex(&poc),
            shared,
        })
}

fn arb_verdict() -> impl Strategy<Value = VerdictSummary> {
    (
        wire_text(),
        any::<bool>(),
        any::<bool>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(
            |(verdict, poc_generated, verified, attempts, quarantined)| VerdictSummary {
                verdict,
                poc_generated,
                verified,
                attempts,
                quarantined,
            },
        )
}

fn arb_event() -> impl Strategy<Value = WireEvent> {
    let kind = prop_oneof![
        wire_text().prop_map(|name| WireEventKind::Started { name }),
        (wire_text(), wire_u64())
            .prop_map(|(phase, micros)| WireEventKind::Phase { phase, micros }),
        any::<u64>().prop_map(|key| WireEventKind::CacheHit { key }),
        (wire_text(), wire_u64())
            .prop_map(|(outcome, micros)| WireEventKind::Finished { outcome, micros }),
        (wire_u64(), wire_u64(), wire_u64()).prop_map(|(attempt, backoff_us, beats)| {
            WireEventKind::Retry {
                attempt,
                backoff_us,
                beats,
            }
        }),
    ];
    (wire_u64(), wire_u64(), wire_u64(), kind).prop_map(|(job, worker, ts_us, kind)| WireEvent {
        job,
        worker,
        ts_us,
        kind,
    })
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Ping),
        arb_jobspec().prop_map(|job| Request::Submit { job }),
        maybe(wire_u64()).prop_map(|id| Request::Status { id }),
        wire_u64().prop_map(|id| Request::Watch { id }),
        Just(Request::Results),
        Just(Request::Metrics),
        Just(Request::Drain),
        Just(Request::Shutdown),
    ]
    .boxed()
}

fn arb_queue_status() -> impl Strategy<Value = QueueStatus> {
    (
        wire_u64(),
        wire_u64(),
        wire_u64(),
        wire_u64(),
        wire_u64(),
        any::<bool>(),
    )
        .prop_map(
            |(queued_interactive, queued_bulk, running, done, capacity, draining)| QueueStatus {
                queued_interactive,
                queued_bulk,
                running,
                done,
                capacity,
                draining,
            },
        )
}

fn arb_job_status() -> impl Strategy<Value = JobStatus> {
    (
        wire_u64(),
        wire_text(),
        arb_priority(),
        arb_phase(),
        maybe(arb_verdict()),
        maybe(wire_text()),
    )
        .prop_map(
            |(id, name, priority, phase, verdict, post_mortem)| JobStatus {
                id,
                name,
                priority,
                phase,
                verdict,
                post_mortem,
            },
        )
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        Just(Response::Pong),
        wire_u64().prop_map(|id| Response::Accepted { id }),
        wire_text().prop_map(|reason| Response::Rejected { reason }),
        arb_queue_status().prop_map(Response::Status),
        arb_job_status().prop_map(Response::Job),
        arb_event().prop_map(Response::Event),
        (wire_u64(), arb_verdict()).prop_map(|(id, verdict)| Response::Done { id, verdict }),
        vec(
            (wire_u64(), wire_text(), arb_verdict()).prop_map(|(id, name, verdict)| ResultRow {
                id,
                name,
                verdict
            }),
            0..4
        )
        .prop_map(|jobs| Response::Results { jobs }),
        wire_text().prop_map(|body| Response::Metrics { body }),
        wire_u64().prop_map(|pending| Response::Draining { pending }),
        Just(Response::ShuttingDown),
        wire_text().prop_map(|message| Response::Error { message }),
    ]
    .boxed()
}

/// Printable-ASCII noise (may or may not be JSON).
fn ascii_noise(max: usize) -> impl Strategy<Value = String> {
    vec(0x20u8..0x7f, 0..max).prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

proptest! {
    /// Every request survives the wire unchanged.
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let line = req.render();
        prop_assert!(!line.contains('\n'), "wire lines must be single lines: {:?}", line);
        let back = Request::parse(&line);
        prop_assert!(back.is_ok(), "rendered request failed to parse: {:?}", back);
        prop_assert_eq!(back.unwrap(), req);
    }

    /// Every response survives the wire unchanged.
    #[test]
    fn responses_round_trip(resp in arb_response()) {
        let line = resp.render();
        prop_assert!(!line.contains('\n'), "wire lines must be single lines: {:?}", line);
        let back = Response::parse(&line);
        prop_assert!(back.is_ok(), "rendered response failed to parse: {:?}", back);
        prop_assert_eq!(back.unwrap(), resp);
    }

    /// A strict prefix of a valid request never parses (truncation is
    /// detected, not misread) and never panics the parser.
    #[test]
    fn truncated_requests_error_cleanly(req in arb_request(), frac in 0u32..100) {
        let line = req.render();
        let cut = (line.len() as u64 * u64::from(frac) / 100) as usize;
        let mut truncated = String::with_capacity(cut);
        for c in line.chars() {
            if truncated.len() + c.len_utf8() > cut {
                break;
            }
            truncated.push(c);
        }
        if truncated.len() < line.len() {
            prop_assert!(Request::parse(&truncated).is_err());
        }
    }

    /// Arbitrary garbage — including raw JSON that is not a request —
    /// errors instead of panicking.
    #[test]
    fn garbage_never_panics(noise in ascii_noise(64)) {
        let _ = Request::parse(&noise);
        let _ = Response::parse(&noise);
    }

    /// An unknown verb is refused with a diagnostic naming it.
    #[test]
    fn unknown_verbs_are_refused(raw in vec(b'a'..=b'z', 1..13)) {
        let verb: String = raw.into_iter().map(char::from).collect();
        prop_assume!(!matches!(
            verb.as_str(),
            "ping" | "submit" | "status" | "watch" | "results" | "metrics" | "drain" | "shutdown"
        ));
        let parsed = Request::parse(&format!("{{\"req\":\"{verb}\"}}"));
        prop_assert!(parsed.is_err());
        let err = parsed.unwrap_err();
        prop_assert!(err.contains(&verb), "diagnostic should name the verb: {}", err);
    }

    /// A connection fed noise lines answers each non-blank line with a
    /// structured `error` response and keeps going — never a
    /// disconnect (blank lines are skipped silently).
    #[test]
    fn noisy_connections_get_structured_errors(lines in vec(ascii_noise(48), 1..8)) {
        prop_assume!(lines.iter().all(|l| Request::parse(l).is_err()));
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 4);
        let input = lines.join("\n") + "\n";
        let mut out = Vec::new();
        handle_connection(&daemon, Cursor::new(input.into_bytes()), &mut out);
        let rendered = String::from_utf8(out).expect("utf8 replies");
        let replies: Vec<Response> = rendered
            .lines()
            .map(|l| Response::parse(l).expect("daemon reply parses"))
            .collect();
        let expected = lines.iter().filter(|l| !l.trim().is_empty()).count();
        prop_assert_eq!(replies.len(), expected);
        for reply in replies {
            prop_assert!(matches!(reply, Response::Error { .. }));
        }
    }
}

/// An oversized payload (beyond `MAX_LINE_BYTES`) is answered with a
/// structured error and the connection keeps serving the next line.
#[test]
fn oversized_payload_is_refused_without_disconnect() {
    let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 4);
    let mut input = String::with_capacity(octo_serve::MAX_LINE_BYTES + 64);
    input.push_str("{\"req\":\"submit\",\"job\":{\"name\":\"");
    input.push_str(&"a".repeat(octo_serve::MAX_LINE_BYTES));
    input.push_str("\"}}\n{\"req\":\"ping\"}\n");
    let mut out = Vec::new();
    handle_connection(&daemon, Cursor::new(input.into_bytes()), &mut out);
    let replies: Vec<Response> = String::from_utf8(out)
        .expect("utf8 replies")
        .lines()
        .map(|l| Response::parse(l).expect("daemon reply parses"))
        .collect();
    assert_eq!(replies.len(), 2);
    assert!(matches!(&replies[0], Response::Error { message } if message.contains("exceeds")));
    assert_eq!(replies[1], Response::Pong);
}
