//! The daemon's durable journal: an append-only file of line-delimited
//! JSON records.
//!
//! Two record kinds, mirroring the wire protocol's types:
//!
//! ```text
//! {"journal":"job","id":3,"job":{…JobSpec fields…}}
//! {"journal":"verdict","id":3,"verdict":{…VerdictSummary fields…}}
//! ```
//!
//! A job is journaled *before* it is enqueued; its verdict is journaled
//! only when it completes for real (cancelled/drained outcomes are
//! deliberately not journaled). On restart the daemon replays the file:
//! jobs with verdicts are restored as done, jobs without are resubmitted
//! under their **original ids**, so a batch interrupted by a crash
//! converges to the same results as an uninterrupted run. A torn final
//! line (the process died mid-append) is ignored; corruption anywhere
//! else is an error.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::parse_json;
use crate::proto::{parse_jobspec, render_jobspec_fields, JobSpec, VerdictSummary};

/// What a journal file contained when it was opened.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every journaled job, in append (= id) order.
    pub jobs: Vec<(u64, JobSpec)>,
    /// Verdicts for the jobs that completed, by id.
    pub verdicts: BTreeMap<u64, VerdictSummary>,
}

impl Replay {
    /// Ids journaled as submitted but lacking a verdict — the jobs the
    /// daemon must resubmit.
    pub fn incomplete(&self) -> Vec<u64> {
        self.jobs
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| !self.verdicts.contains_key(id))
            .collect()
    }
}

/// An open journal. All appends flush before returning so a record is
/// on its way to disk before the daemon acts on it.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` and replays its
    /// existing records.
    pub fn open(path: &Path) -> Result<(Journal, Replay), String> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        let replay = Journal::replay(&text)?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Mutex::new(file),
            },
            replay,
        ))
    }

    fn replay(text: &str) -> Result<Replay, String> {
        let mut replay = Replay::default();
        let lines: Vec<&str> = text.lines().collect();
        let last = lines.len().saturating_sub(1);
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Journal::parse_record(line) {
                Ok(Record::Job { id, job }) => replay.jobs.push((id, job)),
                Ok(Record::Verdict { id, verdict }) => {
                    replay.verdicts.insert(id, verdict);
                }
                // The process died mid-append: a torn final line is
                // expected and dropped. Torn *interior* lines mean the
                // file was corrupted some other way — refuse to guess.
                Err(_) if i == last => {}
                Err(e) => return Err(format!("journal line {}: {e}", i + 1)),
            }
        }
        Ok(replay)
    }

    fn parse_record(line: &str) -> Result<Record, String> {
        let v = parse_json(line)?;
        let kind = v
            .get("journal")
            .and_then(crate::json::JsonValue::as_str)
            .ok_or("missing `journal` tag")?;
        let id = v
            .get("id")
            .and_then(crate::json::JsonValue::as_u64)
            .ok_or("missing `id`")?;
        match kind {
            "job" => {
                let job = v.get("job").ok_or("missing `job`")?;
                Ok(Record::Job {
                    id,
                    job: parse_jobspec(job)?,
                })
            }
            "verdict" => {
                let val = v.get("verdict").ok_or("missing `verdict`")?;
                Ok(Record::Verdict {
                    id,
                    verdict: VerdictSummary::parse(val)?,
                })
            }
            other => Err(format!("unknown journal record `{other}`")),
        }
    }

    /// Appends a job record.
    pub fn record_job(&self, id: u64, job: &JobSpec) -> Result<(), String> {
        self.append(&format!(
            "{{\"journal\":\"job\",\"id\":{id},\"job\":{{{}}}}}\n",
            render_jobspec_fields(job)
        ))
    }

    /// Appends a verdict record.
    pub fn record_verdict(&self, id: u64, verdict: &VerdictSummary) -> Result<(), String> {
        self.append(&format!(
            "{{\"journal\":\"verdict\",\"id\":{id},\"verdict\":{{{}}}}}\n",
            verdict.render_fields()
        ))
    }

    /// Rewrites the journal to hold only the given still-incomplete
    /// jobs, dropping every finished job/verdict pair. The replacement
    /// is written to a sibling temp file and atomically renamed over
    /// the journal, so a crash mid-compaction leaves either the old
    /// file or the new one — never a mix. The open handle switches to
    /// the new file, and the append lock is held throughout so no
    /// record can slip between the snapshot and the swap.
    pub fn compact(&self, incomplete: &[(u64, JobSpec)]) -> Result<(), String> {
        let mut text = String::new();
        for (id, job) in incomplete {
            text.push_str(&format!(
                "{{\"journal\":\"job\",\"id\":{id},\"job\":{{{}}}}}\n",
                render_jobspec_fields(job)
            ));
        }
        let mut file = self.file.lock().expect("journal lock poisoned");
        let mut tmp_name = self.path.as_os_str().to_os_string();
        tmp_name.push(".compact");
        let tmp = PathBuf::from(tmp_name);
        let write = || -> std::io::Result<File> {
            let mut out = File::create(&tmp)?;
            out.write_all(text.as_bytes())?;
            out.flush()?;
            out.sync_all()?;
            std::fs::rename(&tmp, &self.path)?;
            OpenOptions::new().append(true).open(&self.path)
        };
        match write() {
            Ok(reopened) => {
                *file = reopened;
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(format!(
                    "journal compaction failed ({}): {e}",
                    self.path.display()
                ))
            }
        }
    }

    fn append(&self, line: &str) -> Result<(), String> {
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("journal append failed: {e}"))
    }
}

enum Record {
    Job { id: u64, job: JobSpec },
    Verdict { id: u64, verdict: VerdictSummary },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Priority;

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            priority: Priority::Bulk,
            s_text: "func main() {\nentry:\n halt 0\n}\n".to_string(),
            t_text: "func main() {\nentry:\n halt 0\n}\n".to_string(),
            poc_hex: "41".to_string(),
            shared: vec!["f".to_string()],
        }
    }

    fn verdict() -> VerdictSummary {
        VerdictSummary {
            verdict: "Type-I".to_string(),
            poc_generated: true,
            verified: true,
            attempts: 1,
            quarantined: false,
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("octo-serve-journal-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_jobs_and_verdicts_across_reopen() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, replay) = Journal::open(&path).unwrap();
            assert!(replay.jobs.is_empty());
            journal.record_job(1, &spec("a")).unwrap();
            journal.record_job(2, &spec("b")).unwrap();
            journal.record_verdict(1, &verdict()).unwrap();
        }
        let (_journal, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.jobs.len(), 2);
        assert_eq!(replay.jobs[0].0, 1);
        assert_eq!(replay.jobs[0].1, spec("a"));
        assert_eq!(replay.verdicts.len(), 1);
        assert_eq!(replay.verdicts[&1], verdict());
        assert_eq!(replay.incomplete(), vec![2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_finished_jobs_and_keeps_incomplete() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path).unwrap();
        journal.record_job(1, &spec("a")).unwrap();
        journal.record_verdict(1, &verdict()).unwrap();
        journal.record_job(2, &spec("b")).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();
        journal.compact(&[(2, spec("b"))]).unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "journal shrank ({before} -> {after})");
        // Appends after compaction land in the renamed-in file.
        journal.record_verdict(2, &verdict()).unwrap();
        drop(journal);
        let (_j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].0, 2);
        assert_eq!(replay.verdicts.len(), 1);
        assert!(replay.incomplete().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_to_empty_journal_replays_nothing() {
        let path = temp_path("compact-empty");
        let _ = std::fs::remove_file(&path);
        let (journal, _) = Journal::open(&path).unwrap();
        journal.record_job(1, &spec("a")).unwrap();
        journal.record_verdict(1, &verdict()).unwrap();
        journal.compact(&[]).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        drop(journal);
        let (_j, replay) = Journal::open(&path).unwrap();
        assert!(replay.jobs.is_empty());
        assert!(replay.verdicts.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_but_interior_corruption_is_an_error() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.record_job(1, &spec("a")).unwrap();
        }
        // Simulate dying mid-append: a truncated record at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"journal\":\"verdict\",\"id\":1,\"verd");
        std::fs::write(&path, &text).unwrap();
        let (_j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert!(replay.verdicts.is_empty());
        assert_eq!(replay.incomplete(), vec![1]);

        // The same garbage *before* a valid line is corruption.
        let bad = "{\"journal\":\"verd\n{\"journal\":\"job\",\"id\":1,\"job\":{}}\n";
        std::fs::write(&path, bad).unwrap();
        assert!(Journal::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
