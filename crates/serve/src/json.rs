//! A minimal hand-rolled JSON reader for the wire protocol and journal.
//!
//! Same discipline as octo-faults' `FaultPlan` parser — recursive
//! descent over raw bytes, zero dependencies — but generic: protocol
//! messages arrive from untrusted clients, so the *shape* is not known
//! before parsing. [`parse_json`] produces a [`JsonValue`] tree which
//! the protocol layer then pattern-matches; malformed input is a
//! `String` diagnostic with a byte offset, never a panic.
//!
//! Deliberate limits (documented in `docs/service.md`):
//! * nesting depth is capped at [`MAX_DEPTH`] — a `[[[[…` bomb is an
//!   error, not a stack overflow;
//! * integers must fit `i64`; any number with a fraction or exponent
//!   parses as a float ([`JsonValue::Num`]);
//! * duplicate object keys are accepted, last one wins on lookup (the
//!   renderers never emit duplicates).

/// Maximum nesting depth [`parse_json`] accepts.
pub const MAX_DEPTH: usize = 32;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction, no exponent) that fits `i64`.
    Int(i64),
    /// Any other numeric literal.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks `key` up in an object (last occurrence wins); `None` for
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => {
                fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `u` itself already
    /// consumed), including a following low surrogate when the first
    /// unit is a high surrogate. Leaves `pos` after the escape.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate next.
            if self.peek() != Some(b'\\') {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("lone high surrogate"));
            }
            self.pos += 1;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

/// Escapes a string for embedding in a JSON string literal (shared by
/// every renderer in this crate).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse_json("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse_json("2.5").unwrap(), JsonValue::Num(2.5));
        assert_eq!(parse_json("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(
            parse_json("\"hi\"").unwrap(),
            JsonValue::Str("hi".to_string())
        );
    }

    #[test]
    fn containers_parse() {
        let v = parse_json("{\"a\":[1,2],\"b\":{\"c\":null}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(parse_json("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse_json("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn escapes_round_trip_through_render() {
        let original = "a\"b\\c\nd\te\u{1}é❤\u{10348}";
        let doc = format!("\"{}\"", json_escape(original));
        assert_eq!(parse_json(&doc).unwrap().as_str().unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse_json("\"\\ud83d\\ude00\"").unwrap().as_str().unwrap(),
            "😀"
        );
        assert!(parse_json("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse_json("\"\\ude00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "{} trailing",
            "nan",
            "+1",
            "99999999999999999999999999",
            "\"\u{1}\"",
        ] {
            assert!(parse_json(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn depth_bomb_is_rejected() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse_json(&deep).unwrap_err();
        assert!(err.contains("nesting too deep"), "{err}");
        // …but reasonable nesting is fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse_json("{\"k\":1,\"k\":2}").unwrap();
        assert_eq!(v.get("k"), Some(&JsonValue::Int(2)));
    }
}
