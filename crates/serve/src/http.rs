//! octo-scope: the daemon's read-only HTTP/1.1 observability plane.
//!
//! A deliberately tiny, hand-rolled server (no external deps, GET
//! only, one request per connection) that exposes what the JSON wire
//! protocol cannot offer a browser or a Prometheus scraper:
//!
//! * `GET /healthz` — liveness, `{"status":"ok"}`;
//! * `GET /metrics` — the full registry in the Prometheus text format;
//! * `GET /metrics/rates` — the [`RateRecorder`] ring as windowed
//!   counter deltas (404 until a recorder is attached);
//! * `GET /jobs` — queue + in-flight + completed summaries;
//! * `GET /jobs/<id>` — the per-job [`crate::timeline::JobTimeline`].
//!
//! Robustness mirrors the JSON protocol's discipline: malformed
//! request lines get a structured `400`, non-GET methods a `405`,
//! unknown paths a `404`, oversized request lines or header blocks a
//! `431` — always a JSON `{"error":…}` body, never a panic, and never
//! any interference with the JSON-protocol listeners (the HTTP plane
//! runs on its own listener and threads).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use octo_obs::RateRecorder;
use octo_sched::CancelToken;

use crate::daemon::Daemon;
use crate::json::json_escape;

/// Cap on the HTTP request line, bytes.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;

/// Cap on the header block (all header lines together), bytes.
pub const MAX_HEADER_BYTES: usize = 32 * 1024;

/// The observability plane's shared state: the daemon it reads from
/// and the optional rate ring.
pub struct Scope {
    daemon: Arc<Daemon>,
    rates: Option<Arc<RateRecorder>>,
}

/// One fully-formed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 400, 404, 405, 431).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    fn ok(content_type: &'static str, body: String) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type,
            body,
        }
    }

    fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: format!("{{\"error\":\"{}\"}}\n", json_escape(message)),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            431 => "Request Header Fields Too Large",
            _ => "Error",
        }
    }

    /// Serialises status line, headers, and body.
    pub fn render(&self) -> String {
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            self.body
        )
    }
}

impl Scope {
    /// A plane over `daemon`, optionally serving `rates` windows.
    pub fn new(daemon: Arc<Daemon>, rates: Option<Arc<RateRecorder>>) -> Scope {
        Scope { daemon, rates }
    }

    /// Routes one already-parsed request. Split from the transport so
    /// unit tests can drive routing directly.
    pub fn respond(&self, method: &str, target: &str) -> HttpResponse {
        if method != "GET" {
            return HttpResponse::error(405, &format!("method {method} not allowed (GET only)"));
        }
        // The observability plane has no parameters; a query string is
        // tolerated and ignored.
        let path = target.split('?').next().unwrap_or(target);
        match path {
            "/healthz" => HttpResponse::ok("application/json", "{\"status\":\"ok\"}\n".to_string()),
            "/metrics" => HttpResponse::ok(
                "text/plain; version=0.0.4",
                self.daemon.metrics_prometheus(),
            ),
            "/metrics/rates" => match &self.rates {
                Some(rates) => HttpResponse::ok("application/json", rates.render_json()),
                None => HttpResponse::error(404, "rate recorder disabled"),
            },
            "/jobs" => HttpResponse::ok("application/json", self.render_jobs()),
            _ => match path.strip_prefix("/jobs/") {
                Some(rest) => match rest.parse::<u64>() {
                    Ok(id) => match self.daemon.timelines().timeline(id) {
                        Some(t) => HttpResponse::ok("application/json", t.render_json()),
                        None => HttpResponse::error(404, &format!("unknown job id {id}")),
                    },
                    Err(_) => HttpResponse::error(400, &format!("bad job id `{rest}`")),
                },
                None => HttpResponse::error(404, &format!("unknown path {path}")),
            },
        }
    }

    fn render_jobs(&self) -> String {
        let status = self.daemon.status();
        let mut out = format!(
            "{{\"queue\":{{\"queued_interactive\":{},\"queued_bulk\":{},\"running\":{},\
             \"done\":{},\"capacity\":{},\"draining\":{}}},\"jobs\":[",
            status.queued_interactive,
            status.queued_bulk,
            status.running,
            status.done,
            status.capacity,
            status.draining
        );
        for (i, job) in self.daemon.jobs().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"id\":{},\"name\":\"{}\",\"priority\":\"{}\",\"phase\":\"{}\",\
                 \"verdict\":{}}}",
                job.id,
                json_escape(&job.name),
                job.priority.label(),
                job.phase.label(),
                match &job.verdict {
                    Some(v) => format!("\"{}\"", json_escape(&v.verdict)),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Serves exactly one request from `reader`, writing one response
    /// to `writer`, then returns (connection-per-request). All failure
    /// modes produce a structured 4xx; transport errors just drop the
    /// connection.
    pub fn handle<R: BufRead, W: Write>(&self, mut reader: R, mut writer: W) {
        let response = match read_request(&mut reader) {
            Ok((method, target)) => self.respond(&method, &target),
            Err(resp) => resp,
        };
        let _ = writer.write_all(response.render().as_bytes());
        let _ = writer.flush();
    }
}

/// Reads and parses the request line plus the header block (headers are
/// only consumed, never interpreted — the plane has no use for them).
fn read_request(reader: &mut impl BufRead) -> Result<(String, String), HttpResponse> {
    let line =
        read_crlf_line(reader, MAX_REQUEST_LINE_BYTES).map_err(|oversized| match oversized {
            true => HttpResponse::error(431, "request line too long"),
            false => HttpResponse::error(400, "truncated request"),
        })?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v),
        _ => return Err(HttpResponse::error(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpResponse::error(400, "unsupported protocol version"));
    }
    if !target.starts_with('/') {
        return Err(HttpResponse::error(400, "request target must be absolute"));
    }
    // Drain headers up to the blank line, within the block cap.
    let mut header_bytes = 0usize;
    loop {
        let header =
            read_crlf_line(reader, MAX_HEADER_BYTES).map_err(|oversized| match oversized {
                true => HttpResponse::error(431, "header block too large"),
                false => HttpResponse::error(400, "truncated header block"),
            })?;
        if header.is_empty() {
            break;
        }
        header_bytes += header.len() + 2;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpResponse::error(431, "header block too large"));
        }
    }
    Ok((method, target))
}

/// Reads one CRLF- (or bare-LF-) terminated line of at most `cap`
/// bytes. `Err(true)` = over the cap, `Err(false)` = EOF/transport
/// error before the terminator.
fn read_crlf_line(reader: &mut impl BufRead, cap: usize) -> Result<String, bool> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return Err(false),
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(false),
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > cap {
                    return Err(true);
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                return String::from_utf8(buf).map_err(|_| false);
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > cap {
                    return Err(true);
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

/// Binds the HTTP listener (nonblocking, ready for [`serve_http`]).
/// Split from the serve loop so embedders can bind port `0` and read
/// the assigned address before serving.
pub fn bind_http(addr: &str) -> Result<TcpListener, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set nonblocking: {e}"))?;
    Ok(listener)
}

/// Accept loop for the observability plane. Runs until the daemon
/// finishes or `stop` fires; each connection is served (one request)
/// on its own thread. Never touches the JSON-protocol listeners.
pub fn serve_http(
    daemon: &Arc<Daemon>,
    rates: Option<Arc<RateRecorder>>,
    listener: TcpListener,
    stop: &CancelToken,
) {
    let scope = Arc::new(Scope::new(Arc::clone(daemon), rates));
    while !stop.is_cancelled() && !daemon.finished() {
        match listener.accept() {
            Ok((stream, _)) => {
                let scope = Arc::clone(&scope);
                std::thread::spawn(move || {
                    // A stalled peer must not pin the thread forever.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                    let Ok(reader) = stream.try_clone() else {
                        return;
                    };
                    scope.handle(BufReader::new(reader), stream);
                });
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// A minimal blocking HTTP GET against the plane (used by `octopocs
/// top` and the e2e tests): returns `(status, body)`.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::StubExecutor;
    use crate::proto::{JobSpec, Priority};
    use std::io::Cursor;

    fn spec(name: &str, priority: Priority) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            priority,
            s_text: "func main() {\nentry:\n  halt 0\n}\n".to_string(),
            t_text: "func main() {\nentry:\n  halt 0\n}\n".to_string(),
            poc_hex: "41".to_string(),
            shared: vec![],
        }
    }

    fn finished_daemon() -> Arc<Daemon> {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 8);
        daemon.submit(spec("one", Priority::Bulk)).unwrap();
        let workers = daemon.start_workers(1);
        daemon.wait_idle();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
        daemon
    }

    fn get(scope: &Scope, request: &str) -> (u16, String) {
        let mut out: Vec<u8> = Vec::new();
        scope.handle(Cursor::new(request.as_bytes().to_vec()), &mut out);
        let raw = String::from_utf8(out).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("has header block");
        let status = head
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse::<u16>()
            .unwrap();
        assert!(
            head.contains(&format!("Content-Length: {}", body.len())),
            "length header must match body: {head}"
        );
        (status, body.to_string())
    }

    #[test]
    fn healthz_metrics_jobs_and_timeline_routes_serve() {
        let daemon = finished_daemon();
        let scope = Scope::new(daemon, None);

        let (status, body) = get(&scope, "GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}\n");

        let (status, body) = get(&scope, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 200);
        assert!(
            body.contains("# TYPE serve_admissions_total counter"),
            "{body}"
        );
        assert!(
            body.contains("# TYPE serve_queue_depth_bulk gauge"),
            "{body}"
        );

        let (status, body) = get(&scope, "GET /jobs HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(
            body.contains("\"queue\":{\"queued_interactive\":0"),
            "{body}"
        );
        assert!(
            body.contains("\"phase\":\"done\",\"verdict\":\"Type-I\""),
            "{body}"
        );

        let (status, body) = get(&scope, "GET /jobs/1?pretty=1 HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"queue_wait_us\":"), "{body}");
        assert!(body.contains("\"attempts\":[{\"attempt\":1"), "{body}");
    }

    #[test]
    fn malformed_and_unknown_requests_get_structured_4xx() {
        let daemon = finished_daemon();
        let scope = Scope::new(daemon, None);

        let (status, body) = get(&scope, "GET /nope HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);
        assert!(body.contains("\"error\":\"unknown path /nope\""), "{body}");

        let (status, body) = get(&scope, "GET /jobs/99 HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);
        assert!(body.contains("unknown job id 99"), "{body}");

        let (status, body) = get(&scope, "GET /jobs/xyz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 400);
        assert!(body.contains("bad job id"), "{body}");

        let (status, _) = get(&scope, "POST /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);

        let (status, body) = get(&scope, "garbage\r\n\r\n");
        assert_eq!(status, 400);
        assert!(body.contains("malformed request line"), "{body}");

        let (status, _) = get(&scope, "GET /metrics SPDY/3\r\n\r\n");
        assert_eq!(status, 400);

        let (status, _) = get(&scope, "GET metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 400);
    }

    #[test]
    fn oversized_request_line_and_headers_get_431() {
        let daemon = finished_daemon();
        let scope = Scope::new(daemon, None);

        let long = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "x".repeat(MAX_REQUEST_LINE_BYTES)
        );
        let (status, body) = get(&scope, &long);
        assert_eq!(status, 431);
        assert!(body.contains("request line too long"), "{body}");

        let huge_header = format!(
            "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        let (status, body) = get(&scope, &huge_header);
        assert_eq!(status, 431);
        assert!(body.contains("header block too large"), "{body}");
    }

    #[test]
    fn rates_route_is_gated_on_a_recorder() {
        let daemon = finished_daemon();
        let no_rates = Scope::new(daemon.clone(), None);
        let (status, body) = get(&no_rates, "GET /metrics/rates HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);
        assert!(body.contains("rate recorder disabled"), "{body}");

        let recorder = Arc::new(RateRecorder::new(4));
        // Two manual ticks over a scratch registry so one window exists.
        let reg = octo_obs::MetricsRegistry::new();
        reg.counter("ticks").add(3);
        recorder.record(&reg, 1_000);
        reg.counter("ticks").add(2);
        recorder.record(&reg, 2_000);
        let with_rates = Scope::new(daemon, Some(recorder));
        let (status, body) = get(&with_rates, "GET /metrics/rates HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"windows\":["), "{body}");
        assert!(body.contains("\"ticks\":2"), "{body}");
    }

    #[test]
    fn served_over_a_real_socket_end_to_end() {
        // The daemon must still be live — serve_http stops once it
        // finishes — so run the job but hold off draining.
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 8);
        daemon.submit(spec("one", Priority::Bulk)).unwrap();
        let workers = daemon.start_workers(1);
        daemon.wait_idle();
        let listener = bind_http("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = CancelToken::new();
        let serve_stop = stop.clone();
        let serve_daemon = daemon.clone();
        let handle = std::thread::spawn(move || {
            serve_http(&serve_daemon, None, listener, &serve_stop);
        });
        let (status, body) =
            http_get(&addr, "/healthz", Duration::from_secs(5)).expect("healthz reachable");
        assert_eq!(status, 200);
        assert_eq!(body, "{\"status\":\"ok\"}\n");
        let (status, body) =
            http_get(&addr, "/jobs/1", Duration::from_secs(5)).expect("timeline reachable");
        assert_eq!(status, 200);
        assert!(body.contains("\"outcome\":\"Type-I\""), "{body}");
        stop.cancel();
        handle.join().unwrap();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
    }
}
