//! `octo-serve`: the OctoPoCs verification service layer.
//!
//! Everything the long-running daemon (`octopocsd`) and its client
//! subcommands share, engine-free:
//!
//! - [`json`]: a dependency-free JSON value parser for the wire and
//!   journal formats.
//! - [`proto`]: the line-delimited JSON wire protocol — requests,
//!   responses, and their total parse/render pairs.
//! - [`journal`]: the append-only durability log replayed on restart.
//! - [`daemon`]: admission control, the bounded two-class priority
//!   queue, the worker pool, and the [`daemon::JobExecutor`] seam the
//!   core crate plugs its pipeline into.
//! - [`server`]: the socket accept loop and capped line reader.
//! - [`client`]: the connection type the CLI subcommands drive.
//!
//! The daemon's lifecycle and wire reference are documented in
//! `docs/service.md`.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod journal;
pub mod json;
pub mod proto;
pub mod server;

pub use client::{Client, Endpoint};
pub use daemon::{Daemon, ExecJob, ExecOutcome, JobExecutor, SubmitError, QUEUE_WAIT_BUCKETS};
pub use journal::{Journal, Replay};
pub use proto::{
    JobPhase, JobSpec, JobStatus, Priority, QueueStatus, Request, Response, ResultRow,
    VerdictSummary, WireEvent, WireEventKind, MAX_LINE_BYTES,
};
pub use server::{handle_connection, serve, ServerConfig};
