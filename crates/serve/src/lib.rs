//! `octo-serve`: the OctoPoCs verification service layer.
//!
//! Everything the long-running daemon (`octopocsd`) and its client
//! subcommands share, engine-free:
//!
//! - [`json`]: a dependency-free JSON value parser for the wire and
//!   journal formats.
//! - [`proto`]: the line-delimited JSON wire protocol — requests,
//!   responses, and their total parse/render pairs.
//! - [`journal`]: the append-only durability log replayed on restart.
//! - [`daemon`]: admission control, the bounded two-class priority
//!   queue, the worker pool, and the [`daemon::JobExecutor`] seam the
//!   core crate plugs its pipeline into.
//! - [`server`]: the socket accept loop and capped line reader.
//! - [`client`]: the connection type the CLI subcommands drive.
//! - [`timeline`]: per-job timelines (submit → queue wait → attempts →
//!   phase spans) assembled from the daemon's own event stream.
//! - [`http`]: octo-scope, the read-only HTTP/1.1 observability plane
//!   (`/healthz`, `/metrics`, `/metrics/rates`, `/jobs`, `/jobs/<id>`).
//!
//! The daemon's lifecycle and wire reference are documented in
//! `docs/service.md`; the HTTP plane in `docs/observability.md`.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod http;
pub mod journal;
pub mod json;
pub mod proto;
pub mod server;
pub mod timeline;

pub use client::{Client, Endpoint};
pub use daemon::{Daemon, ExecJob, ExecOutcome, JobExecutor, SubmitError, QUEUE_WAIT_BUCKETS};
pub use http::{bind_http, http_get, serve_http, HttpResponse, Scope};
pub use journal::{Journal, Replay};
pub use proto::{
    JobPhase, JobSpec, JobStatus, Priority, QueueStatus, Request, Response, ResultRow,
    VerdictSummary, WireEvent, WireEventKind, MAX_LINE_BYTES,
};
pub use server::{handle_connection, serve, ServerConfig};
pub use timeline::{AttemptSpan, JobTimeline, TimelineStep, TimelineStore};
