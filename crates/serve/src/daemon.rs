//! The octopocsd core: a durable, priority-scheduled job queue.
//!
//! The daemon is engine-agnostic — it owns admission control, the
//! journal, the two priority queues, the worker pool, and the event
//! fan-out, and delegates the actual (S, T, poc, ℓ) verification to a
//! [`JobExecutor`] supplied by the embedder (the `octopocs` core crate
//! wires in its batch runtime; tests wire in stubs). That keeps this
//! crate free of a dependency on the pipeline while letting the daemon
//! and the one-shot `batch` subcommand share one execution path.
//!
//! Lifecycle: jobs are journaled *before* they are enqueued and their
//! verdicts journaled when they finish; a job cut short by shutdown is
//! journaled as submitted but never as finished, so a restart on the
//! same journal resubmits it under its original id and the run
//! converges to the verdicts an uninterrupted run would have produced.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use octo_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use octo_sched::{Event, EventSink, FanoutSink};

use crate::journal::{Journal, Replay};
use crate::proto::{
    JobPhase, JobSpec, JobStatus, Priority, QueueStatus, Response, ResultRow, VerdictSummary,
    WireEvent,
};
use crate::timeline::TimelineStore;

/// Queue-wait histogram bounds, microseconds. Shared with the batch
/// metrics registration in the core crate — the registry asserts that
/// re-registrations agree on bounds, so there is exactly one definition.
pub const QUEUE_WAIT_BUCKETS: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// One admitted job as handed to the executor.
#[derive(Debug, Clone)]
pub struct ExecJob {
    /// Daemon-global id (also the event-stream job index).
    pub id: u64,
    /// What to verify.
    pub spec: JobSpec,
}

/// What the executor produced for one job.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The verdict summary (journaled unless `cancelled`).
    pub verdict: VerdictSummary,
    /// Rendered post-mortem, when the pipeline produced one.
    pub post_mortem: Option<String>,
    /// The job was cut short by a drain/shutdown rather than finishing.
    /// Cancelled outcomes are *not* journaled: the job stays incomplete
    /// and is resubmitted when the daemon restarts.
    pub cancelled: bool,
}

/// The verification engine behind the daemon.
pub trait JobExecutor: Send + Sync {
    /// Runs one job to completion (or cancellation), emitting progress
    /// events for worker lane `worker` into `sink`.
    fn run(&self, job: &ExecJob, worker: usize, sink: &dyn EventSink) -> ExecOutcome;

    /// The registry the daemon's `serve_*` metrics live in (shared with
    /// the engine's own metrics so one `metrics` reply carries both).
    fn registry(&self) -> &MetricsRegistry;

    /// Renders the registry for the `metrics` response. Embedders that
    /// refresh derived gauges before rendering override this.
    fn metrics_json(&self) -> String {
        self.registry().render_json()
    }

    /// Renders the registry in the Prometheus text format (the HTTP
    /// plane's `/metrics`). Embedders that refresh derived gauges
    /// before rendering override this too.
    fn metrics_prometheus(&self) -> String {
        self.registry().render_prometheus()
    }

    /// Fires the engine's run-level cancel token: every in-flight job
    /// should wind down as cancelled. Called once at shutdown.
    fn cancel_all(&self) {}
}

/// Handles to the pre-registered `serve_*` metrics.
struct ServeMetrics {
    admissions: Arc<Counter>,
    rejections: Arc<Counter>,
    replays: Arc<Counter>,
    /// Per-priority queue depths: one gauge per class, so a scrape can
    /// see bulk starvation even while interactive churns.
    queue_depth_interactive: Arc<Gauge>,
    queue_depth_bulk: Arc<Gauge>,
    queue_wait: Arc<Histogram>,
}

impl ServeMetrics {
    fn register(reg: &MetricsRegistry) -> ServeMetrics {
        ServeMetrics {
            admissions: reg.counter("serve_admissions_total"),
            rejections: reg.counter("serve_rejections_total"),
            replays: reg.counter("serve_replays_total"),
            queue_depth_interactive: reg.gauge("serve_queue_depth_interactive"),
            queue_depth_bulk: reg.gauge("serve_queue_depth_bulk"),
            queue_wait: reg.histogram("serve_queue_wait_micros", &QUEUE_WAIT_BUCKETS),
        }
    }

    fn set_queue_depth(&self, state: &State) {
        self.queue_depth_interactive
            .set(state.interactive.len() as u64);
        self.queue_depth_bulk.set(state.bulk.len() as u64);
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Backpressure: the queue is at capacity (or the daemon is
    /// draining). Maps to the wire's `rejected` response.
    Rejected(String),
    /// The job itself is malformed (bad program text, bad hex). Maps to
    /// the wire's `error` response.
    Invalid(String),
}

struct JobRecord {
    spec: JobSpec,
    phase: JobPhase,
    verdict: Option<VerdictSummary>,
    post_mortem: Option<String>,
    queued_at: Instant,
}

#[derive(Default)]
struct State {
    jobs: BTreeMap<u64, JobRecord>,
    interactive: VecDeque<u64>,
    bulk: VecDeque<u64>,
    running: u64,
    next_id: u64,
    draining: bool,
    shutting_down: bool,
}

impl State {
    fn queued(&self) -> u64 {
        (self.interactive.len() + self.bulk.len()) as u64
    }

    fn done(&self) -> u64 {
        self.jobs
            .values()
            .filter(|j| j.phase == JobPhase::Done)
            .count() as u64
    }
}

/// The daemon: admission, queueing, workers, journal, fan-out.
pub struct Daemon {
    executor: Arc<dyn JobExecutor>,
    journal: Option<Journal>,
    capacity: usize,
    state: Mutex<State>,
    /// Signalled when work arrives or the lifecycle changes.
    work: Condvar,
    /// Signalled when a job finishes (drain/join waits on it).
    idle: Condvar,
    fanout: Arc<FanoutSink>,
    metrics: ServeMetrics,
    timelines: Arc<TimelineStore>,
}

impl Daemon {
    /// A daemon over `executor` with a queue bound of `capacity`
    /// waiting jobs. Pass a journal for durability; `None` keeps
    /// everything in memory (tests).
    pub fn new(
        executor: Arc<dyn JobExecutor>,
        journal: Option<Journal>,
        capacity: usize,
    ) -> Arc<Daemon> {
        let metrics = ServeMetrics::register(executor.registry());
        let fanout = Arc::new(FanoutSink::new());
        let timelines = Arc::new(TimelineStore::new());
        // The timeline store mirrors the scheduler's event stream for
        // the life of the daemon (watch subscribers come and go beside
        // it on the same fan-out).
        fanout.subscribe(timelines.clone());
        Arc::new(Daemon {
            executor,
            journal,
            capacity: capacity.max(1),
            state: Mutex::new(State {
                next_id: 1,
                ..State::default()
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            fanout,
            metrics,
            timelines,
        })
    }

    /// Restores journal contents: finished jobs become `done` rows,
    /// unfinished jobs are resubmitted under their original ids.
    pub fn restore(&self, replay: Replay) {
        let mut state = self.state.lock().expect("daemon state poisoned");
        for (id, spec) in replay.jobs {
            let verdict = replay.verdicts.get(&id).cloned();
            self.timelines
                .record_submitted(id, &spec.name, spec.priority);
            let phase = if let Some(done) = &verdict {
                // A restored verdict has no live history; its timeline
                // is just the restored outcome.
                self.timelines
                    .record_finished(id, JobPhase::Done, &done.verdict);
                JobPhase::Done
            } else {
                match spec.priority {
                    Priority::Interactive => state.interactive.push_back(id),
                    Priority::Bulk => state.bulk.push_back(id),
                }
                self.metrics.replays.inc();
                JobPhase::Queued
            };
            state.jobs.insert(
                id,
                JobRecord {
                    spec,
                    phase,
                    verdict,
                    post_mortem: None,
                    queued_at: Instant::now(),
                },
            );
            state.next_id = state.next_id.max(id + 1);
        }
        self.metrics.set_queue_depth(&state);
        drop(state);
        self.work.notify_all();
    }

    /// Spawns `workers` executor threads. The returned handles join
    /// once the daemon is drained or shut down.
    pub fn start_workers(self: &Arc<Self>, workers: usize) -> Vec<std::thread::JoinHandle<()>> {
        (0..workers.max(1))
            .map(|w| {
                let daemon = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("octopocsd-worker-{w}"))
                    .spawn(move || daemon.worker_loop(w))
                    .expect("spawn worker")
            })
            .collect()
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("daemon state poisoned");
                loop {
                    if state.shutting_down {
                        return;
                    }
                    if let Some(id) = state
                        .interactive
                        .pop_front()
                        .or_else(|| state.bulk.pop_front())
                    {
                        let record = state.jobs.get_mut(&id).expect("queued job exists");
                        record.phase = JobPhase::Running;
                        state.running += 1;
                        self.metrics.set_queue_depth(&state);
                        self.timelines.record_picked_up(id);
                        let record = state.jobs.get(&id).expect("queued job exists");
                        let wait = record.queued_at.elapsed().as_micros() as u64;
                        self.metrics.queue_wait.observe(wait);
                        break ExecJob {
                            id,
                            spec: record.spec.clone(),
                        };
                    }
                    if state.draining {
                        // Nothing queued and no more admissions: done.
                        return;
                    }
                    let (next, _) = self
                        .work
                        .wait_timeout(state, Duration::from_millis(50))
                        .expect("daemon state poisoned");
                    state = next;
                }
            };
            let outcome = self.executor.run(&job, worker, self.fanout.as_ref());
            let mut state = self.state.lock().expect("daemon state poisoned");
            state.running -= 1;
            let record = state.jobs.get_mut(&job.id).expect("running job exists");
            if outcome.cancelled {
                record.phase = JobPhase::Interrupted;
                self.timelines
                    .record_finished(job.id, JobPhase::Interrupted, "interrupted");
            } else {
                record.phase = JobPhase::Done;
                record.verdict = Some(outcome.verdict.clone());
                record.post_mortem = outcome.post_mortem;
                self.timelines
                    .record_finished(job.id, JobPhase::Done, &outcome.verdict.verdict);
                if let Some(journal) = &self.journal {
                    if let Err(e) = journal.record_verdict(job.id, &outcome.verdict) {
                        eprintln!("octopocsd: {e}");
                    }
                }
            }
            drop(state);
            self.idle.notify_all();
        }
    }

    /// Admits one job: journal first, then enqueue. Full queues and
    /// draining daemons refuse with [`SubmitError::Rejected`]; malformed
    /// jobs with [`SubmitError::Invalid`].
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        validate_spec(&spec).map_err(SubmitError::Invalid)?;
        let mut state = self.state.lock().expect("daemon state poisoned");
        if state.draining {
            self.metrics.rejections.inc();
            return Err(SubmitError::Rejected("daemon is draining".to_string()));
        }
        if state.queued() as usize >= self.capacity {
            self.metrics.rejections.inc();
            return Err(SubmitError::Rejected(format!(
                "queue full (capacity {})",
                self.capacity
            )));
        }
        let id = state.next_id;
        if let Some(journal) = &self.journal {
            journal
                .record_job(id, &spec)
                .map_err(SubmitError::Invalid)?;
        }
        state.next_id += 1;
        match spec.priority {
            Priority::Interactive => state.interactive.push_back(id),
            Priority::Bulk => state.bulk.push_back(id),
        }
        self.timelines
            .record_submitted(id, &spec.name, spec.priority);
        state.jobs.insert(
            id,
            JobRecord {
                spec,
                phase: JobPhase::Queued,
                verdict: None,
                post_mortem: None,
                queued_at: Instant::now(),
            },
        );
        self.metrics.admissions.inc();
        self.metrics.set_queue_depth(&state);
        drop(state);
        self.work.notify_one();
        Ok(id)
    }

    /// Queue-level status snapshot.
    pub fn status(&self) -> QueueStatus {
        let state = self.state.lock().expect("daemon state poisoned");
        QueueStatus {
            queued_interactive: state.interactive.len() as u64,
            queued_bulk: state.bulk.len() as u64,
            running: state.running,
            done: state.done(),
            capacity: self.capacity as u64,
            draining: state.draining,
        }
    }

    /// One job's status, or `None` for unknown ids.
    pub fn job_status(&self, id: u64) -> Option<JobStatus> {
        let state = self.state.lock().expect("daemon state poisoned");
        state.jobs.get(&id).map(|j| JobStatus {
            id,
            name: j.spec.name.clone(),
            priority: j.spec.priority,
            phase: j.phase,
            verdict: j.verdict.clone(),
            post_mortem: j.post_mortem.clone(),
        })
    }

    /// Finished verdicts in id (= submission) order.
    pub fn results(&self) -> Vec<ResultRow> {
        let state = self.state.lock().expect("daemon state poisoned");
        state
            .jobs
            .iter()
            .filter_map(|(id, j)| {
                j.verdict.as_ref().map(|v| ResultRow {
                    id: *id,
                    name: j.spec.name.clone(),
                    verdict: v.clone(),
                })
            })
            .collect()
    }

    /// Every known job's status, in id (= submission) order — the
    /// queue + in-flight + completed listing behind `GET /jobs`.
    pub fn jobs(&self) -> Vec<JobStatus> {
        let state = self.state.lock().expect("daemon state poisoned");
        state
            .jobs
            .iter()
            .map(|(id, j)| JobStatus {
                id: *id,
                name: j.spec.name.clone(),
                priority: j.spec.priority,
                phase: j.phase,
                verdict: j.verdict.clone(),
                post_mortem: j.post_mortem.clone(),
            })
            .collect()
    }

    /// The executor's metrics rendering.
    pub fn metrics_json(&self) -> String {
        self.executor.metrics_json()
    }

    /// The executor's Prometheus text rendering (the HTTP plane's
    /// `/metrics` body).
    pub fn metrics_prometheus(&self) -> String {
        self.executor.metrics_prometheus()
    }

    /// The live per-job timeline table.
    pub fn timelines(&self) -> &Arc<TimelineStore> {
        &self.timelines
    }

    /// Streams `id`'s live events into `deliver` until the job
    /// finishes, then delivers the terminal `done` (or `error`) line.
    /// `deliver` returning `Err` (the peer hung up) detaches quietly.
    pub fn watch(
        &self,
        id: u64,
        deliver: &mut dyn FnMut(&Response) -> Result<(), String>,
    ) -> Result<(), String> {
        struct BufferSink {
            job: u64,
            buf: Mutex<Vec<Event>>,
        }
        impl EventSink for BufferSink {
            fn emit(&self, event: Event) {
                if event.job() as u64 == self.job {
                    self.buf.lock().expect("watch buffer poisoned").push(event);
                }
            }
        }

        if self.job_status(id).is_none() {
            return deliver(&Response::Error {
                message: format!("unknown job id {id}"),
            });
        }
        let sink = Arc::new(BufferSink {
            job: id,
            buf: Mutex::new(Vec::new()),
        });
        let sub = self.fanout.subscribe(sink.clone());
        let result = (|| loop {
            let pending: Vec<Event> =
                std::mem::take(&mut *sink.buf.lock().expect("watch buffer poisoned"));
            for event in &pending {
                deliver(&Response::Event(WireEvent::from_event(event)))?;
            }
            let status = self.job_status(id).expect("watched job exists");
            match status.phase {
                JobPhase::Done => {
                    let drained: Vec<Event> =
                        std::mem::take(&mut *sink.buf.lock().expect("watch buffer poisoned"));
                    for event in &drained {
                        deliver(&Response::Event(WireEvent::from_event(event)))?;
                    }
                    return deliver(&Response::Done {
                        id,
                        verdict: status.verdict.expect("done job has a verdict"),
                    });
                }
                JobPhase::Interrupted => {
                    return deliver(&Response::Error {
                        message: format!("job {id} interrupted by shutdown"),
                    });
                }
                JobPhase::Queued | JobPhase::Running => {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        })();
        self.fanout.unsubscribe(sub);
        result
    }

    /// Stops admissions; queued work still runs. Returns the number of
    /// jobs still pending (queued + running).
    pub fn drain(&self) -> u64 {
        let mut state = self.state.lock().expect("daemon state poisoned");
        state.draining = true;
        let pending = state.queued() + state.running;
        drop(state);
        self.work.notify_all();
        pending
    }

    /// Stops admissions *and* cancels in-flight work. Incomplete jobs
    /// are left unjournaled-as-finished, so a restart replays them.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("daemon state poisoned");
        state.draining = true;
        state.shutting_down = true;
        drop(state);
        self.executor.cancel_all();
        self.work.notify_all();
    }

    /// True once the daemon can exit: draining (or shut down) with
    /// nothing queued or running.
    pub fn finished(&self) -> bool {
        let state = self.state.lock().expect("daemon state poisoned");
        state.draining && (state.shutting_down || (state.queued() == 0 && state.running == 0))
    }

    /// Blocks until every queued/running job has finished (used by
    /// graceful drain before exit).
    pub fn wait_idle(&self) {
        let mut state = self.state.lock().expect("daemon state poisoned");
        while !state.shutting_down && (state.queued() > 0 || state.running > 0) {
            let (next, _) = self
                .idle
                .wait_timeout(state, Duration::from_millis(50))
                .expect("daemon state poisoned");
            state = next;
        }
    }

    /// The event fan-out every executor run emits into.
    pub fn fanout(&self) -> &Arc<FanoutSink> {
        &self.fanout
    }

    /// Compacts the journal (if one is attached) down to the jobs a
    /// restart would actually resubmit: everything finished is
    /// dropped, everything queued/running/interrupted is rewritten as
    /// a bare job record. Call on an orderly exit, after the workers
    /// have stopped. Returns the number of records kept, or `None`
    /// when the daemon is journal-less.
    pub fn compact_journal(&self) -> Option<Result<u64, String>> {
        let journal = self.journal.as_ref()?;
        let state = self.state.lock().expect("daemon state poisoned");
        let incomplete: Vec<(u64, JobSpec)> = state
            .jobs
            .iter()
            .filter(|(_, j)| j.phase != JobPhase::Done)
            .map(|(id, j)| (*id, j.spec.clone()))
            .collect();
        let kept = incomplete.len() as u64;
        drop(state);
        Some(journal.compact(&incomplete).map(|()| kept))
    }
}

/// Parses and validates both program texts and the PoC hex so a bad
/// submission is refused at admission, not at execution.
fn validate_spec(spec: &JobSpec) -> Result<(), String> {
    crate::proto::from_hex(&spec.poc_hex).map_err(|e| format!("job `{}`: {e}", spec.name))?;
    for (label, text) in [("s", &spec.s_text), ("t", &spec.t_text)] {
        let program = octo_ir::parse::parse_program(text)
            .map_err(|e| format!("job `{}`: program `{label}`: {e}", spec.name))?;
        octo_ir::validate::validate(&program).map_err(|errors| {
            format!(
                "job `{}`: program `{label}`: {}",
                spec.name,
                errors
                    .first()
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "invalid program".to_string())
            )
        })?;
    }
    Ok(())
}

/// A trivial executor for tests: records calls, returns canned
/// verdicts, optionally blocks until released.
pub struct StubExecutor {
    registry: MetricsRegistry,
    /// Job names executed, in execution order.
    pub executed: Mutex<Vec<String>>,
    gate: Option<(Mutex<bool>, Condvar)>,
    cancelled: AtomicBool,
}

impl StubExecutor {
    /// An executor that finishes jobs immediately.
    pub fn immediate() -> StubExecutor {
        StubExecutor {
            registry: MetricsRegistry::new(),
            executed: Mutex::new(Vec::new()),
            gate: None,
            cancelled: AtomicBool::new(false),
        }
    }

    /// An executor whose jobs block until [`StubExecutor::release`].
    pub fn gated() -> StubExecutor {
        StubExecutor {
            registry: MetricsRegistry::new(),
            executed: Mutex::new(Vec::new()),
            gate: Some((Mutex::new(false), Condvar::new())),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Unblocks every gated job.
    pub fn release(&self) {
        if let Some((flag, cv)) = &self.gate {
            *flag.lock().expect("gate poisoned") = true;
            cv.notify_all();
        }
    }
}

impl JobExecutor for StubExecutor {
    fn run(&self, job: &ExecJob, _worker: usize, _sink: &dyn EventSink) -> ExecOutcome {
        self.executed
            .lock()
            .expect("executed poisoned")
            .push(job.spec.name.clone());
        if let Some((flag, cv)) = &self.gate {
            let mut open = flag.lock().expect("gate poisoned");
            while !*open && !self.cancelled.load(Ordering::Acquire) {
                let (next, _) = cv
                    .wait_timeout(open, Duration::from_millis(10))
                    .expect("gate poisoned");
                open = next;
            }
        }
        let cancelled = self.cancelled.load(Ordering::Acquire);
        ExecOutcome {
            verdict: VerdictSummary {
                verdict: "Type-I".to_string(),
                poc_generated: true,
                verified: true,
                attempts: 1,
                quarantined: false,
            },
            post_mortem: None,
            cancelled,
        }
    }

    fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn cancel_all(&self) {
        self.cancelled.store(true, Ordering::Release);
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, priority: Priority) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            priority,
            s_text: "func main() {\nentry:\n  halt 0\n}\n".to_string(),
            t_text: "func main() {\nentry:\n  halt 0\n}\n".to_string(),
            poc_hex: "41".to_string(),
            shared: vec![],
        }
    }

    #[test]
    fn runs_submitted_jobs_and_reports_results_in_id_order() {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 16);
        let a = daemon.submit(spec("a", Priority::Bulk)).unwrap();
        let b = daemon.submit(spec("b", Priority::Bulk)).unwrap();
        assert_eq!((a, b), (1, 2));
        let workers = daemon.start_workers(2);
        daemon.wait_idle();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
        let rows = daemon.results();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "a");
        assert_eq!(rows[1].name, "b");
        assert_eq!(rows[0].verdict.verdict, "Type-I");
    }

    #[test]
    fn interactive_jobs_jump_the_bulk_queue() {
        let executor = Arc::new(StubExecutor::gated());
        let daemon = Daemon::new(executor.clone(), None, 16);
        // One gated job occupies the single worker; everything else
        // queues, so dequeue order is observable.
        daemon.submit(spec("first", Priority::Bulk)).unwrap();
        let workers = daemon.start_workers(1);
        while executor.executed.lock().unwrap().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.submit(spec("bulk-1", Priority::Bulk)).unwrap();
        daemon.submit(spec("bulk-2", Priority::Bulk)).unwrap();
        daemon.submit(spec("rush", Priority::Interactive)).unwrap();
        executor.release();
        daemon.wait_idle();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
        let order = executor.executed.lock().unwrap().clone();
        assert_eq!(order, vec!["first", "rush", "bulk-1", "bulk-2"]);
    }

    #[test]
    fn full_queue_is_rejected_with_backpressure_not_a_hang() {
        let executor = Arc::new(StubExecutor::gated());
        let daemon = Daemon::new(executor.clone(), None, 1);
        daemon.submit(spec("running", Priority::Bulk)).unwrap();
        let workers = daemon.start_workers(1);
        while executor.executed.lock().unwrap().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Worker busy; capacity-1 queue takes exactly one more.
        daemon.submit(spec("queued", Priority::Bulk)).unwrap();
        let err = daemon.submit(spec("overflow", Priority::Bulk)).unwrap_err();
        assert_eq!(
            err,
            SubmitError::Rejected("queue full (capacity 1)".to_string())
        );
        let reg = executor.registry();
        assert_eq!(reg.get_counter("serve_rejections_total").unwrap().get(), 1);
        assert_eq!(reg.get_counter("serve_admissions_total").unwrap().get(), 2);
        executor.release();
        daemon.wait_idle();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn invalid_programs_are_refused_at_admission() {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 4);
        let mut bad = spec("bad", Priority::Bulk);
        bad.s_text = "this is not MicroIR".to_string();
        match daemon.submit(bad) {
            Err(SubmitError::Invalid(msg)) => assert!(msg.contains("program `s`"), "{msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        let mut bad_hex = spec("bad-hex", Priority::Bulk);
        bad_hex.poc_hex = "zz".to_string();
        assert!(matches!(
            daemon.submit(bad_hex),
            Err(SubmitError::Invalid(_))
        ));
    }

    #[test]
    fn shutdown_leaves_cancelled_jobs_incomplete_for_replay() {
        let executor = Arc::new(StubExecutor::gated());
        let daemon = Daemon::new(executor.clone(), None, 8);
        daemon.submit(spec("victim", Priority::Bulk)).unwrap();
        let workers = daemon.start_workers(1);
        while executor.executed.lock().unwrap().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        let status = daemon.job_status(1).unwrap();
        assert_eq!(status.phase, JobPhase::Interrupted);
        assert!(status.verdict.is_none());
        assert!(daemon.results().is_empty());
        assert!(daemon.finished());
    }

    #[test]
    fn restore_resubmits_incomplete_jobs_and_keeps_done_ones() {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 16);
        let mut replay = Replay::default();
        replay.jobs.push((1, spec("done-before", Priority::Bulk)));
        replay.jobs.push((2, spec("redo", Priority::Bulk)));
        replay.verdicts.insert(
            1,
            VerdictSummary {
                verdict: "Type-II".to_string(),
                poc_generated: true,
                verified: true,
                attempts: 1,
                quarantined: false,
            },
        );
        daemon.restore(replay);
        let reg = daemon.executor.registry();
        assert_eq!(reg.get_counter("serve_replays_total").unwrap().get(), 1);
        let workers = daemon.start_workers(1);
        daemon.wait_idle();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
        let rows = daemon.results();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].verdict.verdict, "Type-II");
        assert_eq!(rows[1].verdict.verdict, "Type-I");
        // New submissions continue after the replayed ids.
        let next = daemon.submit(spec("next", Priority::Bulk));
        assert_eq!(
            next,
            Err(SubmitError::Rejected("daemon is draining".to_string()))
        );
    }

    #[test]
    fn queue_depth_gauges_split_by_priority() {
        let executor = Arc::new(StubExecutor::gated());
        let daemon = Daemon::new(executor.clone(), None, 16);
        daemon.submit(spec("first", Priority::Bulk)).unwrap();
        let workers = daemon.start_workers(1);
        while executor.executed.lock().unwrap().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.submit(spec("bulk-q", Priority::Bulk)).unwrap();
        daemon.submit(spec("rush", Priority::Interactive)).unwrap();
        let reg = executor.registry();
        assert_eq!(
            reg.get_gauge("serve_queue_depth_interactive")
                .unwrap()
                .get(),
            1
        );
        assert_eq!(reg.get_gauge("serve_queue_depth_bulk").unwrap().get(), 1);
        assert!(
            reg.get_gauge("serve_queue_depth").is_none(),
            "the aggregate gauge is replaced by the per-priority split"
        );
        executor.release();
        daemon.wait_idle();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            reg.get_gauge("serve_queue_depth_interactive")
                .unwrap()
                .get(),
            0
        );
        assert_eq!(reg.get_gauge("serve_queue_depth_bulk").unwrap().get(), 0);
    }

    #[test]
    fn daemon_assembles_timelines_for_submitted_jobs() {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 8);
        daemon.submit(spec("traced", Priority::Bulk)).unwrap();
        let workers = daemon.start_workers(1);
        daemon.wait_idle();
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
        let t = daemon.timelines().timeline(1).expect("timeline exists");
        assert_eq!(t.name, "traced");
        assert_eq!(t.phase, JobPhase::Done);
        assert_eq!(t.outcome.as_deref(), Some("Type-I"));
        let picked = t.picked_up_us.expect("picked up");
        let finished = t.finished_us.expect("finished");
        assert!(t.submitted_us < picked && picked < finished);
        assert_eq!(t.queue_wait_us(), Some(picked - t.submitted_us));
        // The daemon's /jobs listing mirrors the job table.
        let jobs = daemon.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].phase, JobPhase::Done);
    }

    #[test]
    fn watch_streams_done_for_finished_jobs() {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 4);
        daemon
            .submit(spec("watched", Priority::Interactive))
            .unwrap();
        let workers = daemon.start_workers(1);
        daemon.wait_idle();
        let mut seen = Vec::new();
        daemon
            .watch(1, &mut |resp| {
                seen.push(resp.clone());
                Ok(())
            })
            .unwrap();
        assert!(matches!(seen.last(), Some(Response::Done { id: 1, .. })));
        let mut unknown = Vec::new();
        daemon
            .watch(99, &mut |resp| {
                unknown.push(resp.clone());
                Ok(())
            })
            .unwrap();
        assert!(matches!(unknown.last(), Some(Response::Error { .. })));
        daemon.drain();
        for w in workers {
            w.join().unwrap();
        }
    }
}
