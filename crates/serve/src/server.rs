//! The daemon's socket front end: accept loop, per-connection threads,
//! and the capped line reader.
//!
//! The server listens on a Unix socket (and optionally TCP), spawns a
//! thread per connection, and answers one response line per request
//! line — except `watch`, which streams. Malformed input of any kind
//! (bad JSON, unknown verbs, oversized lines) is answered with a
//! structured `error` line and the connection stays open; only EOF or a
//! transport error closes it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use octo_sched::CancelToken;

use crate::daemon::{Daemon, SubmitError};
use crate::proto::{Request, Response, MAX_LINE_BYTES};

/// Where the server listens.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path (removed and re-bound at startup, unlinked at
    /// exit).
    pub socket: std::path::PathBuf,
    /// Optional additional TCP bind address (e.g. `127.0.0.1:7333`).
    pub tcp: Option<String>,
}

/// Outcome of reading one protocol line.
enum Line {
    /// A complete line (without the newline).
    Ok(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; it was discarded up to the
    /// next newline.
    Oversized,
    /// The peer closed (or the transport failed).
    Closed,
}

/// Reads one newline-terminated line, enforcing the protocol cap. An
/// oversized line is consumed (so the stream stays in sync) and
/// reported as [`Line::Oversized`] instead of disconnecting.
fn read_line_capped(reader: &mut impl BufRead) -> Line {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return Line::Closed,
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Line::Closed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !oversized && buf.len() + pos <= MAX_LINE_BYTES {
                    buf.extend_from_slice(&chunk[..pos]);
                } else {
                    oversized = true;
                }
                reader.consume(pos + 1);
                if oversized {
                    return Line::Oversized;
                }
                return match String::from_utf8(buf) {
                    Ok(line) => Line::Ok(line),
                    Err(_) => Line::Ok(String::from("\u{fffd}")),
                };
            }
            None => {
                let len = chunk.len();
                if !oversized && buf.len() + len <= MAX_LINE_BYTES {
                    buf.extend_from_slice(chunk);
                } else {
                    oversized = true;
                    buf.clear();
                }
                reader.consume(len);
            }
        }
    }
}

fn write_line(writer: &mut impl Write, resp: &Response) -> Result<(), String> {
    let mut line = resp.render();
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write failed: {e}"))
}

/// Serves one connection until EOF. Public so tests (and embedders with
/// their own transport) can drive the protocol over any
/// `BufRead`/`Write` pair — the socket listeners in [`serve`] are just
/// this function behind accept loops.
pub fn handle_connection<R: BufRead, W: Write>(daemon: &Daemon, mut reader: R, mut writer: W) {
    loop {
        let line = match read_line_capped(&mut reader) {
            Line::Closed => return,
            Line::Oversized => {
                let resp = Response::Error {
                    message: format!("line exceeds {MAX_LINE_BYTES} bytes"),
                };
                if write_line(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            Line::Ok(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(message) => {
                if write_line(&mut writer, &Response::Error { message }).is_err() {
                    return;
                }
                continue;
            }
        };
        let done = matches!(request, Request::Shutdown);
        let outcome = match request {
            Request::Ping => write_line(&mut writer, &Response::Pong),
            Request::Submit { job } => {
                let resp = match daemon.submit(job) {
                    Ok(id) => Response::Accepted { id },
                    Err(SubmitError::Rejected(reason)) => Response::Rejected { reason },
                    Err(SubmitError::Invalid(message)) => Response::Error { message },
                };
                write_line(&mut writer, &resp)
            }
            Request::Status { id: None } => {
                write_line(&mut writer, &Response::Status(daemon.status()))
            }
            Request::Status { id: Some(id) } => {
                let resp = match daemon.job_status(id) {
                    Some(job) => Response::Job(job),
                    None => Response::Error {
                        message: format!("unknown job id {id}"),
                    },
                };
                write_line(&mut writer, &resp)
            }
            Request::Watch { id } => daemon.watch(id, &mut |resp| write_line(&mut writer, resp)),
            Request::Results => write_line(
                &mut writer,
                &Response::Results {
                    jobs: daemon.results(),
                },
            ),
            Request::Metrics => write_line(
                &mut writer,
                &Response::Metrics {
                    body: daemon.metrics_json(),
                },
            ),
            Request::Drain => write_line(
                &mut writer,
                &Response::Draining {
                    pending: daemon.drain(),
                },
            ),
            Request::Shutdown => {
                daemon.shutdown();
                write_line(&mut writer, &Response::ShuttingDown)
            }
        };
        if outcome.is_err() || done {
            return;
        }
    }
}

/// Runs the accept loop until the daemon finishes (drain completed or
/// shutdown requested) or `stop` fires — `stop` is mapped to a full
/// [`Daemon::shutdown`], the graceful-on-first-signal path.
///
/// Returns once no further connections will be served; the caller joins
/// the worker threads and removes the socket file.
pub fn serve(
    daemon: &Arc<Daemon>,
    config: &ServerConfig,
    stop: &CancelToken,
) -> Result<(), String> {
    #[cfg(unix)]
    let unix_listener = {
        let _ = std::fs::remove_file(&config.socket);
        let listener = std::os::unix::net::UnixListener::bind(&config.socket)
            .map_err(|e| format!("cannot bind {}: {e}", config.socket.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking: {e}"))?;
        listener
    };
    let tcp_listener = match &config.tcp {
        Some(addr) => {
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("cannot set nonblocking: {e}"))?;
            Some(listener)
        }
        None => None,
    };

    let mut signalled = false;
    loop {
        if stop.is_cancelled() && !signalled {
            signalled = true;
            daemon.shutdown();
        }
        if daemon.finished() {
            break;
        }
        let mut accepted = false;
        #[cfg(unix)]
        if let Ok((stream, _)) = unix_listener.accept() {
            accepted = true;
            let daemon = Arc::clone(daemon);
            let reader = stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?;
            std::thread::spawn(move || {
                handle_connection(&daemon, BufReader::new(reader), stream);
            });
        }
        if let Some(listener) = &tcp_listener {
            if let Ok((stream, _)) = listener.accept() {
                accepted = true;
                let daemon = Arc::clone(daemon);
                let reader = stream
                    .try_clone()
                    .map_err(|e| format!("cannot clone stream: {e}"))?;
                std::thread::spawn(move || {
                    handle_connection(&daemon, BufReader::new(reader), stream);
                });
            }
        }
        if !accepted {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    #[cfg(unix)]
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::StubExecutor;
    use crate::proto::{JobSpec, Priority};
    use std::io::Cursor;

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            priority: Priority::Bulk,
            s_text: "func main() {\nentry:\n  halt 0\n}\n".to_string(),
            t_text: "func main() {\nentry:\n  halt 0\n}\n".to_string(),
            poc_hex: "41".to_string(),
            shared: vec![],
        }
    }

    fn roundtrip(daemon: &Daemon, input: &str) -> Vec<Response> {
        let mut out: Vec<u8> = Vec::new();
        handle_connection(daemon, Cursor::new(input.as_bytes().to_vec()), &mut out);
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Response::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn malformed_lines_get_structured_errors_without_disconnect() {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 4);
        let input = "garbage\n{\"req\":\"bogus\"}\n{\"req\":\"ping\"}\n";
        let responses = roundtrip(&daemon, input);
        assert_eq!(responses.len(), 3);
        assert!(matches!(responses[0], Response::Error { .. }));
        assert!(matches!(responses[1], Response::Error { .. }));
        assert_eq!(responses[2], Response::Pong);
    }

    #[test]
    fn oversized_line_is_discarded_and_answered_then_stream_recovers() {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 4);
        let mut input = "x".repeat(MAX_LINE_BYTES + 10);
        input.push('\n');
        input.push_str("{\"req\":\"ping\"}\n");
        let responses = roundtrip(&daemon, &input);
        assert_eq!(responses.len(), 2);
        match &responses[0] {
            Response::Error { message } => assert!(message.contains("exceeds"), "{message}"),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(responses[1], Response::Pong);
    }

    #[test]
    fn submit_status_results_flow_over_the_connection_layer() {
        let daemon = Daemon::new(Arc::new(StubExecutor::immediate()), None, 4);
        let submit = Request::Submit { job: spec("one") }.render();
        let input = format!("{submit}\n{}\n", Request::Status { id: None }.render());
        let responses = roundtrip(&daemon, &input);
        assert_eq!(responses[0], Response::Accepted { id: 1 });
        match &responses[1] {
            Response::Status(s) => assert_eq!(s.queued_bulk, 1),
            other => panic!("expected status, got {other:?}"),
        }
    }
}
