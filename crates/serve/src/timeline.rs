//! Per-job causal timelines: submit → queue-wait → attempts → phases →
//! verdict, assembled live as the daemon runs.
//!
//! A [`TimelineStore`] is an [`EventSink`] the daemon subscribes to its
//! event fan-out at construction, plus three direct hooks for the
//! transitions only the daemon sees (admission, worker pickup, record
//! of the outcome). Every entry — whether it arrived from the
//! scheduler's event stream or from a daemon transition — is stamped on
//! one store-local clock that is clamped to strictly increase, so a
//! [`JobTimeline`] always reads in causal order even though scheduler
//! timestamps ([`octo_sched::EventClock`]) and daemon wall instants
//! live on different origins.
//!
//! Memory is bounded per job: past [`MAX_STEPS_PER_JOB`] scheduler
//! steps further arrivals are counted in `dropped_steps` instead of
//! stored (the submit/pickup/finish stamps are always kept). Jobs
//! themselves live as long as the daemon's own job table, which keeps
//! every record for `results` anyway.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use octo_sched::{Event, EventSink};

use crate::json::json_escape;
use crate::proto::{JobPhase, Priority, WireEvent, WireEventKind};

/// Cap on stored scheduler steps per job (a pathological event storm
/// must not grow the daemon's memory without bound).
pub const MAX_STEPS_PER_JOB: usize = 4096;

/// One causally-ordered timeline entry derived from the scheduler's
/// event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineStep {
    /// Store-clock stamp, microseconds since the store's epoch;
    /// strictly increasing across *all* entries of the store.
    pub at_us: u64,
    /// Worker lane that emitted the underlying event.
    pub worker: u64,
    /// The event payload (scheduler timestamps and durations ride along
    /// inside unchanged).
    pub kind: WireEventKind,
}

/// The assembled per-job view served at `/jobs/<id>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTimeline {
    /// Daemon job id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Queue phase at read time.
    pub phase: JobPhase,
    /// Store-clock stamp of admission.
    pub submitted_us: u64,
    /// Store-clock stamp of worker pickup (`None` while queued).
    pub picked_up_us: Option<u64>,
    /// Store-clock stamp of the final transition (`None` while running).
    pub finished_us: Option<u64>,
    /// Outcome label once finished (`"interrupted"` for shutdown).
    pub outcome: Option<String>,
    /// Scheduler-derived steps in causal order.
    pub steps: Vec<TimelineStep>,
    /// Steps discarded beyond [`MAX_STEPS_PER_JOB`].
    pub dropped_steps: u64,
}

/// One attempt's summary, derived from the retry steps: attempts `1..n`
/// each end in a `retry` step carrying backoff and watchdog beats; the
/// final attempt ends with the job itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptSpan {
    /// 1-based attempt number.
    pub attempt: u64,
    /// Store-clock stamp at which the attempt ended (the retry step for
    /// failed attempts; `finished_us` — when known — for the last one).
    pub ended_us: Option<u64>,
    /// Backoff scheduled after this attempt, microseconds (`None` on
    /// the final attempt).
    pub backoff_us: Option<u64>,
    /// Watchdog heartbeats observed during the attempt (`None` when the
    /// scheduler did not report them — i.e. any non-retried attempt).
    pub beats: Option<u64>,
}

impl JobTimeline {
    /// Queue wait in microseconds, once a worker picked the job up.
    pub fn queue_wait_us(&self) -> Option<u64> {
        self.picked_up_us.map(|t| t - self.submitted_us)
    }

    /// The attempts this job has made so far (always at least one once
    /// the job started; empty while queued).
    pub fn attempts(&self) -> Vec<AttemptSpan> {
        if self.picked_up_us.is_none() {
            return Vec::new();
        }
        let mut spans: Vec<AttemptSpan> = self
            .steps
            .iter()
            .filter_map(|s| match &s.kind {
                WireEventKind::Retry {
                    attempt,
                    backoff_us,
                    beats,
                } => Some(AttemptSpan {
                    attempt: *attempt,
                    ended_us: Some(s.at_us),
                    backoff_us: Some(*backoff_us),
                    beats: Some(*beats),
                }),
                _ => None,
            })
            .collect();
        let last = spans.last().map_or(1, |s| s.attempt + 1);
        spans.push(AttemptSpan {
            attempt: last,
            ended_us: self.finished_us,
            backoff_us: None,
            beats: None,
        });
        spans
    }

    /// Renders the timeline as one JSON document (integer stamps,
    /// sorted causally; the shape served at `/jobs/<id>`).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"name\":\"{}\",\"priority\":\"{}\",\"phase\":\"{}\",\
             \"submitted_us\":{}",
            self.id,
            json_escape(&self.name),
            self.priority.label(),
            self.phase.label(),
            self.submitted_us
        );
        let opt = |out: &mut String, key: &str, v: Option<u64>| match v {
            Some(v) => out.push_str(&format!(",\"{key}\":{v}")),
            None => out.push_str(&format!(",\"{key}\":null")),
        };
        opt(&mut out, "picked_up_us", self.picked_up_us);
        opt(&mut out, "queue_wait_us", self.queue_wait_us());
        opt(&mut out, "finished_us", self.finished_us);
        match &self.outcome {
            Some(o) => out.push_str(&format!(",\"outcome\":\"{}\"", json_escape(o))),
            None => out.push_str(",\"outcome\":null"),
        }
        out.push_str(&format!(",\"dropped_steps\":{}", self.dropped_steps));
        out.push_str(",\"attempts\":[");
        for (i, a) in self.attempts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"attempt\":{}", a.attempt));
            opt(&mut out, "ended_us", a.ended_us);
            opt(&mut out, "backoff_us", a.backoff_us);
            opt(&mut out, "beats", a.beats);
            out.push('}');
        }
        out.push_str("],\"steps\":[");
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{{\"at_us\":{},\"worker\":{},{}}}",
                s.at_us,
                s.worker,
                render_step_kind(&s.kind)
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Renders a step payload as JSON fields (shares labels with the wire
/// protocol's `event` responses, minus the envelope).
fn render_step_kind(kind: &WireEventKind) -> String {
    match kind {
        WireEventKind::Started { name } => {
            format!("\"step\":\"started\",\"name\":\"{}\"", json_escape(name))
        }
        WireEventKind::Phase { phase, micros } => format!(
            "\"step\":\"phase\",\"phase\":\"{}\",\"micros\":{micros}",
            json_escape(phase)
        ),
        WireEventKind::CacheHit { key } => {
            format!("\"step\":\"cache_hit\",\"key\":\"{key:016x}\"")
        }
        WireEventKind::Finished { outcome, micros } => format!(
            "\"step\":\"finished\",\"outcome\":\"{}\",\"micros\":{micros}",
            json_escape(outcome)
        ),
        WireEventKind::Retry {
            attempt,
            backoff_us,
            beats,
        } => format!(
            "\"step\":\"retry\",\"attempt\":{attempt},\"backoff_us\":{backoff_us},\
             \"beats\":{beats}"
        ),
    }
}

#[derive(Default)]
struct Inner {
    last_stamp: u64,
    jobs: BTreeMap<u64, JobTimeline>,
}

/// The live timeline table (see the module docs).
pub struct TimelineStore {
    origin: Instant,
    inner: Mutex<Inner>,
}

impl Default for TimelineStore {
    fn default() -> TimelineStore {
        TimelineStore::new()
    }
}

impl std::fmt::Debug for TimelineStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimelineStore")
            .field(
                "jobs",
                &self.inner.lock().expect("timelines poisoned").jobs.len(),
            )
            .finish()
    }
}

impl TimelineStore {
    /// An empty store whose clock starts now.
    pub fn new() -> TimelineStore {
        TimelineStore {
            origin: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Next store-clock stamp: wall elapsed micros, clamped to strictly
    /// exceed every stamp handed out before (callers hold the lock).
    fn stamp(&self, inner: &mut Inner) -> u64 {
        let now = self.origin.elapsed().as_micros() as u64;
        let ts = now.max(inner.last_stamp + 1);
        inner.last_stamp = ts;
        ts
    }

    /// Records an admission (also used for journal replays — a replayed
    /// job re-enters the queue, so its timeline restarts here).
    pub fn record_submitted(&self, id: u64, name: &str, priority: Priority) {
        let mut inner = self.inner.lock().expect("timelines poisoned");
        let at = self.stamp(&mut inner);
        inner.jobs.insert(
            id,
            JobTimeline {
                id,
                name: name.to_string(),
                priority,
                phase: JobPhase::Queued,
                submitted_us: at,
                picked_up_us: None,
                finished_us: None,
                outcome: None,
                steps: Vec::new(),
                dropped_steps: 0,
            },
        );
    }

    /// Records a worker pickup (closes the queue-wait span).
    pub fn record_picked_up(&self, id: u64) {
        let mut inner = self.inner.lock().expect("timelines poisoned");
        let at = self.stamp(&mut inner);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.picked_up_us = Some(at);
            job.phase = JobPhase::Running;
        }
    }

    /// Records the terminal transition. `outcome` is the verdict label,
    /// or `"interrupted"` when a shutdown cut the job short.
    pub fn record_finished(&self, id: u64, phase: JobPhase, outcome: &str) {
        let mut inner = self.inner.lock().expect("timelines poisoned");
        let at = self.stamp(&mut inner);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.finished_us = Some(at);
            job.phase = phase;
            job.outcome = Some(outcome.to_string());
        }
    }

    /// A snapshot of one job's timeline.
    pub fn timeline(&self, id: u64) -> Option<JobTimeline> {
        self.inner
            .lock()
            .expect("timelines poisoned")
            .jobs
            .get(&id)
            .cloned()
    }

    /// All known job ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("timelines poisoned")
            .jobs
            .keys()
            .copied()
            .collect()
    }
}

impl EventSink for TimelineStore {
    fn emit(&self, event: Event) {
        let wire = WireEvent::from_event(&event);
        let mut inner = self.inner.lock().expect("timelines poisoned");
        let at = self.stamp(&mut inner);
        if let Some(job) = inner.jobs.get_mut(&wire.job) {
            if job.steps.len() >= MAX_STEPS_PER_JOB {
                job.dropped_steps += 1;
            } else {
                job.steps.push(TimelineStep {
                    at_us: at,
                    worker: wire.worker,
                    kind: wire.kind,
                });
            }
        }
        // Events for ids the daemon never admitted are dropped: the
        // store only mirrors jobs the daemon owns.
    }
}

/// Shared handle type for the store (the daemon hands clones to its
/// fan-out and to the HTTP plane).
pub type SharedTimelines = Arc<TimelineStore>;

#[cfg(test)]
mod tests {
    use super::*;
    use octo_sched::EventKind;

    fn event(job: usize, kind: EventKind) -> Event {
        let _ = job;
        Event::new(0, 0, kind)
    }

    #[test]
    fn lifecycle_stamps_are_strictly_monotonic() {
        let store = TimelineStore::new();
        store.record_submitted(1, "job-a", Priority::Bulk);
        store.record_picked_up(1);
        store.emit(event(
            1,
            EventKind::JobStarted {
                job: 1,
                name: "job-a".into(),
            },
        ));
        store.emit(event(
            1,
            EventKind::PhaseFinished {
                job: 1,
                phase: "prepare",
                seconds: 0.001,
            },
        ));
        store.record_finished(1, JobPhase::Done, "Type-I");

        let t = store.timeline(1).unwrap();
        assert_eq!(t.phase, JobPhase::Done);
        let mut stamps = vec![t.submitted_us, t.picked_up_us.unwrap()];
        stamps.extend(t.steps.iter().map(|s| s.at_us));
        stamps.push(t.finished_us.unwrap());
        assert!(
            stamps.windows(2).all(|w| w[0] < w[1]),
            "timeline stamps must strictly increase: {stamps:?}"
        );
        assert_eq!(
            t.queue_wait_us(),
            Some(t.picked_up_us.unwrap() - t.submitted_us)
        );
    }

    #[test]
    fn retries_become_attempt_spans() {
        let store = TimelineStore::new();
        store.record_submitted(7, "flaky", Priority::Interactive);
        store.record_picked_up(7);
        store.emit(event(
            7,
            EventKind::RetryScheduled {
                job: 7,
                attempt: 1,
                backoff_micros: 2000,
                beats: 5,
            },
        ));
        store.emit(event(
            7,
            EventKind::RetryScheduled {
                job: 7,
                attempt: 2,
                backoff_micros: 4000,
                beats: 9,
            },
        ));
        store.record_finished(7, JobPhase::Done, "Type-I");

        let t = store.timeline(7).unwrap();
        let attempts = t.attempts();
        assert_eq!(attempts.len(), 3);
        assert_eq!(attempts[0].attempt, 1);
        assert_eq!(attempts[0].backoff_us, Some(2000));
        assert_eq!(attempts[0].beats, Some(5));
        assert_eq!(attempts[1].backoff_us, Some(4000));
        assert_eq!(attempts[2].attempt, 3);
        assert_eq!(attempts[2].backoff_us, None);
        assert_eq!(attempts[2].ended_us, t.finished_us);
    }

    #[test]
    fn queued_jobs_have_no_attempts_and_unknown_jobs_drop_events() {
        let store = TimelineStore::new();
        store.record_submitted(1, "waiting", Priority::Bulk);
        assert!(store.timeline(1).unwrap().attempts().is_empty());
        // An event for an id never admitted is ignored, not a panic.
        store.emit(event(99, EventKind::CacheHit { job: 99, key: 0xAB }));
        assert!(store.timeline(99).is_none());
        assert_eq!(store.ids(), vec![1]);
    }

    #[test]
    fn step_cap_counts_drops_instead_of_growing() {
        let store = TimelineStore::new();
        store.record_submitted(1, "storm", Priority::Bulk);
        for _ in 0..(MAX_STEPS_PER_JOB + 10) {
            store.emit(event(1, EventKind::CacheHit { job: 1, key: 1 }));
        }
        let t = store.timeline(1).unwrap();
        assert_eq!(t.steps.len(), MAX_STEPS_PER_JOB);
        assert_eq!(t.dropped_steps, 10);
    }

    #[test]
    fn render_json_carries_queue_wait_attempts_and_steps() {
        let store = TimelineStore::new();
        store.record_submitted(3, "r\"j", Priority::Bulk);
        store.record_picked_up(3);
        store.emit(event(
            3,
            EventKind::PhaseFinished {
                job: 3,
                phase: "symex",
                seconds: 0.5,
            },
        ));
        store.record_finished(3, JobPhase::Done, "Type-II");
        let json = store.timeline(3).unwrap().render_json();
        assert!(json.contains("\"id\":3"), "{json}");
        assert!(json.contains("\"name\":\"r\\\"j\""), "escaped name: {json}");
        assert!(json.contains("\"queue_wait_us\":"), "{json}");
        assert!(json.contains("\"outcome\":\"Type-II\""), "{json}");
        assert!(
            json.contains("\"step\":\"phase\",\"phase\":\"symex\",\"micros\":500000"),
            "{json}"
        );
        assert!(json.contains("\"attempts\":[{\"attempt\":1"), "{json}");
    }
}
