//! The octopocsd wire protocol: line-delimited JSON messages.
//!
//! One request per line, one response per line — except `watch`, which
//! streams `event` lines and finishes with a `done` line. Requests carry
//! a `"req"` verb, responses a `"resp"` verb; every message parses and
//! renders through this module on both sides of the socket, so the
//! client subcommands and the daemon cannot drift apart. Parsing is
//! strict (unknown verbs *and* unknown keys are structured errors) and
//! total: malformed input yields `Err(String)`, never a panic or a
//! dropped connection. The full reference lives in `docs/service.md`.

use crate::json::{json_escape, parse_json, JsonValue};

/// Hard cap on one protocol line (request or response), bytes. A line
/// that exceeds it is discarded to the next newline and answered with a
/// structured error; see `docs/service.md`.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Scheduling class of a submitted job. Interactive jobs are always
/// dequeued ahead of bulk jobs (within a class: FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// A human is waiting on this verdict.
    Interactive,
    /// Corpus-scan style background work.
    Bulk,
}

impl Priority {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Result<Priority, String> {
        match s {
            "interactive" => Ok(Priority::Interactive),
            "bulk" => Ok(Priority::Bulk),
            other => Err(format!("unknown priority `{other}`")),
        }
    }
}

/// Where a job stands in the daemon's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished with a journaled verdict.
    Done,
    /// Cut short by a drain/shutdown before completing; will be
    /// resubmitted when the daemon restarts on the same journal.
    Interrupted,
}

impl JobPhase {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Interrupted => "interrupted",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Result<JobPhase, String> {
        match s {
            "queued" => Ok(JobPhase::Queued),
            "running" => Ok(JobPhase::Running),
            "done" => Ok(JobPhase::Done),
            "interrupted" => Ok(JobPhase::Interrupted),
            other => Err(format!("unknown job phase `{other}`")),
        }
    }
}

/// One job as submitted over the wire: program *texts* (parsed and
/// validated by the daemon at admission), the PoC as hex, the shared
/// set, and a priority class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Display name, echoed through status/results.
    pub name: String,
    /// Scheduling class.
    pub priority: Priority,
    /// MicroIR text of the vulnerable source `S`.
    pub s_text: String,
    /// MicroIR text of the propagated target `T`.
    pub t_text: String,
    /// PoC bytes, lowercase hex.
    pub poc_hex: String,
    /// Names of the shared (cloned) functions, in order.
    pub shared: Vec<String>,
}

/// The stable, journal-safe summary of one finished job — exactly the
/// fields of one row of `tests/golden/batch_verdicts.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictSummary {
    /// `Type-I` / `Type-II` / `Type-III` / `Failure`.
    pub verdict: String,
    /// Whether a working `poc'` was produced.
    pub poc_generated: bool,
    /// Whether verification succeeded (triggered or verified-safe).
    pub verified: bool,
    /// Attempts the retry policy spent.
    pub attempts: u32,
    /// Whether the job exhausted its retries on transient failures.
    pub quarantined: bool,
}

impl VerdictSummary {
    /// Renders exactly one golden-file verdict row *minus* the `name`
    /// field (the caller owns name + separators).
    pub fn render_fields(&self) -> String {
        format!(
            "\"verdict\":\"{}\",\"poc_generated\":{},\"verified\":{},\"attempts\":{},\
             \"quarantined\":{}",
            json_escape(&self.verdict),
            self.poc_generated,
            self.verified,
            self.attempts,
            self.quarantined
        )
    }

    fn render(&self) -> String {
        format!("{{{}}}", self.render_fields())
    }

    /// Parses a summary object (shared with the journal's `verdict`
    /// record).
    pub fn parse(v: &JsonValue) -> Result<VerdictSummary, String> {
        check_keys(
            v,
            &[
                "verdict",
                "poc_generated",
                "verified",
                "attempts",
                "quarantined",
            ],
        )?;
        Ok(VerdictSummary {
            verdict: str_field(v, "verdict")?,
            poc_generated: bool_field(v, "poc_generated")?,
            verified: bool_field(v, "verified")?,
            attempts: u32_field(v, "attempts")?,
            quarantined: bool_field(v, "quarantined")?,
        })
    }
}

/// A progress event as it crosses the wire. Mirrors
/// [`octo_sched::Event`] but with integer microseconds everywhere
/// (lossless round-trips) and the daemon-global job id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEvent {
    /// Daemon job id the event belongs to.
    pub job: u64,
    /// Worker lane that emitted it.
    pub worker: u64,
    /// Per-worker monotonic stamp, microseconds.
    pub ts_us: u64,
    /// What happened.
    pub kind: WireEventKind,
}

/// Payload of a [`WireEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireEventKind {
    /// A worker picked the job up.
    Started {
        /// Display name.
        name: String,
    },
    /// One pipeline phase finished.
    Phase {
        /// Phase label (`"prepare"`, `"symex"`, `"p4"`).
        phase: String,
        /// Phase wall time, microseconds.
        micros: u64,
    },
    /// The job's prefix came from the artifact cache.
    CacheHit {
        /// The content-address that hit.
        key: u64,
    },
    /// The job finished.
    Finished {
        /// Outcome label (`"Type-I"`, …).
        outcome: String,
        /// Job wall time, microseconds.
        micros: u64,
    },
    /// An attempt failed transiently; a retry is scheduled.
    Retry {
        /// The 1-based attempt that failed.
        attempt: u64,
        /// Backoff before the next attempt, microseconds.
        backoff_us: u64,
        /// Watchdog heartbeats observed during the failed attempt.
        beats: u64,
    },
}

impl WireEvent {
    /// Converts a scheduler event (f64 seconds, usize ids) into its wire
    /// form.
    pub fn from_event(e: &octo_sched::Event) -> WireEvent {
        use octo_sched::EventKind;
        let kind = match &e.kind {
            EventKind::JobStarted { name, .. } => WireEventKind::Started { name: name.clone() },
            EventKind::PhaseFinished { phase, seconds, .. } => WireEventKind::Phase {
                phase: (*phase).to_string(),
                micros: (seconds * 1e6) as u64,
            },
            EventKind::CacheHit { key, .. } => WireEventKind::CacheHit { key: *key },
            EventKind::JobFinished {
                outcome, seconds, ..
            } => WireEventKind::Finished {
                outcome: outcome.clone(),
                micros: (seconds * 1e6) as u64,
            },
            EventKind::RetryScheduled {
                attempt,
                backoff_micros,
                beats,
                ..
            } => WireEventKind::Retry {
                attempt: u64::from(*attempt),
                backoff_us: *backoff_micros,
                beats: *beats,
            },
        };
        WireEvent {
            job: e.job() as u64,
            worker: e.worker as u64,
            ts_us: e.ts_micros,
            kind,
        }
    }

    fn render(&self) -> String {
        let head = format!(
            "\"job\":{},\"worker\":{},\"ts_us\":{}",
            self.job, self.worker, self.ts_us
        );
        match &self.kind {
            WireEventKind::Started { name } => format!(
                "\"kind\":\"started\",{head},\"name\":\"{}\"",
                json_escape(name)
            ),
            WireEventKind::Phase { phase, micros } => format!(
                "\"kind\":\"phase\",{head},\"phase\":\"{}\",\"micros\":{micros}",
                json_escape(phase)
            ),
            WireEventKind::CacheHit { key } => {
                format!("\"kind\":\"cache_hit\",{head},\"key\":\"{key:016x}\"")
            }
            WireEventKind::Finished { outcome, micros } => format!(
                "\"kind\":\"finished\",{head},\"outcome\":\"{}\",\"micros\":{micros}",
                json_escape(outcome)
            ),
            WireEventKind::Retry {
                attempt,
                backoff_us,
                beats,
            } => format!(
                "\"kind\":\"retry\",{head},\"attempt\":{attempt},\"backoff_us\":{backoff_us},\
                 \"beats\":{beats}"
            ),
        }
    }

    fn parse(v: &JsonValue) -> Result<WireEvent, String> {
        let kind_label = str_field(v, "kind")?;
        let base = ["resp", "kind", "job", "worker", "ts_us"];
        let kind = match kind_label.as_str() {
            "started" => {
                check_keys_plus(v, &base, &["name"])?;
                WireEventKind::Started {
                    name: str_field(v, "name")?,
                }
            }
            "phase" => {
                check_keys_plus(v, &base, &["phase", "micros"])?;
                WireEventKind::Phase {
                    phase: str_field(v, "phase")?,
                    micros: u64_field(v, "micros")?,
                }
            }
            "cache_hit" => {
                check_keys_plus(v, &base, &["key"])?;
                let hex = str_field(v, "key")?;
                let key =
                    u64::from_str_radix(&hex, 16).map_err(|_| format!("bad cache key `{hex}`"))?;
                WireEventKind::CacheHit { key }
            }
            "finished" => {
                check_keys_plus(v, &base, &["outcome", "micros"])?;
                WireEventKind::Finished {
                    outcome: str_field(v, "outcome")?,
                    micros: u64_field(v, "micros")?,
                }
            }
            "retry" => {
                check_keys_plus(v, &base, &["attempt", "backoff_us", "beats"])?;
                WireEventKind::Retry {
                    attempt: u64_field(v, "attempt")?,
                    backoff_us: u64_field(v, "backoff_us")?,
                    beats: u64_field(v, "beats")?,
                }
            }
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(WireEvent {
            job: u64_field(v, "job")?,
            worker: u64_field(v, "worker")?,
            ts_us: u64_field(v, "ts_us")?,
            kind,
        })
    }
}

/// Everything a client can ask the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Admit one job (answered with `accepted` or `rejected`).
    Submit {
        /// The job.
        job: JobSpec,
    },
    /// Queue-level status (`id: None`) or one job's status.
    Status {
        /// Job id, when asking about one job.
        id: Option<u64>,
    },
    /// Stream the job's live events, ending with its verdict.
    Watch {
        /// Job id.
        id: u64,
    },
    /// All finished verdicts, in submission (= id) order.
    Results,
    /// The metrics registry as JSON.
    Metrics,
    /// Stop admitting, finish everything queued, then exit.
    Drain,
    /// Cancel in-flight work and exit; incomplete jobs replay on
    /// restart.
    Shutdown,
}

impl Request {
    /// One wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Ping => "{\"req\":\"ping\"}".to_string(),
            Request::Submit { job } => format!(
                "{{\"req\":\"submit\",\"job\":{{{}}}}}",
                render_jobspec_fields(job)
            ),
            Request::Status { id: None } => "{\"req\":\"status\"}".to_string(),
            Request::Status { id: Some(id) } => format!("{{\"req\":\"status\",\"id\":{id}}}"),
            Request::Watch { id } => format!("{{\"req\":\"watch\",\"id\":{id}}}"),
            Request::Results => "{\"req\":\"results\"}".to_string(),
            Request::Metrics => "{\"req\":\"metrics\"}".to_string(),
            Request::Drain => "{\"req\":\"drain\"}".to_string(),
            Request::Shutdown => "{\"req\":\"shutdown\"}".to_string(),
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse_json(line)?;
        if v.as_object().is_none() {
            return Err("request must be a JSON object".to_string());
        }
        let verb = str_field(&v, "req")?;
        match verb.as_str() {
            "ping" | "results" | "metrics" | "drain" | "shutdown" => {
                check_keys(&v, &["req"])?;
                Ok(match verb.as_str() {
                    "ping" => Request::Ping,
                    "results" => Request::Results,
                    "metrics" => Request::Metrics,
                    "drain" => Request::Drain,
                    _ => Request::Shutdown,
                })
            }
            "submit" => {
                check_keys(&v, &["req", "job"])?;
                let job = v.get("job").ok_or("missing `job`")?;
                Ok(Request::Submit {
                    job: parse_jobspec(job)?,
                })
            }
            "status" => {
                check_keys(&v, &["req", "id"])?;
                Ok(Request::Status {
                    id: opt_u64_field(&v, "id")?,
                })
            }
            "watch" => {
                check_keys(&v, &["req", "id"])?;
                Ok(Request::Watch {
                    id: u64_field(&v, "id")?,
                })
            }
            other => Err(format!("unknown request verb `{other}`")),
        }
    }
}

/// Queue-level status snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueStatus {
    /// Interactive jobs waiting.
    pub queued_interactive: u64,
    /// Bulk jobs waiting.
    pub queued_bulk: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs with journaled verdicts.
    pub done: u64,
    /// Admission-control bound on waiting jobs.
    pub capacity: u64,
    /// Whether a drain is in progress (no further admissions).
    pub draining: bool,
}

/// One job's status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Where it stands.
    pub phase: JobPhase,
    /// The verdict, when done.
    pub verdict: Option<VerdictSummary>,
    /// Rendered post-mortem, when the verdict warranted one.
    pub post_mortem: Option<String>,
}

/// One row of a `results` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultRow {
    /// Job id.
    pub id: u64,
    /// Display name.
    pub name: String,
    /// The finished verdict.
    pub verdict: VerdictSummary,
}

/// Everything the daemon can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Job admitted under this id.
    Accepted {
        /// Assigned job id.
        id: u64,
    },
    /// Job refused — the explicit backpressure (or draining) reply.
    Rejected {
        /// Why (e.g. `"queue full (capacity 64)"`).
        reason: String,
    },
    /// Queue-level status.
    Status(QueueStatus),
    /// One job's status.
    Job(JobStatus),
    /// One live progress event (within a `watch` stream).
    Event(WireEvent),
    /// End of a `watch` stream: the job's verdict.
    Done {
        /// Job id.
        id: u64,
        /// Its verdict.
        verdict: VerdictSummary,
    },
    /// All finished verdicts.
    Results {
        /// Rows in id (= submission) order.
        jobs: Vec<ResultRow>,
    },
    /// The metrics registry rendering.
    Metrics {
        /// `MetricsRegistry::render_json` output, verbatim.
        body: String,
    },
    /// Drain acknowledged.
    Draining {
        /// Jobs still queued or running.
        pending: u64,
    },
    /// Shutdown acknowledged; the daemon exits after this line.
    ShuttingDown,
    /// Structured failure (parse error, unknown id, oversized line, …).
    Error {
        /// Human-readable diagnostic.
        message: String,
    },
}

impl Response {
    /// One wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Pong => "{\"resp\":\"pong\"}".to_string(),
            Response::Accepted { id } => format!("{{\"resp\":\"accepted\",\"id\":{id}}}"),
            Response::Rejected { reason } => format!(
                "{{\"resp\":\"rejected\",\"reason\":\"{}\"}}",
                json_escape(reason)
            ),
            Response::Status(s) => format!(
                "{{\"resp\":\"status\",\"queued_interactive\":{},\"queued_bulk\":{},\
                 \"running\":{},\"done\":{},\"capacity\":{},\"draining\":{}}}",
                s.queued_interactive, s.queued_bulk, s.running, s.done, s.capacity, s.draining
            ),
            Response::Job(j) => {
                let verdict = match &j.verdict {
                    Some(v) => v.render(),
                    None => "null".to_string(),
                };
                let post_mortem = match &j.post_mortem {
                    Some(pm) => format!("\"{}\"", json_escape(pm)),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"resp\":\"job\",\"id\":{},\"name\":\"{}\",\"priority\":\"{}\",\
                     \"phase\":\"{}\",\"verdict\":{},\"post_mortem\":{}}}",
                    j.id,
                    json_escape(&j.name),
                    j.priority.label(),
                    j.phase.label(),
                    verdict,
                    post_mortem
                )
            }
            Response::Event(e) => format!("{{\"resp\":\"event\",{}}}", e.render()),
            Response::Done { id, verdict } => format!(
                "{{\"resp\":\"done\",\"id\":{id},\"verdict\":{}}}",
                verdict.render()
            ),
            Response::Results { jobs } => {
                let rows: Vec<String> = jobs
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"id\":{},\"name\":\"{}\",\"verdict\":{}}}",
                            r.id,
                            json_escape(&r.name),
                            r.verdict.render()
                        )
                    })
                    .collect();
                format!("{{\"resp\":\"results\",\"jobs\":[{}]}}", rows.join(","))
            }
            Response::Metrics { body } => {
                format!(
                    "{{\"resp\":\"metrics\",\"body\":\"{}\"}}",
                    json_escape(body)
                )
            }
            Response::Draining { pending } => {
                format!("{{\"resp\":\"draining\",\"pending\":{pending}}}")
            }
            Response::ShuttingDown => "{\"resp\":\"shutting_down\"}".to_string(),
            Response::Error { message } => format!(
                "{{\"resp\":\"error\",\"message\":\"{}\"}}",
                json_escape(message)
            ),
        }
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = parse_json(line)?;
        if v.as_object().is_none() {
            return Err("response must be a JSON object".to_string());
        }
        let verb = str_field(&v, "resp")?;
        match verb.as_str() {
            "pong" => {
                check_keys(&v, &["resp"])?;
                Ok(Response::Pong)
            }
            "accepted" => {
                check_keys(&v, &["resp", "id"])?;
                Ok(Response::Accepted {
                    id: u64_field(&v, "id")?,
                })
            }
            "rejected" => {
                check_keys(&v, &["resp", "reason"])?;
                Ok(Response::Rejected {
                    reason: str_field(&v, "reason")?,
                })
            }
            "status" => {
                check_keys(
                    &v,
                    &[
                        "resp",
                        "queued_interactive",
                        "queued_bulk",
                        "running",
                        "done",
                        "capacity",
                        "draining",
                    ],
                )?;
                Ok(Response::Status(QueueStatus {
                    queued_interactive: u64_field(&v, "queued_interactive")?,
                    queued_bulk: u64_field(&v, "queued_bulk")?,
                    running: u64_field(&v, "running")?,
                    done: u64_field(&v, "done")?,
                    capacity: u64_field(&v, "capacity")?,
                    draining: bool_field(&v, "draining")?,
                }))
            }
            "job" => {
                check_keys(
                    &v,
                    &[
                        "resp",
                        "id",
                        "name",
                        "priority",
                        "phase",
                        "verdict",
                        "post_mortem",
                    ],
                )?;
                let verdict = match v.get("verdict") {
                    None | Some(JsonValue::Null) => None,
                    Some(val) => Some(VerdictSummary::parse(val)?),
                };
                let post_mortem = match v.get("post_mortem") {
                    None | Some(JsonValue::Null) => None,
                    Some(val) => Some(
                        val.as_str()
                            .ok_or("`post_mortem` must be a string or null")?
                            .to_string(),
                    ),
                };
                Ok(Response::Job(JobStatus {
                    id: u64_field(&v, "id")?,
                    name: str_field(&v, "name")?,
                    priority: Priority::parse(&str_field(&v, "priority")?)?,
                    phase: JobPhase::parse(&str_field(&v, "phase")?)?,
                    verdict,
                    post_mortem,
                }))
            }
            "event" => Ok(Response::Event(WireEvent::parse(&v)?)),
            "done" => {
                check_keys(&v, &["resp", "id", "verdict"])?;
                Ok(Response::Done {
                    id: u64_field(&v, "id")?,
                    verdict: VerdictSummary::parse(v.get("verdict").ok_or("missing `verdict`")?)?,
                })
            }
            "results" => {
                check_keys(&v, &["resp", "jobs"])?;
                let rows = v
                    .get("jobs")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing `jobs` array")?;
                let mut jobs = Vec::with_capacity(rows.len());
                for row in rows {
                    check_keys(row, &["id", "name", "verdict"])?;
                    jobs.push(ResultRow {
                        id: u64_field(row, "id")?,
                        name: str_field(row, "name")?,
                        verdict: VerdictSummary::parse(
                            row.get("verdict").ok_or("missing `verdict`")?,
                        )?,
                    });
                }
                Ok(Response::Results { jobs })
            }
            "metrics" => {
                check_keys(&v, &["resp", "body"])?;
                Ok(Response::Metrics {
                    body: str_field(&v, "body")?,
                })
            }
            "draining" => {
                check_keys(&v, &["resp", "pending"])?;
                Ok(Response::Draining {
                    pending: u64_field(&v, "pending")?,
                })
            }
            "shutting_down" => {
                check_keys(&v, &["resp"])?;
                Ok(Response::ShuttingDown)
            }
            "error" => {
                check_keys(&v, &["resp", "message"])?;
                Ok(Response::Error {
                    message: str_field(&v, "message")?,
                })
            }
            other => Err(format!("unknown response verb `{other}`")),
        }
    }
}

/// Renders a [`JobSpec`]'s fields (no surrounding braces — shared
/// between the `submit` request and the journal's `job` record).
pub fn render_jobspec_fields(job: &JobSpec) -> String {
    let shared: Vec<String> = job
        .shared
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!(
        "\"name\":\"{}\",\"priority\":\"{}\",\"s\":\"{}\",\"t\":\"{}\",\"poc\":\"{}\",\
         \"shared\":[{}]",
        json_escape(&job.name),
        job.priority.label(),
        json_escape(&job.s_text),
        json_escape(&job.t_text),
        json_escape(&job.poc_hex),
        shared.join(",")
    )
}

/// Parses a [`JobSpec`] object (the `submit` payload and the journal's
/// `job` record share this, modulo the journal's extra bookkeeping
/// keys, which the journal strips first).
pub fn parse_jobspec(v: &JsonValue) -> Result<JobSpec, String> {
    check_keys(v, &["name", "priority", "s", "t", "poc", "shared"])?;
    let shared_values = v
        .get("shared")
        .and_then(JsonValue::as_array)
        .ok_or("missing `shared` array")?;
    let mut shared = Vec::with_capacity(shared_values.len());
    for s in shared_values {
        shared.push(
            s.as_str()
                .ok_or("`shared` entries must be strings")?
                .to_string(),
        );
    }
    let spec = JobSpec {
        name: str_field(v, "name")?,
        priority: Priority::parse(&str_field(v, "priority")?)?,
        s_text: str_field(v, "s")?,
        t_text: str_field(v, "t")?,
        poc_hex: str_field(v, "poc")?,
        shared,
    };
    from_hex(&spec.poc_hex)?;
    Ok(spec)
}

/// Lowercase hex of `bytes`.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes lowercase/uppercase hex.
pub fn from_hex(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("odd-length hex string".to_string());
    }
    let digit = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            other => Err(format!("invalid hex byte 0x{other:02x}")),
        }
    };
    let bytes = hex.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push(digit(pair[0])? * 16 + digit(pair[1])?);
    }
    Ok(out)
}

fn check_keys(v: &JsonValue, allowed: &[&str]) -> Result<(), String> {
    for (k, _) in v.as_object().unwrap_or(&[]) {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown key `{k}`"));
        }
    }
    Ok(())
}

fn check_keys_plus(v: &JsonValue, base: &[&str], extra: &[&str]) -> Result<(), String> {
    for (k, _) in v.as_object().unwrap_or(&[]) {
        if !base.contains(&k.as_str()) && !extra.contains(&k.as_str()) {
            return Err(format!("unknown key `{k}`"));
        }
    }
    Ok(())
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(ToString::to_string)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing bool `{key}`"))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing non-negative integer `{key}`"))
}

fn u32_field(v: &JsonValue, key: &str) -> Result<u32, String> {
    let n = u64_field(v, key)?;
    u32::try_from(n).map_err(|_| format!("`{key}` out of range"))
}

fn opt_u64_field(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(val) => val
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            name: "idx01 CVE \"quoted\"".to_string(),
            priority: Priority::Interactive,
            s_text: "func main() {\nentry:\n halt 0\n}\n".to_string(),
            t_text: "func main() {\nentry:\n halt 1\n}\n".to_string(),
            poc_hex: "4142".to_string(),
            shared: vec!["shared".to_string(), "other".to_string()],
        }
    }

    fn summary() -> VerdictSummary {
        VerdictSummary {
            verdict: "Type-II".to_string(),
            poc_generated: true,
            verified: true,
            attempts: 2,
            quarantined: false,
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Submit { job: spec() },
            Request::Status { id: None },
            Request::Status { id: Some(7) },
            Request::Watch { id: 3 },
            Request::Results,
            Request::Metrics,
            Request::Drain,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.render();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Pong,
            Response::Accepted { id: 9 },
            Response::Rejected {
                reason: "queue full (capacity 2)".to_string(),
            },
            Response::Status(QueueStatus {
                queued_interactive: 1,
                queued_bulk: 2,
                running: 3,
                done: 4,
                capacity: 64,
                draining: true,
            }),
            Response::Job(JobStatus {
                id: 5,
                name: "job \\ with escapes\n".to_string(),
                priority: Priority::Bulk,
                phase: JobPhase::Done,
                verdict: Some(summary()),
                post_mortem: Some("event: deadline\n  detail".to_string()),
            }),
            Response::Job(JobStatus {
                id: 6,
                name: "pending".to_string(),
                priority: Priority::Interactive,
                phase: JobPhase::Queued,
                verdict: None,
                post_mortem: None,
            }),
            Response::Event(WireEvent {
                job: 1,
                worker: 0,
                ts_us: 1234,
                kind: WireEventKind::Started {
                    name: "x".to_string(),
                },
            }),
            Response::Event(WireEvent {
                job: 1,
                worker: 0,
                ts_us: 1235,
                kind: WireEventKind::Phase {
                    phase: "symex".to_string(),
                    micros: 55,
                },
            }),
            Response::Event(WireEvent {
                job: 1,
                worker: 1,
                ts_us: 1,
                kind: WireEventKind::CacheHit { key: u64::MAX },
            }),
            Response::Event(WireEvent {
                job: 1,
                worker: 1,
                ts_us: 2,
                kind: WireEventKind::Finished {
                    outcome: "Type-III".to_string(),
                    micros: 99,
                },
            }),
            Response::Done {
                id: 1,
                verdict: summary(),
            },
            Response::Results {
                jobs: vec![
                    ResultRow {
                        id: 1,
                        name: "a".to_string(),
                        verdict: summary(),
                    },
                    ResultRow {
                        id: 2,
                        name: "b".to_string(),
                        verdict: VerdictSummary {
                            verdict: "Failure".to_string(),
                            poc_generated: false,
                            verified: false,
                            attempts: 1,
                            quarantined: true,
                        },
                    },
                ],
            },
            Response::Results { jobs: vec![] },
            Response::Metrics {
                body: "{\"metrics\":[{\"name\":\"x\",\"value\":1}]}".to_string(),
            },
            Response::Draining { pending: 12 },
            Response::ShuttingDown,
            Response::Error {
                message: "unknown request verb `bogus`".to_string(),
            },
        ];
        for r in resps {
            let line = r.render();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Response::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        for bad in [
            "",
            "not json",
            "42",
            "[]",
            "{\"req\":\"bogus\"}",
            "{\"req\":\"ping\",\"extra\":1}",
            "{\"req\":\"watch\"}",
            "{\"req\":\"watch\",\"id\":-1}",
            "{\"req\":\"submit\"}",
            "{\"req\":\"submit\",\"job\":{\"name\":\"x\"}}",
            "{\"req\":\"submit\",\"job\":{\"name\":\"x\",\"priority\":\"urgent\",\"s\":\"\",\
             \"t\":\"\",\"poc\":\"\",\"shared\":[]}}",
            "{\"req\":\"submit\",\"job\":{\"name\":\"x\",\"priority\":\"bulk\",\"s\":\"\",\
             \"t\":\"\",\"poc\":\"zz\",\"shared\":[]}}",
        ] {
            assert!(Request::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn hex_round_trips() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x41]), "00ff41");
        assert_eq!(from_hex("00ff41").unwrap(), vec![0x00, 0xff, 0x41]);
        assert_eq!(from_hex("00FF41").unwrap(), vec![0x00, 0xff, 0x41]);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert!(from_hex("a").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn verdict_fields_match_the_golden_row_shape() {
        // One row of tests/golden/batch_verdicts.json is exactly
        // `{"name":…,` + render_fields() + `}`; pin the field order.
        assert_eq!(
            summary().render_fields(),
            "\"verdict\":\"Type-II\",\"poc_generated\":true,\"verified\":true,\
             \"attempts\":2,\"quarantined\":false"
        );
    }
}
