//! The client side of the wire protocol, shared by the `octopocs
//! submit|status|watch|results|drain` subcommands.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use crate::proto::{Request, Response};

/// Where the daemon listens, from the client's point of view.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A Unix socket path.
    Unix(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

enum Stream {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
    Tcp(TcpStream),
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

/// A connected client. One request/response (or request/stream)
/// exchange at a time.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, String> {
        let (reader, writer) = match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path)
                    .map_err(|e| format!("cannot connect to {}: {e}", path.display()))?;
                let clone = stream
                    .try_clone()
                    .map_err(|e| format!("cannot clone stream: {e}"))?;
                (Stream::Unix(clone), Stream::Unix(stream))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(path) => {
                return Err(format!(
                    "unix sockets unsupported on this platform ({})",
                    path.display()
                ))
            }
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                let clone = stream
                    .try_clone()
                    .map_err(|e| format!("cannot clone stream: {e}"))?;
                (Stream::Tcp(clone), Stream::Tcp(stream))
            }
        };
        Ok(Client {
            reader: BufReader::new(reader),
            writer,
        })
    }

    /// Sends one request line.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        let mut line = request.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    /// Reads one response line. `Ok(None)` means the daemon closed the
    /// connection.
    pub fn recv(&mut self) -> Result<Option<Response>, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            return Ok(None);
        }
        Response::parse(line.trim_end_matches('\n')).map(Some)
    }

    /// One request, one response.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.send(request)?;
        self.recv()?
            .ok_or_else(|| "daemon closed the connection".to_string())
    }
}
