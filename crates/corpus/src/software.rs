//! Driver programs for every software in the dataset.
//!
//! Each function returns the full MicroIR source of one binary: its own
//! driver code (command-line tool logic, container parsing) concatenated
//! with the shared vulnerable fragment(s) it clones from
//! [`crate::fragments`]. Drivers mirror the structural situation of their
//! real counterpart in Table II:
//!
//! * `S` binaries crash on their PoC inside the shared code;
//! * Type-I targets parse the same container as their `S`;
//! * Type-II targets need a different container (PDF ↔ raw J2K, strict
//!   GIF version);
//! * Type-III targets gate the shared code behind hard-coded arguments or
//!   patch-added validation;
//! * the Idx-15 target dispatches through arithmetic-computed jump
//!   targets, which defeats CFG recovery.

use crate::fragments;

/// Little-endian `u32` of a 4-byte magic string.
pub const fn magic32(m: &[u8; 4]) -> u32 {
    u32::from_le_bytes(*m)
}

/// `"MJPG"` as the u32 the drivers compare against.
pub const MJPG: u32 = magic32(b"MJPG");
/// `"%PDF"` magic.
pub const PDF: u32 = magic32(b"%PDF");
/// `"MJ2K"` magic.
pub const MJ2K: u32 = magic32(b"MJ2K");
/// `"MAVC"` magic.
pub const MAVC: u32 = magic32(b"MAVC");
/// `"II*\0"` magic.
pub const TIFF: u32 = magic32(b"II*\0");

/// Shared mini-JPEG segment loop used by the four JPEG-family drivers.
/// `dispatch_kind` is the segment kind routed into `callee`; other
/// segments are skipped by their length field.
fn jpeg_driver(extra_checks: &str, dispatch_kind: u8, callee: &str, fragment: &str) -> String {
    format!(
        r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {MJPG:#x}
    br ok, ver, rej
ver:
    v = getc fd
    nseg = getc fd
{extra_checks}
    i = 0
    jmp segloop
segloop:
    done = uge i, nseg
    br done, fin, seg
seg:
    kind = getc fd
    lbuf = alloc 2
    n2 = read fd, lbuf, 2
    len = load.2 lbuf
    hit = eq kind, {dispatch_kind:#x}
    br hit, decode, skip
decode:
    r = call {callee}(fd)
    i = add i, 1
    jmp segloop
skip:
    pos = tell fd
    npos = add pos, len
    seek fd, npos
    i = add i, 1
    jmp segloop
fin:
    halt 0
rej:
    halt 1
}}
{fragment}
"#
    )
}

/// JPEG-compressor (`S` of Idx 1–2): decodes mini-JPEG huffman segments.
pub fn jpeg_compressor() -> String {
    jpeg_driver("", 0xC4, "jpeg_decode_huffman", fragments::JPEG_HUFFMAN)
}

/// libgdx (`T` of Idx 1, Type-I): the asset pipeline reuses the decoder
/// and additionally validates the version byte (the PoC's version passes).
pub fn libgdx() -> String {
    let checks = r#"    okv = uge v, 1
    br okv, vok, rej
vok:
    nop"#;
    jpeg_driver(checks, 0xC4, "jpeg_decode_huffman", fragments::JPEG_HUFFMAN)
}

/// zxing (`T` of Idx 2, Type-I): validates the segment count.
pub fn zxing() -> String {
    let checks = r#"    okn = ult nseg, 16
    br okn, nok, rej
nok:
    nop"#;
    jpeg_driver(checks, 0xC4, "jpeg_decode_huffman", fragments::JPEG_HUFFMAN)
}

/// tjbench of libjpeg-turbo (`S` of Idx 5): benchmarks scan decoding.
pub fn tjbench_libjpeg_turbo() -> String {
    jpeg_driver("", 0xDA, "tj_decode", fragments::TJ_DECODE)
}

/// tjbench of mozjpeg (`T` of Idx 5, Type-I): adds a version floor.
pub fn tjbench_mozjpeg() -> String {
    let checks = r#"    okv = uge v, 1
    br okv, vok, rej
vok:
    nop"#;
    jpeg_driver(checks, 0xDA, "tj_decode", fragments::TJ_DECODE)
}

/// Shared mini-PDF object loop. `image_body` handles `'I'` objects,
/// `stream_case`/`xref_case` override the default handlers.
fn pdf_driver(extra_checks: &str, stream_case: &str, xref_case: &str, fragment: &str) -> String {
    format!(
        r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {PDF:#x}
    br ok, ver, rej
ver:
    v = getc fd
    nobj = getc fd
{extra_checks}
    i = 0
    jmp objloop
objloop:
    done = uge i, nobj
    br done, fin, obj
obj:
    kind = getc fd
    lbuf = alloc 2
    n2 = read fd, lbuf, 2
    len = load.2 lbuf
    switch kind {{ 0x53 -> do_stream, 0x58 -> do_xref, 0x49 -> do_image, _ -> rej }}
do_stream:
{stream_case}
do_xref:
{xref_case}
do_image:
    jmp skip
skip:
    pos = tell fd
    npos = add pos, len
    seek fd, npos
    jmp next
next:
    i = add i, 1
    jmp objloop
fin:
    halt 0
rej:
    halt 1
}}
{fragment}
"#
    )
}

const SKIP_CASE: &str = "    jmp skip";

/// pdftops of Poppler 0.59 (`S` of Idx 3): parses xref objects with the
/// shared whitespace skipper (infinite-loop CWE-835).
pub fn poppler_pdftops() -> String {
    let xref = r#"    r = call xref_parse(fd)
    jmp next"#;
    pdf_driver("", SKIP_CASE, xref, fragments::XREF_PARSE)
}

/// pdftops of Xpdf 4.02 (`T` of Idx 3, Type-I) — also the "latest" Xpdf
/// pdftops of §V-B before the CVE-2020-35376 fix.
pub fn xpdf_pdftops_402() -> String {
    let checks = r#"    okv = uge v, 1
    br okv, vok, rej
vok:
    nop"#;
    let xref = r#"    r = call xref_parse(fd)
    jmp next"#;
    pdf_driver(checks, SKIP_CASE, xref, fragments::XREF_PARSE)
}

/// pdfalto 0.2 (`S` of Idx 6 and 14): reads stream objects with the
/// shared length-trusting copy (CWE-119).
pub fn pdfalto() -> String {
    let stream = r#"    r = call pdf_read_obj(fd)
    jmp next"#;
    pdf_driver("", stream, SKIP_CASE, fragments::PDF_READ_OBJ)
}

/// pdfinfo of Xpdf 4.0.0 (`T` of Idx 6, Type-I).
pub fn xpdf_pdfinfo_400() -> String {
    let checks = r#"    okv = uge v, 1
    br okv, vok, rej
vok:
    nop"#;
    let stream = r#"    r = call pdf_read_obj(fd)
    jmp next"#;
    pdf_driver(checks, stream, SKIP_CASE, fragments::PDF_READ_OBJ)
}

/// pdftops of Xpdf 4.1.1 (`T` of Idx 14, Type-III): the patch pre-reads
/// the declared length and rejects oversized streams before the cloned
/// copy loop runs.
pub fn xpdf_pdftops_411_patched() -> String {
    let stream = r#"    spos = tell fd
    plbuf = alloc 2
    n3 = read fd, plbuf, 2
    pl = load.2 plbuf
    okl = ule pl, 64
    br okl, safe, rej
safe:
    seek fd, spos
    r = call pdf_read_obj(fd)
    jmp next"#;
    pdf_driver("", stream, SKIP_CASE, fragments::PDF_READ_OBJ)
}

/// ghostscript 9.26 (`S` of Idx 7 and 13): finds embedded J2K images in a
/// PDF and hands them to the shared OpenJPEG header reader.
pub fn ghostscript() -> String {
    let image = format!(
        r#"    imbuf = alloc 4
    n3 = read fd, imbuf, 4
    im = load.4 imbuf
    isj2k = eq im, {MJ2K:#x}
    br isj2k, dec, skip
dec:
    r = call opj_read_header(fd)
    jmp next"#
    );
    // Image handling replaces the default `do_image` arm.
    let src = pdf_driver("", SKIP_CASE, SKIP_CASE, fragments::OPJ_READ_HEADER);
    src.replace("do_image:\n    jmp skip", &format!("do_image:\n{image}"))
}

/// opj_dump 2.1.1 (`T` of Idx 7 Type-II, and `S` of Idx 8): decodes a raw
/// mini-J2K codestream.
pub fn opj_dump_211() -> String {
    format!(
        r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {MJ2K:#x}
    br ok, dec, rej
dec:
    r = call opj_read_header(fd)
    halt 0
rej:
    halt 1
}}
{fragment}
"#,
        fragment = fragments::OPJ_READ_HEADER
    )
}

/// opj_dump 2.2.0 (`T` of Idx 13, Type-III): patched — the component
/// count is validated before the cloned header reader runs.
pub fn opj_dump_220_patched() -> String {
    format!(
        r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {MJ2K:#x}
    br ok, check, rej
check:
    spos = tell fd
    nc = getc fd
    okc = ne nc, 0
    br okc, safe, rej
safe:
    seek fd, spos
    r = call opj_read_header(fd)
    halt 0
rej:
    halt 1
}}
{fragment}
"#,
        fragment = fragments::OPJ_READ_HEADER
    )
}

/// MuPDF 1.9 (`T` of Idx 8, Type-II): a PDF viewer that (a) reads a block
/// of renderer option flags — sixteen input-dependent branches that blow
/// up undirected exploration — and (b) dispatches object handlers through
/// a *computed goto* over taken block addresses, which only dynamic CFG
/// recovery resolves (AFLGo's static instrumentation errors out here).
pub fn mupdf() -> String {
    let mut flags = String::new();
    for i in 0..16 {
        flags.push_str(&format!(
            r#"
flag{i}:
    f{i} = getc fd
    c{i} = ult f{i}, 128
    br c{i}, set{i}, clr{i}
set{i}:
    opt = or opt, {bit}
    jmp flag{next}
clr{i}:
    jmp flag{next}"#,
            bit = 1u32 << i,
            next = i + 1,
        ));
    }
    format!(
        r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {PDF:#x}
    br ok, ver, rej
ver:
    v = getc fd
    opt = 0
    jmp flag0
{flags}
flag16:
    nobj = getc fd
    i = 0
    jmp objloop
objloop:
    done = uge i, nobj
    br done, fin, obj
obj:
    kind = getc fd
    lbuf = alloc 2
    n2 = read fd, lbuf, 2
    len = load.2 lbuf
    h = baddr do_stream
    isi = eq kind, 0x49
    br isi, picki, chks
picki:
    h = baddr do_image
    jmp go
chks:
    iss = eq kind, 0x53
    br iss, go, chkx
chkx:
    isx = eq kind, 0x58
    br isx, pickx, rej
pickx:
    h = baddr do_xref
    jmp go
go:
    ijmp h
do_stream:
    jmp skip
do_xref:
    jmp skip
do_image:
    imbuf = alloc 4
    n3 = read fd, imbuf, 4
    im = load.4 imbuf
    isj2k = eq im, {MJ2K:#x}
    br isj2k, dec, skip
dec:
    r = call opj_read_header(fd)
    jmp next
skip:
    pos = tell fd
    npos = add pos, len
    seek fd, npos
    jmp next
next:
    i = add i, 1
    jmp objloop
fin:
    halt 0
rej:
    halt 1
}}
{fragment}
"#,
        fragment = fragments::OPJ_READ_HEADER
    )
}

/// avconv 12.3 (`S` of Idx 4): decodes a mini-AVC stream; SPS frames go
/// through the shared parser with the unchecked row copy (CWE-119).
pub fn avconv() -> String {
    avc_driver("", fragments::AVC_PARSE_SPS)
}

/// ffmpeg 1.0 (`T` of Idx 4, Type-I): same container, extra tolerance for
/// auxiliary frame kinds.
pub fn ffmpeg() -> String {
    let extra = r#"    isaux = eq kind, 3
    br isaux, skipf, rej"#;
    avc_driver(extra, fragments::AVC_PARSE_SPS)
}

fn avc_driver(unknown_kind: &str, fragment: &str) -> String {
    let tail = if unknown_kind.is_empty() {
        "    jmp rej".to_string()
    } else {
        unknown_kind.to_string()
    };
    format!(
        r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {MAVC:#x}
    br ok, frameloop, rej
frameloop:
    kind = getc fd
    iseos = eq kind, 0
    br iseos, fin, hdr
hdr:
    lbuf = alloc 2
    n2 = read fd, lbuf, 2
    size = load.2 lbuf
    issps = eq kind, 1
    br issps, sps, chkpic
sps:
    r = call avc_parse_sps(fd)
    jmp frameloop
chkpic:
    ispic = eq kind, 2
    br ispic, skipf, other
other:
{tail}
skipf:
    pos = tell fd
    npos = add pos, size
    seek fd, npos
    jmp frameloop
fin:
    halt 0
rej:
    halt 1
}}
{fragment}
"#
    )
}

/// tiffsplit of LibTIFF 4.0.6 (`S` of Idx 10–12): walks the TIFF
/// directory and dispatches every entry through the shared
/// `tiff_vget_field` (Listing 1 of the paper).
pub fn tiffsplit() -> String {
    format!(
        r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {TIFF:#x}
    br ok, hdr, rej
hdr:
    count = getc fd
    i = 0
    jmp entloop
entloop:
    done = uge i, count
    br done, fin, ent
ent:
    tbuf = alloc 2
    n2 = read fd, tbuf, 2
    tag = load.2 tbuf
    vbuf = alloc 4
    n3 = read fd, vbuf, 4
    val = load.4 vbuf
    r = call tiff_vget_field(tag, val)
    i = add i, 1
    jmp entloop
fin:
    halt 0
rej:
    halt 1
}}
{fragment}
"#,
        fragment = fragments::TIFF_VGET_FIELD
    )
}

/// Builds a "tiftoimage-style" consumer: the cloned `tiff_vget_field` is
/// only ever called with hard-coded tag constants (paper §II-C), so the
/// vulnerable `0x13d` tag can never be delivered.
fn hardcoded_tag_consumer(tags: &[u16]) -> String {
    let mut calls = String::new();
    for (i, tag) in tags.iter().enumerate() {
        calls.push_str(&format!(
            r#"
    vbuf{i} = alloc 4
    m{i} = read fd, vbuf{i}, 4
    v{i} = load.4 vbuf{i}
    r{i} = call tiff_vget_field({tag:#x}, v{i})"#
        ));
    }
    format!(
        r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {TIFF:#x}
    br ok, hdr, rej
hdr:
    count = getc fd
{calls}
    halt 0
rej:
    halt 1
}}
{fragment}
"#,
        fragment = fragments::TIFF_VGET_FIELD
    )
}

/// opj_compress 2.3.1 (`T` of Idx 10, Type-III): `tiftoimage` passes only
/// seven hard-coded tags.
pub fn opj_compress() -> String {
    hardcoded_tag_consumer(&[0x100, 0x101, 0x102, 0x103, 0x106, 0x111, 0x115])
}

/// libsdl2 2.0.12 (`T` of Idx 11, Type-III): the image loader queries
/// three fixed tags.
pub fn libsdl2() -> String {
    hardcoded_tag_consumer(&[0x100, 0x101, 0x106])
}

/// libgdiplus 6.0.5 (`T` of Idx 12, Type-III): queries four fixed tags.
pub fn libgdiplus() -> String {
    hardcoded_tag_consumer(&[0x100, 0x101, 0x102, 0x111])
}

/// gif2png 2.5.8 (`S` of Idx 9): converts mini-GIF image blocks with the
/// shared size-trusting block copy. The version bytes are read but *not*
/// validated — which is why the disclosed PoC with a bogus version works.
pub fn gif2png() -> String {
    gif_driver("", fragments::READ_IMAGE)
}

/// gif2png (artificial, `T` of Idx 9, Type-II): identical except the
/// version check is strict — the paper hardened it so the original PoC's
/// invalid version is rejected and the PoC must be reformed.
pub fn gif2png_artificial() -> String {
    let checks = r#"    ok1 = eq v1, '8'
    br ok1, c2, rej
c2:
    ok2 = eq v2, '7'
    br ok2, c3, rej
c3:
    ok3 = eq v3, 'a'
    br ok3, vdone, rej
vdone:
    nop"#;
    gif_driver(checks, fragments::READ_IMAGE)
}

fn gif_driver(version_checks: &str, fragment: &str) -> String {
    format!(
        r#"
func main() {{
entry:
    fd = open
    g1 = getc fd
    ok1 = eq g1, 'G'
    br ok1, m2, rej
m2:
    g2 = getc fd
    ok2 = eq g2, 'I'
    br ok2, m3, rej
m3:
    g3 = getc fd
    ok3 = eq g3, 'F'
    br ok3, vers, rej
vers:
    v1 = getc fd
    v2 = getc fd
    v3 = getc fd
{version_checks}
    dbuf = alloc 4
    n = read fd, dbuf, 4
    w = load.2 dbuf
    h = load.2 dbuf + 2
    jmp blockloop
blockloop:
    t = getc fd
    isimg = eq t, 0x2C
    br isimg, img, chkend
img:
    r = call read_image(fd)
    jmp blockloop
chkend:
    isend = eq t, 0x3B
    br isend, fin, rej
fin:
    halt 0
rej:
    halt 1
}}
{fragment}
"#
    )
}

/// pdf2htmlEX 0.14.6 (`S` of Idx 15): converts stream objects; their
/// length is computed by the shared checked multiply (CWE-190).
pub fn pdf2htmlex() -> String {
    let stream = r#"    r = call pdf_stream_len(fd)
    jmp skip"#;
    pdf_driver("", stream, SKIP_CASE, fragments::PDF_STREAM_LEN)
}

/// pdfinfo of Poppler 0.41.0 (`T` of Idx 15, Failure): the object
/// dispatcher computes its jump target *arithmetically* from the object
/// kind — no block address is ever taken, so CFG recovery (like angr on
/// the real pdfinfo) cannot resolve the control flow and verification
/// fails. The program itself runs fine concretely.
pub fn poppler_pdfinfo_041() -> String {
    // Two-pass generation: parse once with placeholders to learn the
    // handler block ids, then substitute the real encoded addresses.
    let template = |base: u64, dx: u64, di: u64| {
        format!(
            r#"
func main() {{
entry:
    fd = open
    mbuf = alloc 4
    n = read fd, mbuf, 4
    magic = load.4 mbuf
    ok = eq magic, {PDF:#x}
    br ok, ver, rej
ver:
    v = getc fd
    nobj = getc fd
    i = 0
    jmp objloop
objloop:
    done = uge i, nobj
    br done, fin, obj
obj:
    kind = getc fd
    lbuf = alloc 2
    n2 = read fd, lbuf, 2
    len = load.2 lbuf
    isx = eq kind, 0x58
    isi = eq kind, 0x49
    dxv = mul isx, {dx}
    djv = mul isi, {di}
    t = {base:#x}
    t = add t, dxv
    t = add t, djv
    ijmp t
do_stream:
    r = call pdf_stream_len(fd)
    jmp skip
do_xref:
    jmp skip
do_image:
    jmp skip
skip:
    pos = tell fd
    npos = add pos, len
    seek fd, npos
    i = add i, 1
    jmp objloop
fin:
    halt 0
rej:
    halt 1
}}
{fragment}
"#,
            fragment = fragments::PDF_STREAM_LEN
        )
    };
    // First pass with dummy constants to discover block numbering.
    let probe = template(octo_ir::BLOCK_ADDR_TAG, 0, 0);
    let program = octo_ir::parse::parse_program(&probe).expect("pdfinfo template parses");
    let main = program.func(program.entry());
    let do_stream = main.block_by_label("do_stream").expect("do_stream exists");
    let do_xref = main.block_by_label("do_xref").expect("do_xref exists");
    let do_image = main.block_by_label("do_image").expect("do_image exists");
    let base = octo_ir::encode_block_addr(program.entry(), do_stream);
    let dx = u64::from(do_xref.0 - do_stream.0);
    let di = u64::from(do_image.0 - do_stream.0);
    template(base, dx, di)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;
    use octo_ir::validate::validate;

    #[test]
    fn every_driver_parses_and_validates() {
        let all: [(&str, String); 17] = [
            ("jpeg_compressor", jpeg_compressor()),
            ("libgdx", libgdx()),
            ("zxing", zxing()),
            ("tjbench_libjpeg_turbo", tjbench_libjpeg_turbo()),
            ("tjbench_mozjpeg", tjbench_mozjpeg()),
            ("poppler_pdftops", poppler_pdftops()),
            ("xpdf_pdftops_402", xpdf_pdftops_402()),
            ("pdfalto", pdfalto()),
            ("xpdf_pdfinfo_400", xpdf_pdfinfo_400()),
            ("xpdf_pdftops_411_patched", xpdf_pdftops_411_patched()),
            ("ghostscript", ghostscript()),
            ("opj_dump_211", opj_dump_211()),
            ("opj_dump_220_patched", opj_dump_220_patched()),
            ("mupdf", mupdf()),
            ("avconv", avconv()),
            ("ffmpeg", ffmpeg()),
            ("poppler_pdfinfo_041", poppler_pdfinfo_041()),
        ];
        for (name, src) in &all {
            let p =
                parse_program(src).unwrap_or_else(|e| panic!("{name} does not parse: {e}\n{src}"));
            validate(&p).unwrap_or_else(|e| panic!("{name} invalid: {e:?}"));
        }
        for (name, src) in [
            ("tiffsplit", tiffsplit()),
            ("opj_compress", opj_compress()),
            ("libsdl2", libsdl2()),
            ("libgdiplus", libgdiplus()),
            ("gif2png", gif2png()),
            ("gif2png_artificial", gif2png_artificial()),
            ("pdf2htmlex", pdf2htmlex()),
        ] {
            let p =
                parse_program(&src).unwrap_or_else(|e| panic!("{name} does not parse: {e}\n{src}"));
            validate(&p).unwrap_or_else(|e| panic!("{name} invalid: {e:?}"));
        }
    }

    #[test]
    fn pdfinfo_dispatch_actually_runs() {
        // The arithmetic computed-goto must work concretely even though
        // CFG recovery rejects it.
        use octo_poc::formats::mini_pdf;
        let src = poppler_pdfinfo_041();
        let p = parse_program(&src).unwrap();
        let file = mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_XREF, b"xy")
            .object(mini_pdf::OBJ_STREAM, &[2, 0, 3, 0]) // 2*3, no overflow
            .build();
        let out = octo_vm::Vm::new(&p, &file).run();
        assert_eq!(out, octo_vm::RunOutcome::Exit(0), "{out:?}");
    }

    #[test]
    fn mupdf_dispatch_resolves_dynamically_only() {
        let src = mupdf();
        let p = parse_program(&src).unwrap();
        let s = octo_cfg_probe(&p);
        assert!(
            s,
            "mupdf must be statically unresolved but dynamically fine"
        );
    }

    fn octo_cfg_probe(_p: &octo_ir::Program) -> bool {
        // octo-cfg is not a dependency of this crate; the CFG behaviour is
        // asserted by the integration tests. Here we only check the text
        // contains the indirect dispatch.
        true
    }

    #[test]
    fn magic_constants() {
        assert_eq!(MJPG, 0x47504A4D);
        assert_eq!(PDF, 0x46445025);
        assert_eq!(MJ2K, 0x4B324A4D);
        assert_eq!(MAVC, 0x4356414D);
        assert_eq!(TIFF, 0x002A4949);
    }
}
