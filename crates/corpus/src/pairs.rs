//! The 15 software pairs of Table II, with PoCs and expected outcomes.

use octo_ir::parse::parse_program;
use octo_ir::Program;
use octo_poc::formats::{mini_avc, mini_gif, mini_j2k, mini_jpeg, mini_pdf, mini_tiff};
use octo_poc::PocFile;

use crate::software;

/// The expected Table II classification of a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Triggered; the original guiding input already fits `T`.
    TypeI,
    /// Triggered after reforming the guiding input.
    TypeII,
    /// Verified not triggerable.
    TypeIII,
    /// Verification fails (tooling limitation).
    Failure,
}

impl Expected {
    /// The label used in Table II.
    pub fn label(self) -> &'static str {
        match self {
            Expected::TypeI => "Type-I",
            Expected::TypeII => "Type-II",
            Expected::TypeIII => "Type-III",
            Expected::Failure => "Failure",
        }
    }

    /// Whether the paper's `poc'` column is `O` for this row.
    pub fn poc_generated(self) -> bool {
        matches!(self, Expected::TypeI | Expected::TypeII)
    }

    /// Whether the paper's Verification column is `O`.
    pub fn verified(self) -> bool {
        !matches!(self, Expected::Failure)
    }
}

/// One evaluated software pair (a Table II row).
#[derive(Debug, Clone)]
pub struct SoftwarePair {
    /// Row index (1–15).
    pub idx: u32,
    /// Original software name.
    pub s_name: &'static str,
    /// Original software version.
    pub s_version: &'static str,
    /// Target software name.
    pub t_name: &'static str,
    /// Target software version.
    pub t_version: &'static str,
    /// Vulnerability identifier.
    pub vuln_id: &'static str,
    /// CWE class label (Table II "Type" column).
    pub cwe: &'static str,
    /// The original vulnerable software.
    pub s: Program,
    /// The propagated software.
    pub t: Program,
    /// Shared (cloned) function names — `ℓ`.
    pub shared: Vec<String>,
    /// The original PoC.
    pub poc: PocFile,
    /// Expected classification.
    pub expected: Expected,
    /// Whether `S` enters `ep` more than once for this PoC (the rows where
    /// Table III's context-free baseline fails).
    pub multi_entry: bool,
}

impl SoftwarePair {
    /// Stable display name for reports and batch job lists, e.g.
    /// `"idx01 CVE-2017-0700 JPEG-compressor->libgdx"`.
    pub fn display_name(&self) -> String {
        format!(
            "idx{:02} {} {}->{}",
            self.idx, self.vuln_id, self.s_name, self.t_name
        )
    }
}

fn parse(name: &str, src: &str) -> Program {
    let p = parse_program(src).unwrap_or_else(|e| panic!("corpus program `{name}`: {e}"));
    octo_ir::validate::validate(&p)
        .unwrap_or_else(|e| panic!("corpus program `{name}` invalid: {e:?}"));
    p
}

/// The huffman-overflow PoC shared by Idx 1–2: a table that declares 20
/// entries against a 16-entry buffer.
fn poc_jpeg_huffman() -> PocFile {
    let mut payload = vec![20u8];
    payload.extend(std::iter::repeat_n(0x61, 17));
    PocFile::new(
        mini_jpeg::Builder::new()
            .segment(mini_jpeg::SEG_HUFF, &payload)
            .build(),
    )
}

/// The integer-overflow PoC of Idx 5: 512×512 overflows the 16-bit area.
fn poc_tj_scan() -> PocFile {
    PocFile::new(
        mini_jpeg::Builder::new()
            .segment(mini_jpeg::SEG_SCAN, &[0x00, 0x02, 0x00, 0x02])
            .build(),
    )
}

/// The infinite-loop PoC of Idx 3: the second xref entry carries the
/// malformed `0xFF` byte that pins the whitespace skipper.
fn poc_xref_loop() -> PocFile {
    PocFile::new(
        mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_XREF, &[0x01, 0x02, 0x0A])
            .object(mini_pdf::OBJ_XREF, &[0x03, 0x04, 0xFF])
            .build(),
    )
}

/// The SPS-overflow PoC of Idx 4: the second sequence-parameter frame
/// declares a 32-byte row against the 16-byte stack buffer.
fn poc_avc_sps() -> PocFile {
    let mut sps2 = vec![0x20, 0x00, 0x01, 0x00]; // w=32, h=1
    sps2.extend(std::iter::repeat_n(0x44, 16));
    PocFile::new(
        mini_avc::Builder::new()
            .frame(mini_avc::FRAME_SPS, &[0x02, 0x00, 0x01, 0x00, 0xAA, 0xBB])
            .frame(mini_avc::FRAME_SPS, &sps2)
            .build(),
    )
}

/// The stream-overflow PoC of Idx 6/14: an 80-byte payload against the
/// 64-byte buffer.
fn poc_pdf_stream_overflow() -> PocFile {
    let mut payload = vec![0x50, 0x00]; // dlen = 80
    payload.extend(std::iter::repeat_n(0x42, 64));
    PocFile::new(
        mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_STREAM, &payload)
            .build(),
    )
}

/// The malformed embedded image of Idx 7/13: zero components with the
/// sentinel tile inside a PDF container.
fn poc_pdf_embedded_j2k() -> PocFile {
    let img = mini_j2k::Builder::new()
        .components(0)
        .tile(0x5A5A, 0xA5A5)
        .build();
    PocFile::new(
        mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_IMAGE, &img)
            .build(),
    )
}

/// The raw mini-J2K PoC of Idx 8.
fn poc_raw_j2k() -> PocFile {
    PocFile::new(
        mini_j2k::Builder::new()
            .components(0)
            .tile(0x5A5A, 0xA5A5)
            .build(),
    )
}

/// The disclosed gif2png PoC of Idx 9: an *invalid* GIF version (the
/// original binary never checks it) and an oversized data block.
fn poc_gif_overflow() -> PocFile {
    // A realistic image payload: one full benign block of pixel data
    // (the disclosed PoC carried real image content), then the malformed
    // block whose declared size exceeds the decoder's buffer.
    let benign: Vec<u8> = (0..40u8).map(|i| i.wrapping_mul(7)).collect();
    let mut big = vec![0u8; 16];
    big.iter_mut().enumerate().for_each(|(i, b)| *b = i as u8);
    PocFile::new(
        mini_gif::Builder::new()
            .version(*b"99a")
            .block(&benign)
            .block_oversized(0xFF, &big)
            .build(),
    )
}

/// The vulnerable-tag PoC of Idx 10–12: one directory entry with the
/// `0x13d` tag of Listing 1.
fn poc_tiff_tag() -> PocFile {
    PocFile::new(
        mini_tiff::Builder::new()
            .entry(mini_tiff::VULN_TAG, 0xDEAD_BEEF)
            .build(),
    )
}

/// The checked-multiply overflow PoC of Idx 15: 0x300 × 0x200 exceeds the
/// 16-bit stream length.
fn poc_stream_len_overflow() -> PocFile {
    PocFile::new(
        mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_STREAM, &[0x00, 0x03, 0x00, 0x02])
            .build(),
    )
}

fn shared(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

/// Builds one Table II row.
#[allow(clippy::too_many_arguments)]
fn pair(
    idx: u32,
    (s_name, s_version, s_src): (&'static str, &'static str, String),
    (t_name, t_version, t_src): (&'static str, &'static str, String),
    vuln_id: &'static str,
    cwe: &'static str,
    shared_fns: &[&str],
    poc: PocFile,
    expected: Expected,
    multi_entry: bool,
) -> SoftwarePair {
    SoftwarePair {
        idx,
        s_name,
        s_version,
        t_name,
        t_version,
        vuln_id,
        cwe,
        s: parse(s_name, &s_src),
        t: parse(t_name, &t_src),
        shared: shared(shared_fns),
        poc,
        expected,
        multi_entry,
    }
}

/// All 15 pairs of Table II, in row order.
pub fn all_pairs() -> Vec<SoftwarePair> {
    vec![
        pair(
            1,
            ("JPEG-compressor", "N/A", software::jpeg_compressor()),
            ("libgdx", "1.9.10", software::libgdx()),
            "CVE-2017-0700",
            "No-CWE",
            &["jpeg_decode_huffman"],
            poc_jpeg_huffman(),
            Expected::TypeI,
            false,
        ),
        pair(
            2,
            ("JPEG-compressor", "N/A", software::jpeg_compressor()),
            ("zxing", "@0a32109", software::zxing()),
            "CVE-2017-0700",
            "No-CWE",
            &["jpeg_decode_huffman"],
            poc_jpeg_huffman(),
            Expected::TypeI,
            false,
        ),
        pair(
            3,
            ("pdftops (Poppler)", "0.59", software::poppler_pdftops()),
            ("pdftops (Xpdf)", "4.02", software::xpdf_pdftops_402()),
            "CVE-2017-18267",
            "CWE-835",
            &["xref_parse"],
            poc_xref_loop(),
            Expected::TypeI,
            true,
        ),
        pair(
            4,
            ("avconv", "12.3", software::avconv()),
            ("ffmpeg", "1.0", software::ffmpeg()),
            "CVE-2018-11102",
            "CWE-119",
            &["avc_parse_sps"],
            poc_avc_sps(),
            Expected::TypeI,
            true,
        ),
        pair(
            5,
            (
                "tjbench (libjpeg-turbo)",
                "2.0.1",
                software::tjbench_libjpeg_turbo(),
            ),
            (
                "tjbench (mozjpeg)",
                "@0xbbb7550",
                software::tjbench_mozjpeg(),
            ),
            "CVE-2018-20330",
            "CWE-190",
            &["tj_decode"],
            poc_tj_scan(),
            Expected::TypeI,
            false,
        ),
        pair(
            6,
            ("pdfalto", "0.2", software::pdfalto()),
            ("pdfinfo (Xpdf)", "4.0.0", software::xpdf_pdfinfo_400()),
            "CVE-2019-9878",
            "CWE-119",
            &["pdf_read_obj"],
            poc_pdf_stream_overflow(),
            Expected::TypeI,
            false,
        ),
        pair(
            7,
            ("ghostscript", "9.26", software::ghostscript()),
            ("opj_dump", "2.1.1", software::opj_dump_211()),
            "ghostscript-BZ697463",
            "No-CWE",
            &["opj_read_header"],
            poc_pdf_embedded_j2k(),
            Expected::TypeII,
            false,
        ),
        pair(
            8,
            ("opj_dump", "2.1.1", software::opj_dump_211()),
            ("MuPDF", "1.9", software::mupdf()),
            "ghostscript-BZ697463",
            "No-CWE",
            &["opj_read_header"],
            poc_raw_j2k(),
            Expected::TypeII,
            false,
        ),
        pair(
            9,
            ("gif2png", "2.5.8", software::gif2png()),
            (
                "gif2png (artificial)",
                "N/A",
                software::gif2png_artificial(),
            ),
            "CVE-2011-2896",
            "CWE-119",
            &["read_image"],
            poc_gif_overflow(),
            Expected::TypeII,
            true,
        ),
        pair(
            10,
            ("tiffsplit", "4.0.6", software::tiffsplit()),
            ("opj_compress", "2.3.1", software::opj_compress()),
            "CVE-2016-10095",
            "CWE-119",
            &["tiff_vget_field"],
            poc_tiff_tag(),
            Expected::TypeIII,
            false,
        ),
        pair(
            11,
            ("tiffsplit", "4.0.6", software::tiffsplit()),
            ("libsdl2", "2.0.12", software::libsdl2()),
            "CVE-2016-10095",
            "CWE-119",
            &["tiff_vget_field"],
            poc_tiff_tag(),
            Expected::TypeIII,
            false,
        ),
        pair(
            12,
            ("tiffsplit", "4.0.6", software::tiffsplit()),
            ("libgdiplus", "6.0.5", software::libgdiplus()),
            "CVE-2016-10095",
            "CWE-119",
            &["tiff_vget_field"],
            poc_tiff_tag(),
            Expected::TypeIII,
            false,
        ),
        pair(
            13,
            ("ghostscript", "9.26", software::ghostscript()),
            ("opj_dump", "2.2.0", software::opj_dump_220_patched()),
            "ghostscript-BZ697463",
            "No-CWE",
            &["opj_read_header"],
            poc_pdf_embedded_j2k(),
            Expected::TypeIII,
            false,
        ),
        pair(
            14,
            ("pdfalto", "0.2", software::pdfalto()),
            (
                "pdftops (Xpdf)",
                "4.1.1",
                software::xpdf_pdftops_411_patched(),
            ),
            "CVE-2019-9878",
            "CWE-119",
            &["pdf_read_obj"],
            poc_pdf_stream_overflow(),
            Expected::TypeIII,
            false,
        ),
        pair(
            15,
            ("pdf2htmlEX", "0.14.6", software::pdf2htmlex()),
            (
                "pdfinfo (Poppler)",
                "0.41.0",
                software::poppler_pdfinfo_041(),
            ),
            "CVE-2018-21009",
            "CWE-190",
            &["pdf_stream_len"],
            poc_stream_len_overflow(),
            Expected::Failure,
            false,
        ),
    ]
}

/// Looks up a pair by its Table II index.
pub fn pair_by_idx(idx: u32) -> Option<SoftwarePair> {
    all_pairs().into_iter().find(|p| p.idx == idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_vm::{RunOutcome, Vm};

    #[test]
    fn fifteen_pairs_with_expected_distribution() {
        let pairs = all_pairs();
        assert_eq!(pairs.len(), 15);
        let count = |e: Expected| pairs.iter().filter(|p| p.expected == e).count();
        // Table II: six Type-I, three Type-II, five Type-III, one Failure.
        assert_eq!(count(Expected::TypeI), 6);
        assert_eq!(count(Expected::TypeII), 3);
        assert_eq!(count(Expected::TypeIII), 5);
        assert_eq!(count(Expected::Failure), 1);
    }

    #[test]
    fn display_names_are_stable_and_unique() {
        let pairs = all_pairs();
        assert_eq!(
            pairs[0].display_name(),
            "idx01 CVE-2017-0700 JPEG-compressor->libgdx"
        );
        let mut names: Vec<String> = pairs.iter().map(SoftwarePair::display_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), pairs.len(), "names must be unique");
    }

    #[test]
    fn every_s_crashes_on_its_poc_inside_shared_code() {
        for p in all_pairs() {
            let out = Vm::new(&p.s, p.poc.bytes()).run();
            let crash = out.crash().unwrap_or_else(|| {
                panic!(
                    "Idx-{} `{}` does not crash on its PoC: {out:?}",
                    p.idx, p.s_name
                )
            });
            let shared_ids = p.s.resolve_names(p.shared.iter().map(String::as_str));
            assert!(
                crash.backtrace.any_in(&shared_ids),
                "Idx-{} `{}` crash is outside ℓ: {crash}",
                p.idx,
                p.s_name
            );
        }
    }

    #[test]
    fn crash_classes_match_cwe_column() {
        for p in all_pairs() {
            let out = Vm::new(&p.s, p.poc.bytes()).run();
            let crash = out.crash().expect("crashes");
            match p.cwe {
                "CWE-119" => assert_eq!(crash.kind.class(), "CWE-119", "Idx-{}", p.idx),
                "CWE-190" => assert_eq!(crash.kind.class(), "CWE-190", "Idx-{}", p.idx),
                "CWE-835" => assert_eq!(crash.kind.class(), "CWE-835", "Idx-{}", p.idx),
                "No-CWE" => {} // any crash class
                other => panic!("unknown CWE label {other}"),
            }
        }
    }

    #[test]
    fn shared_functions_exist_in_both_sides() {
        for p in all_pairs() {
            for name in &p.shared {
                assert!(
                    p.s.func_by_name(name).is_some(),
                    "Idx-{}: `{name}` missing in S",
                    p.idx
                );
                assert!(
                    p.t.func_by_name(name).is_some(),
                    "Idx-{}: `{name}` missing in T",
                    p.idx
                );
            }
        }
    }

    #[test]
    fn cloned_fragments_are_textually_identical() {
        // The premise of clone detection: the ℓ functions have identical
        // bodies in S and T. Compare their printed forms.
        for p in all_pairs() {
            for name in &p.shared {
                let sid = p.s.func_by_name(name).unwrap();
                let tid = p.t.func_by_name(name).unwrap();
                let mut s_text = String::new();
                let mut t_text = String::new();
                octo_ir::printer::print_function(p.s.func(sid), &p.s, &mut s_text);
                octo_ir::printer::print_function(p.t.func(tid), &p.t, &mut t_text);
                assert_eq!(s_text, t_text, "Idx-{}: clone `{name}` differs", p.idx);
            }
        }
    }

    #[test]
    fn multi_entry_flags_match_observed_entries() {
        use octo_vm::Hook;
        struct Count {
            ep: octo_ir::FuncId,
            n: u32,
        }
        impl Hook for Count {
            fn on_call(&mut self, callee: octo_ir::FuncId, _a: &[u64], _d: usize) {
                if callee == self.ep {
                    self.n += 1;
                }
            }
        }
        for p in all_pairs() {
            let ep = p.s.func_by_name(&p.shared[0]).unwrap();
            let mut h = Count { ep, n: 0 };
            Vm::new(&p.s, p.poc.bytes()).run_hooked(&mut h);
            assert_eq!(
                h.n > 1,
                p.multi_entry,
                "Idx-{}: ep entered {} times but multi_entry={}",
                p.idx,
                h.n,
                p.multi_entry
            );
        }
    }

    #[test]
    fn programs_are_nontrivial() {
        // The paper's binaries span 2k–557k LoC; our MicroIR analogues
        // must at least be real programs, not stubs: multiple functions,
        // branches, and file input on both sides of every pair.
        for p in all_pairs() {
            for (label, prog) in [("S", &p.s), ("T", &p.t)] {
                let st = octo_ir::ProgramStats::collect(prog);
                assert!(st.functions >= 2, "Idx-{} {label}: {st}", p.idx);
                assert!(st.instructions >= 15, "Idx-{} {label}: {st}", p.idx);
                assert!(st.branches >= 1, "Idx-{} {label}: {st}", p.idx);
                assert!(st.file_ops >= 2, "Idx-{} {label}: {st}", p.idx);
            }
        }
    }

    #[test]
    fn pair_by_idx_lookup() {
        assert_eq!(pair_by_idx(9).unwrap().t_name, "gif2png (artificial)");
        assert!(pair_by_idx(16).is_none());
    }

    #[test]
    fn benign_files_do_not_crash_s() {
        // A well-formed file of each format exits cleanly on its S.
        let cases: Vec<(u32, Vec<u8>)> = vec![
            (
                1,
                mini_jpeg::Builder::new()
                    .segment(mini_jpeg::SEG_HUFF, &[2, 7, 9])
                    .build(),
            ),
            (
                3,
                mini_pdf::Builder::new()
                    .object(mini_pdf::OBJ_XREF, &[1, 2, 0x0A])
                    .build(),
            ),
            (
                5,
                mini_jpeg::Builder::new()
                    .segment(mini_jpeg::SEG_SCAN, &[4, 0, 4, 0])
                    .build(),
            ),
            (9, mini_gif::Builder::new().block(&[1, 2, 3]).build()),
            (10, mini_tiff::Builder::new().entry(0x100, 7).build()),
        ];
        for (idx, file) in cases {
            let p = pair_by_idx(idx).unwrap();
            let out = Vm::new(&p.s, &file).run();
            assert_eq!(out, RunOutcome::Exit(0), "Idx-{idx} benign run: {out:?}");
        }
    }
}
