//! The shared vulnerable functions `ℓ` — the code that was cloned from the
//! original software into the propagated software.
//!
//! Each fragment is MicroIR source text. A pair's `S` and `T` programs are
//! assembled by concatenating their own driver code with the *identical*
//! fragment text, which is precisely the situation a vulnerable-clone
//! detector (VUDDY) reports: byte-identical function bodies in two code
//! bases. The planted defect in each fragment matches the CWE class of its
//! Table II rows.

/// `jpeg_decode_huffman` — CVE-2017-0700 shape (JPEG-compressor → libgdx,
/// zxing; Table II Idx 1–2). A huffman table declares its own entry count;
/// counts above the fixed table size overflow the heap buffer.
pub const JPEG_HUFFMAN: &str = r#"
func jpeg_decode_huffman(fd) {
entry:
    count = getc fd
    tbl = alloc 16
    i = 0
    jmp loop
loop:
    done = uge i, count
    br done, fin, body
body:
    v = getc fd
    p = add tbl, i
    store.1 p, v
    i = add i, 1
    jmp loop
fin:
    ret count
}
"#;

/// `tj_decode` — CVE-2018-20330 shape (libjpeg-turbo tjbench → mozjpeg
/// tjbench; Idx 5, CWE-190). The scan header's width×height product is
/// computed in a 16-bit checked multiply; large dimensions overflow.
pub const TJ_DECODE: &str = r#"
func tj_decode(fd) {
entry:
    wbuf = alloc 4
    n = read fd, wbuf, 4
    w = load.2 wbuf
    h = load.2 wbuf + 2
    total = cmul.2 w, h
    out = alloc 64
    lim = ule total, 64
    br lim, small, clamp
small:
    store.2 out, total
    ret total
clamp:
    store.2 out, 64
    ret 64
}
"#;

/// `xref_parse` — CVE-2017-18267 shape (Poppler pdftops → Xpdf pdftops;
/// Idx 3, CWE-835). A malformed xref entry byte makes the whitespace
/// skipper seek back to the same position forever: an infinite loop.
pub const XREF_PARSE: &str = r#"
func xref_parse(fd) {
entry:
    off1 = getc fd
    off2 = getc fd
    jmp skip_ws
skip_ws:
    pos = tell fd
    b = getc fd
    bad = eq b, 0xFF
    br bad, rewind, check_ws
rewind:
    seek fd, pos
    jmp skip_ws
check_ws:
    isws = eq b, 0x20
    br isws, skip_ws, done
done:
    r = add off1, off2
    ret r
}
"#;

/// `avc_parse_sps` — CVE-2018-11102 shape (avconv → ffmpeg; Idx 4,
/// CWE-119). The sequence-parameter frame declares a row width that is
/// copied into a fixed 16-byte stack buffer without a bound check.
pub const AVC_PARSE_SPS: &str = r#"
func avc_parse_sps(fd) {
entry:
    hbuf = alloc 4
    n = read fd, hbuf, 4
    w = load.2 hbuf
    h = load.2 hbuf + 2
    row = salloc 16
    i = 0
    jmp copy
copy:
    done = uge i, w
    br done, fin, body
body:
    v = getc fd
    p = add row, i
    store.1 p, v
    i = add i, 1
    jmp copy
fin:
    ret h
}
"#;

/// `pdf_read_obj` — CVE-2019-9878 shape (pdfalto → Xpdf; Idx 6 and 14,
/// CWE-119). A stream object's declared data length is copied into a
/// fixed 64-byte buffer.
pub const PDF_READ_OBJ: &str = r#"
func pdf_read_obj(fd) {
entry:
    lbuf = alloc 2
    n = read fd, lbuf, 2
    dlen = load.2 lbuf
    buf = alloc 64
    i = 0
    jmp copy
copy:
    done = uge i, dlen
    br done, fin, body
body:
    v = getc fd
    p = add buf, i
    store.1 p, v
    i = add i, 1
    jmp copy
fin:
    ret dlen
}
"#;

/// `opj_read_header` — ghostscript-BZ697463 shape (OpenJPEG codebase:
/// ghostscript ↔ opj_dump ↔ MuPDF; Idx 7, 8, 13). A zero component count
/// combined with the encoder's raw-mode sentinel tile dimensions
/// (`0x5A5A × 0xA5A5`) leaves the component table NULL; the decoder
/// dereferences it. The sentinel values stand in for the real
/// vulnerability's precisely-structured codestream state: random mutation
/// has to hit five exact bytes, as in the original CVE's marker sequence.
pub const OPJ_READ_HEADER: &str = r#"
func opj_read_header(fd) {
entry:
    hbuf = alloc 5
    n = read fd, hbuf, 5
    ncomp = load.1 hbuf
    tw = load.2 hbuf + 1
    th = load.2 hbuf + 3
    c1 = eq ncomp, 0
    br c1, chk2, valid
chk2:
    c2 = eq tw, 0x5A5A
    br c2, chk3, valid
chk3:
    c3 = eq th, 0xA5A5
    br c3, null_path, valid
null_path:
    v = load.4 0
    ret v
valid:
    comps = alloc 32
    store.1 comps, ncomp
    ret ncomp
}
"#;

/// `tiff_vget_field` — CVE-2016-10095 shape (LibTIFF tiffsplit →
/// opj_compress, libsdl2, libgdiplus; Idx 10–12, CWE-119). "The
/// vulnerability appears when tag == 0x13d": that case writes past a
/// small stack buffer (Listing 1 of the paper).
pub const TIFF_VGET_FIELD: &str = r#"
func tiff_vget_field(tag, value) {
entry:
    switch tag { 0x13d -> vuln, 0x100 -> benign, 0x101 -> benign, 0x102 -> benign, _ -> benign }
vuln:
    pagebuf = salloc 8
    store.4 pagebuf + 16, value
    ret 1
benign:
    slot = alloc 8
    store.4 slot, value
    ret 0
}
"#;

/// `read_image` — CVE-2011-2896 shape (gif2png → gif2png artificial;
/// Idx 9, heap CWE-119). Each image data block's size byte is trusted and
/// the block is copied into a fixed 64-byte heap buffer.
pub const READ_IMAGE: &str = r#"
func read_image(fd) {
entry:
    size = getc fd
    buf = alloc 64
    i = 0
    jmp copy
copy:
    done = uge i, size
    br done, fin, body
body:
    v = getc fd
    p = add buf, i
    store.1 p, v
    i = add i, 1
    jmp copy
fin:
    ret size
}
"#;

/// `pdf_stream_len` — CVE-2018-21009 shape (pdf2htmlEX → Poppler pdfinfo;
/// Idx 15, CWE-190). The stream length is the 16-bit checked product of a
/// count and a scale factor read from the object.
pub const PDF_STREAM_LEN: &str = r#"
func pdf_stream_len(fd) {
entry:
    hbuf = alloc 4
    n = read fd, hbuf, 4
    count = load.2 hbuf
    scale = load.2 hbuf + 2
    total = cmul.2 count, scale
    ret total
}
"#;

/// Every fragment, with the name of the function it defines (`ep`
/// candidates for the pairs that use it).
pub const ALL_FRAGMENTS: [(&str, &str); 9] = [
    ("jpeg_decode_huffman", JPEG_HUFFMAN),
    ("tj_decode", TJ_DECODE),
    ("xref_parse", XREF_PARSE),
    ("avc_parse_sps", AVC_PARSE_SPS),
    ("pdf_read_obj", PDF_READ_OBJ),
    ("opj_read_header", OPJ_READ_HEADER),
    ("tiff_vget_field", TIFF_VGET_FIELD),
    ("read_image", READ_IMAGE),
    ("pdf_stream_len", PDF_STREAM_LEN),
];

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::parse::parse_program;

    #[test]
    fn every_fragment_parses_standalone() {
        for (name, src) in ALL_FRAGMENTS {
            let full = format!("func main() {{\nentry:\n halt 0\n}}\n{src}");
            let p = parse_program(&full)
                .unwrap_or_else(|e| panic!("fragment `{name}` does not parse: {e}"));
            assert!(
                p.func_by_name(name).is_some(),
                "fragment `{name}` does not define its function"
            );
            octo_ir::validate::validate(&p)
                .unwrap_or_else(|e| panic!("fragment `{name}` invalid: {e:?}"));
        }
    }

    #[test]
    fn fragments_define_distinct_functions() {
        let names: Vec<&str> = ALL_FRAGMENTS.iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
