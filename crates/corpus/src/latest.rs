//! "Latest version" variants (§V-B, experiment E6).
//!
//! The paper found three targets where the propagated vulnerability was
//! still triggerable in the *latest* release at the time of writing:
//! libgdx (Idx 1), pdftops of Xpdf (Idx 3), and tjbench of Mozilla mozjpeg
//! (Idx 5). The maintainers were notified; Xpdf's fix received
//! CVE-2020-35376. This module provides those latest-version targets —
//! behaviourally identical to the evaluated versions, because upstream had
//! not yet patched the clone.

use crate::pairs::{pair_by_idx, Expected, SoftwarePair};

/// The Table II indices with still-vulnerable latest versions.
pub const LATEST_VULNERABLE_IDXS: [u32; 3] = [1, 3, 5];

/// Returns the three §V-B latest-version pairs. Each is the corresponding
/// Table II pair with the target relabelled as the latest release.
pub fn latest_pairs() -> Vec<SoftwarePair> {
    LATEST_VULNERABLE_IDXS
        .iter()
        .map(|&idx| {
            let mut pair = pair_by_idx(idx).expect("known index");
            pair.t_version = match idx {
                1 => "latest (2020-01)",
                3 => "4.02 (latest before CVE-2020-35376 fix)",
                5 => "latest (2020-01)",
                _ => unreachable!(),
            };
            // Still triggerable in the latest version.
            debug_assert!(matches!(pair.expected, Expected::TypeI));
            pair
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_vm::Vm;

    #[test]
    fn three_latest_targets() {
        let latest = latest_pairs();
        assert_eq!(latest.len(), 3);
        let names: Vec<&str> = latest.iter().map(|p| p.t_name).collect();
        assert_eq!(names, vec!["libgdx", "pdftops (Xpdf)", "tjbench (mozjpeg)"]);
    }

    #[test]
    fn latest_versions_still_crash_on_reformable_input() {
        // §V-B: the propagated vulnerability is still triggerable in the
        // latest versions. Since these rows are Type-I, the original PoC
        // itself demonstrates it.
        for pair in latest_pairs() {
            let out = Vm::new(&pair.t, pair.poc.bytes()).run();
            let shared = pair.t.resolve_names(pair.shared.iter().map(String::as_str));
            let in_shared = out
                .crash()
                .map(|c| c.backtrace.any_in(&shared))
                .unwrap_or(false);
            assert!(in_shared, "{} latest: {out:?}", pair.t_name);
        }
    }
}
