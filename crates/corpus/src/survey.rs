//! The §II-A PoC-type survey (experiment E5).
//!
//! The paper investigated all CVEs reported 2016–2019 that reference a
//! Bugzilla report: 2,455 CVEs, of which 1,190 shipped a PoC; 823 of those
//! PoCs (70 %) were malformed-file type. The original record set is not
//! redistributable, so this module synthesises a record per CVE with the
//! same aggregate counts — enough to regenerate the percentages the paper
//! uses to justify targeting malformed-file PoCs.

/// PoC categories (paper §II-A, after Mu et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PocType {
    /// Shell command type.
    ShellCommand,
    /// Program type (e.g. a Python script).
    Program,
    /// Malformed string type.
    MalformedString,
    /// Malformed file type (e.g. a malicious image) — OctoPoCs' target.
    MalformedFile,
}

impl PocType {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PocType::ShellCommand => "shell command",
            PocType::Program => "program",
            PocType::MalformedString => "malformed string",
            PocType::MalformedFile => "malformed file",
        }
    }
}

/// One surveyed CVE record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CveRecord {
    /// Synthetic CVE identifier (`CVE-<year>-S<seq>`).
    pub id: String,
    /// Reporting year (2016–2019).
    pub year: u16,
    /// The PoC type, when a PoC was published.
    pub poc: Option<PocType>,
}

/// Counts reported in §II-A.
pub const TOTAL_CVES: usize = 2455;
/// CVEs that shipped a PoC.
pub const CVES_WITH_POC: usize = 1190;
/// PoCs of malformed-file type.
pub const MALFORMED_FILE_POCS: usize = 823;

/// Generates the synthetic survey record set with the paper's aggregate
/// counts. Deterministic: the same records every call.
pub fn survey_records() -> Vec<CveRecord> {
    let mut records = Vec::with_capacity(TOTAL_CVES);
    // Distribute non-file PoC types round-robin over the remainder.
    let other_types = [
        PocType::ShellCommand,
        PocType::Program,
        PocType::MalformedString,
    ];
    for i in 0..TOTAL_CVES {
        let year = 2016 + (i % 4) as u16;
        let poc = if i < MALFORMED_FILE_POCS {
            Some(PocType::MalformedFile)
        } else if i < CVES_WITH_POC {
            Some(other_types[i % other_types.len()])
        } else {
            None
        };
        records.push(CveRecord {
            id: format!("CVE-{year}-S{i:04}"),
            year,
            poc,
        });
    }
    records
}

/// Aggregate survey results (the numbers quoted in §II-A).
#[derive(Debug, Clone, PartialEq)]
pub struct SurveySummary {
    /// Total CVEs with Bugzilla references.
    pub total: usize,
    /// CVEs that shipped any PoC.
    pub with_poc: usize,
    /// Count per PoC type.
    pub by_type: Vec<(PocType, usize)>,
    /// Fraction of PoCs that are malformed-file type.
    pub malformed_file_share: f64,
}

/// Summarises a record set.
pub fn summarize(records: &[CveRecord]) -> SurveySummary {
    let with_poc = records.iter().filter(|r| r.poc.is_some()).count();
    let mut by_type = Vec::new();
    for ty in [
        PocType::MalformedFile,
        PocType::ShellCommand,
        PocType::Program,
        PocType::MalformedString,
    ] {
        let n = records.iter().filter(|r| r.poc == Some(ty)).count();
        by_type.push((ty, n));
    }
    let files = by_type
        .iter()
        .find(|(t, _)| *t == PocType::MalformedFile)
        .map(|(_, n)| *n)
        .unwrap_or(0);
    SurveySummary {
        total: records.len(),
        with_poc,
        by_type,
        malformed_file_share: if with_poc == 0 {
            0.0
        } else {
            files as f64 / with_poc as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_counts_match_the_paper() {
        let records = survey_records();
        let s = summarize(&records);
        assert_eq!(s.total, 2455);
        assert_eq!(s.with_poc, 1190);
        let files = s
            .by_type
            .iter()
            .find(|(t, _)| *t == PocType::MalformedFile)
            .unwrap()
            .1;
        assert_eq!(files, 823);
        // "823 PoCs (70%) were malicious file types"
        assert!((s.malformed_file_share - 0.6916).abs() < 0.01);
    }

    #[test]
    fn years_cover_2016_to_2019() {
        let records = survey_records();
        for y in 2016..=2019u16 {
            assert!(records.iter().any(|r| r.year == y));
        }
        assert!(records.iter().all(|r| (2016..=2019).contains(&r.year)));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(survey_records(), survey_records());
    }
}
