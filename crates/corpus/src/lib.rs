//! # octo-corpus — the evaluation dataset of the paper.
//!
//! This crate materialises the 15 real-world software pairs of Table II as
//! MicroIR programs: the original vulnerable software `S`, the propagated
//! software `T`, the shared (cloned) function set `ℓ`, and the original
//! malformed-file PoC for every row — plus the §V-B "latest version"
//! variants and the §II-A PoC-type survey data.
//!
//! The substitution rationale (real CVE binaries → structurally equivalent
//! MicroIR programs) is documented per row in `DESIGN.md`; the invariants
//! that make the substitution meaningful are enforced by this crate's
//! tests: every `S` crashes on its PoC *inside* `ℓ` with the row's CWE
//! class, clones are byte-identical across `S` and `T`, and the rows
//! flagged multi-entry really do enter `ep` multiple times.

//!
//! ```
//! use octo_corpus::{all_pairs, Expected};
//!
//! let pairs = all_pairs();
//! assert_eq!(pairs.len(), 15);
//! // Table II's verdict distribution: 6 / 3 / 5 / 1.
//! let triggered = pairs
//!     .iter()
//!     .filter(|p| p.expected.poc_generated())
//!     .count();
//! assert_eq!(triggered, 9);
//! assert!(pairs.iter().any(|p| p.expected == Expected::Failure));
//! ```
#![warn(missing_docs)]

pub mod fragments;
pub mod latest;
pub mod pairs;
pub mod software;
pub mod survey;
pub mod variants;

pub use latest::latest_pairs;
pub use pairs::{all_pairs, pair_by_idx, Expected, SoftwarePair};
pub use survey::{summarize, survey_records, PocType, SurveySummary};
pub use variants::{variant_corpus, VariantCase, VariantKind};
