//! Synthesized clone variants of corpus programs.
//!
//! The clone-retrieval stage (`octo-clone`) claims to be robust against
//! the edits downstream vendors actually make when they copy a function:
//! register renaming, block reordering, and embedding the body behind a
//! wrapper prologue. It also claims to *reject* functions that merely
//! look similar but compute something else. This module synthesizes
//! exactly those variants from the real corpus so the claims can be
//! measured as precision/recall rather than asserted.
//!
//! Positive variants (must still be retrieved):
//! * [`permute_registers`] — bijective renaming of non-parameter registers,
//! * [`reorder_blocks`] — non-entry blocks permuted with all block ids
//!   remapped,
//! * [`embed_prologue`] — body shifted behind a fresh entry block that
//!   does unrelated local work before jumping in (an "inlined copy").
//!
//! Negative variant (must be rejected):
//! * [`semantic_edit`] — operands of every binary op swapped and every
//!   constant, immediate, offset and switch case perturbed; the shape is
//!   familiar but the computation is different everywhere, so no shingle
//!   window survives.

use octo_ir::types::{BlockId, Operand, Reg};
use octo_ir::{rewrite_function, BasicBlock, Function, Inst, Program, Terminator};

use crate::pairs::{all_pairs, SoftwarePair};

/// Minimal deterministic PRNG (xorshift64*) so variant synthesis never
/// depends on an external `rand` and is identical across runs.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Fisher–Yates shuffle of `v`.
    fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
    }
}

/// Renames every non-parameter register through a seeded bijection.
/// Parameters keep their ids (the ABI is position-based), everything
/// else is shuffled. Semantics are unchanged.
pub fn permute_registers(f: &Function, seed: u64) -> Function {
    let n = f.n_regs.max(f.n_params);
    let mut map: Vec<u16> = (0..n).collect();
    XorShift::new(seed ^ 0x9e37_79b9_7f4a_7c15).shuffle(&mut map[f.n_params as usize..]);
    rewrite_function(
        f,
        &|r: Reg| Reg(map.get(r.0 as usize).copied().unwrap_or(r.0)),
        &|b: BlockId| b,
    )
}

/// Permutes every block except the entry, remapping all block
/// references (branch targets, switch arms, block-address constants).
/// Control flow is unchanged; only the textual layout moves.
pub fn reorder_blocks(f: &Function, seed: u64) -> Function {
    if f.blocks.len() <= 2 {
        return f.clone();
    }
    // order[new_position] = old_index; entry stays at position 0.
    let mut order: Vec<usize> = (1..f.blocks.len()).collect();
    XorShift::new(seed ^ 0xb4c0_ffee_5ca1_ab1e).shuffle(&mut order);
    order.insert(0, 0);
    let mut old_to_new = vec![0u32; f.blocks.len()];
    for (new, &old) in order.iter().enumerate() {
        old_to_new[old] = new as u32;
    }
    let g = rewrite_function(f, &|r: Reg| r, &|b: BlockId| {
        BlockId(old_to_new.get(b.0 as usize).copied().unwrap_or(b.0))
    });
    let mut out = g.clone();
    out.blocks = order.iter().map(|&old| g.blocks[old].clone()).collect();
    out
}

/// Embeds the function body behind a fresh prologue block: every old
/// block shifts down by one and a new entry does unrelated local work
/// (scratch allocation and a store) before jumping to the old entry.
/// This models a clone *inlined into* a larger host function — the
/// classic case where exact-hash matching fails but shingle containment
/// must stay 1.0.
pub fn embed_prologue(f: &Function) -> Function {
    let mut g = rewrite_function(f, &|r: Reg| r, &|b: BlockId| BlockId(b.0 + 1));
    let scratch = Reg(g.n_regs);
    let tmp = Reg(g.n_regs + 1);
    g.n_regs += 2;
    g.blocks.insert(
        0,
        BasicBlock {
            label: "host_prologue".to_string(),
            insts: vec![
                Inst::Alloc {
                    dst: scratch,
                    size: Operand::Imm(8),
                    region: octo_ir::RegionKind::Heap,
                },
                Inst::Const {
                    dst: tmp,
                    value: 0xA5,
                },
                Inst::Store {
                    addr: Operand::Reg(scratch),
                    offset: 0,
                    src: Operand::Reg(tmp),
                    width: octo_ir::Width::W1,
                },
            ],
            term: Terminator::Jmp(BlockId(1)),
        },
    );
    g
}

/// Perturbs one immediate so the computation changes but the token
/// *shape* does not.
fn tweak_imm(v: u64) -> u64 {
    v ^ 0x3F
}

fn tweak_op(op: &Operand) -> Operand {
    match op {
        Operand::Reg(r) => Operand::Reg(*r),
        Operand::Imm(v) => Operand::Imm(tweak_imm(*v)),
    }
}

/// Produces a *near-miss decoy*: same instruction mix and control-flow
/// shape, different computation everywhere. Every binary operation has
/// its operands swapped, every constant/immediate is XOR-perturbed,
/// every memory offset moves by 3, and every switch case value changes.
/// A sound retriever must score this below threshold.
pub fn semantic_edit(f: &Function) -> Function {
    let mut g = f.clone();
    for b in &mut g.blocks {
        for inst in &mut b.insts {
            *inst = match inst.clone() {
                Inst::Const { dst, value } => Inst::Const {
                    dst,
                    value: tweak_imm(value),
                },
                Inst::Move { dst, src } => Inst::Move {
                    dst,
                    src: tweak_op(&src),
                },
                Inst::Bin { dst, op, lhs, rhs } => Inst::Bin {
                    dst,
                    op,
                    lhs: tweak_op(&rhs),
                    rhs: tweak_op(&lhs),
                },
                Inst::Un { dst, op, src } => Inst::Un {
                    dst,
                    op,
                    src: tweak_op(&src),
                },
                Inst::CheckedBin {
                    dst,
                    op,
                    width,
                    lhs,
                    rhs,
                } => Inst::CheckedBin {
                    dst,
                    op,
                    width,
                    lhs: tweak_op(&rhs),
                    rhs: tweak_op(&lhs),
                },
                Inst::Load {
                    dst,
                    addr,
                    offset,
                    width,
                } => Inst::Load {
                    dst,
                    addr,
                    offset: offset + 3,
                    width,
                },
                Inst::Store {
                    addr,
                    offset,
                    src,
                    width,
                } => Inst::Store {
                    addr,
                    offset: offset + 3,
                    src: tweak_op(&src),
                    width,
                },
                Inst::Alloc { dst, size, region } => Inst::Alloc {
                    dst,
                    size: tweak_op(&size),
                    region,
                },
                other => other,
            };
        }
        b.term = match b.term.clone() {
            Terminator::Switch {
                scrut,
                cases,
                default,
            } => Terminator::Switch {
                scrut,
                cases: cases.into_iter().map(|(v, b)| (tweak_imm(v), b)).collect(),
                default,
            },
            other => other,
        };
    }
    g
}

/// Which transform produced a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantKind {
    /// [`permute_registers`] — positive (must be retrieved).
    Renamed,
    /// [`reorder_blocks`] — positive.
    Reordered,
    /// [`embed_prologue`] — positive.
    Inlined,
    /// [`semantic_edit`] — negative (must be rejected).
    Decoy,
}

impl VariantKind {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            VariantKind::Renamed => "renamed",
            VariantKind::Reordered => "reordered",
            VariantKind::Inlined => "inlined",
            VariantKind::Decoy => "decoy",
        }
    }

    /// Whether retrieval is expected to find the shared function in this
    /// variant.
    pub fn is_positive(self) -> bool {
        !matches!(self, VariantKind::Decoy)
    }
}

/// One synthesized variant case: a corpus pair's source S queried
/// against a transformed copy of its target T.
pub struct VariantCase {
    /// Index of the corpus pair the variant was derived from.
    pub base_idx: u32,
    /// The transform applied.
    pub kind: VariantKind,
    /// Stable display name, e.g. `idx03-renamed`.
    pub name: String,
    /// The untouched source program S.
    pub s: Program,
    /// The transformed target program.
    pub t: Program,
    /// Shared function names in the *original* pair — for positive
    /// variants these must all be retrieved, for the decoy none may be.
    pub shared: Vec<String>,
}

/// Applies `transform` to every shared function of `pair.t`, leaving
/// the driver and helpers untouched, and rebuilds the program.
fn transform_shared(pair: &SoftwarePair, transform: &dyn Fn(&Function) -> Function) -> Program {
    let funcs: Vec<Function> = pair
        .t
        .iter()
        .map(|(_, f)| {
            if pair.shared.iter().any(|s| s == &f.name) {
                transform(f)
            } else {
                f.clone()
            }
        })
        .collect();
    let entry = pair.t.func(pair.t.entry()).name.clone();
    Program::from_functions(funcs, &entry).expect("variant synthesis produced an invalid program")
}

/// A body transform applied to each shared function when synthesizing a
/// variant.
type Transform = Box<dyn Fn(&Function) -> Function>;

/// Synthesizes the full variant corpus: for every corpus pair, one
/// variant per [`VariantKind`] (three positives, one decoy), all
/// deterministic.
pub fn variant_corpus() -> Vec<VariantCase> {
    let mut out = Vec::new();
    for pair in all_pairs() {
        let seed = u64::from(pair.idx);
        let kinds: [(VariantKind, Transform); 4] = [
            (
                VariantKind::Renamed,
                Box::new(move |f: &Function| permute_registers(f, seed)),
            ),
            (
                VariantKind::Reordered,
                Box::new(move |f: &Function| reorder_blocks(f, seed)),
            ),
            (VariantKind::Inlined, Box::new(embed_prologue)),
            (VariantKind::Decoy, Box::new(semantic_edit)),
        ];
        for (kind, transform) in &kinds {
            out.push(VariantCase {
                base_idx: pair.idx,
                kind: *kind,
                name: format!("idx{:02}-{}", pair.idx, kind.label()),
                s: pair.s.clone(),
                t: transform_shared(&pair, transform.as_ref()),
                shared: pair.shared.clone(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_ir::validate::validate;

    fn sample() -> Function {
        let pair = crate::pair_by_idx(1).unwrap();
        let name = &pair.shared[0];
        let id = pair.t.func_by_name(name).unwrap();
        pair.t.func(id).clone()
    }

    #[test]
    fn register_permutation_changes_names_not_structure() {
        let f = sample();
        let g = permute_registers(&f, 7);
        assert_eq!(f.blocks.len(), g.blocks.len());
        assert_eq!(f.n_regs, g.n_regs);
        assert_ne!(f, g, "permutation should move at least one register");
        // Round-tripping through the inverse map is not needed: a second
        // application with the same seed must be deterministic.
        assert_eq!(g, permute_registers(&f, 7));
    }

    #[test]
    fn block_reorder_preserves_entry_and_count() {
        let f = sample();
        let g = reorder_blocks(&f, 3);
        assert_eq!(f.blocks.len(), g.blocks.len());
        assert_eq!(f.blocks[0].label, g.blocks[0].label);
        assert_eq!(g, reorder_blocks(&f, 3));
    }

    #[test]
    fn embed_prologue_shifts_blocks() {
        let f = sample();
        let g = embed_prologue(&f);
        assert_eq!(g.blocks.len(), f.blocks.len() + 1);
        assert_eq!(g.blocks[0].label, "host_prologue");
        assert_eq!(g.blocks[1].label, f.blocks[0].label);
        assert_eq!(g.n_regs, f.n_regs + 2);
    }

    #[test]
    fn semantic_edit_changes_every_constant() {
        let f = sample();
        let g = semantic_edit(&f);
        assert_eq!(f.blocks.len(), g.blocks.len());
        assert_ne!(f, g);
    }

    #[test]
    fn variant_corpus_is_valid_and_complete() {
        let cases = variant_corpus();
        let n_pairs = all_pairs().len();
        assert_eq!(cases.len(), n_pairs * 4);
        for case in &cases {
            validate(&case.t).unwrap_or_else(|e| panic!("{} fails validation: {e:?}", case.name));
        }
    }
}
