//! Every corpus binary must behave like real software on *well-formed*
//! input: parse it and exit cleanly. This pins down that the planted
//! vulnerabilities are actually input-dependent, not unconditional
//! crashes — the precondition for the whole verification story.

use octo_corpus::all_pairs;
use octo_poc::formats::{mini_avc, mini_gif, mini_j2k, mini_jpeg, mini_pdf, mini_tiff};
use octo_vm::{RunOutcome, Vm};

/// A well-formed input for the *target* binary of the given Table II row.
fn benign_input_for_t(idx: u32) -> Vec<u8> {
    match idx {
        // mini-JPEG consumers: one in-bounds huffman table.
        1 | 2 => mini_jpeg::Builder::new()
            .segment(mini_jpeg::SEG_HUFF, &[3, 10, 20, 30])
            .build(),
        // Xpdf pdftops: one well-formed xref entry.
        3 => mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_XREF, &[1, 2, 0x0A])
            .build(),
        // ffmpeg: one small SPS frame (w=2 ⇒ 2 row bytes).
        4 => mini_avc::Builder::new()
            .frame(mini_avc::FRAME_SPS, &[2, 0, 1, 0, 0xAA, 0xBB])
            .build(),
        // mozjpeg tjbench: a scan whose area fits 16 bits.
        5 => mini_jpeg::Builder::new()
            .segment(mini_jpeg::SEG_SCAN, &[8, 0, 8, 0])
            .build(),
        // Xpdf pdfinfo / patched pdftops: a small stream (dlen=4 ≤ 64).
        6 | 14 => {
            let payload = [4u8, 0, 9, 9, 9, 9];
            mini_pdf::Builder::new()
                .object(mini_pdf::OBJ_STREAM, &payload)
                .build()
        }
        // opj_dump (2.1.1 and patched 2.2.0): a valid single-component J2K.
        7 | 13 => mini_j2k::Builder::new()
            .components(1)
            .tile(8, 8)
            .data(&[1, 2, 3])
            .build(),
        // MuPDF: PDF with the 16 renderer option flags between version
        // and object count, containing one valid embedded J2K.
        8 => {
            let img = mini_j2k::Builder::new().components(1).tile(8, 8).build();
            let pdf = mini_pdf::Builder::new()
                .object(mini_pdf::OBJ_IMAGE, &img)
                .build();
            let mut file = pdf[..5].to_vec();
            file.extend_from_slice(&[0u8; 16]);
            file.extend_from_slice(&pdf[5..]);
            file
        }
        // Artificial gif2png: strictly valid version, in-bounds block.
        9 => mini_gif::Builder::new().block(&[1, 2, 3]).build(),
        // TIFF consumers read their hard-coded fields regardless of the
        // directory; magic plus a count byte suffices.
        10..=12 => mini_tiff::Builder::new().entry(0x100, 7).build(),
        // Poppler pdfinfo: a stream whose 16-bit product fits.
        15 => mini_pdf::Builder::new()
            .object(mini_pdf::OBJ_STREAM, &[2, 0, 3, 0])
            .build(),
        other => panic!("unknown idx {other}"),
    }
}

#[test]
fn every_t_exits_cleanly_on_wellformed_input() {
    for pair in all_pairs() {
        let input = benign_input_for_t(pair.idx);
        let out = Vm::new(&pair.t, &input).run();
        assert_eq!(
            out,
            RunOutcome::Exit(0),
            "Idx-{} `{}` misbehaves on benign input: {out:?}",
            pair.idx,
            pair.t_name
        );
    }
}

#[test]
fn every_t_rejects_garbage_without_crashing() {
    // Wrong-magic garbage must be rejected with a nonzero exit, not a
    // crash (real tools print "not a XXX file" and exit).
    for pair in all_pairs() {
        let garbage = vec![0xEEu8; 32];
        let out = Vm::new(&pair.t, &garbage).run();
        match out {
            RunOutcome::Exit(code) => assert_ne!(
                code, 0,
                "Idx-{} `{}` accepted garbage",
                pair.idx, pair.t_name
            ),
            RunOutcome::Crash(c) => {
                panic!("Idx-{} `{}` crashed on garbage: {c}", pair.idx, pair.t_name)
            }
        }
    }
}

#[test]
fn empty_input_never_crashes_any_binary() {
    for pair in all_pairs() {
        for (label, prog) in [("S", &pair.s), ("T", &pair.t)] {
            let out = Vm::new(prog, &[]).run();
            assert!(
                matches!(out, RunOutcome::Exit(_)),
                "Idx-{} {label}: empty input crashed: {out:?}",
                pair.idx
            );
        }
    }
}
