//! Deterministic fault injection and fault-tolerance policies.
//!
//! The OctoPoCs batch runner must survive individual misbehaving jobs: a
//! panicking directed engine, a wedged solver, a flaky replay. This crate
//! provides the two halves of that story:
//!
//! * **Injection** — a seeded [`FaultPlan`] describes *where* and *when*
//!   faults fire. Injection sites scattered through the workspace (solver
//!   entry, directed engine, artifact cache, P4 replay) call
//!   [`should_inject`], which is a no-op unless a per-job [`JobFaults`]
//!   context has been [`install`]ed. Decisions are pure functions of
//!   `(seed, site, job, occurrence)`, so a plan replays byte-for-byte:
//!   two runs with the same plan inject the same faults at the same
//!   program points.
//! * **Tolerance** — a [`RetryPolicy`] with deterministic seeded jitter
//!   that the batch runner uses to re-run jobs whose failure was
//!   *transient* (deadline, hang, injected fault, panic) before
//!   quarantining them.
//!
//! Like `octo-trace`, the injection context is thread-local and costs one
//! TLS read when inactive, so production runs without a fault plan pay
//! almost nothing for the hooks.
//!
//! ```
//! use octo_faults::{FaultPlan, FaultSite, JobFaults};
//! use std::sync::Arc;
//!
//! let plan = Arc::new(FaultPlan::new(42).nth(FaultSite::DirectedPanic, Some(3), 1));
//! let ctx = Arc::new(JobFaults::new(&plan, 3));
//! let _guard = octo_faults::install(&ctx);
//! assert!(octo_faults::should_inject(FaultSite::DirectedPanic)); // 1st occurrence
//! assert!(!octo_faults::should_inject(FaultSite::DirectedPanic)); // 2nd: clean
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use octo_trace::TraceKind;

/// Number of distinct injection sites (length of [`FaultSite::ALL`]).
pub const SITE_COUNT: usize = 7;

/// A program point where a fault can be injected.
///
/// Each site corresponds to one hook in the workspace; the hook calls
/// [`should_inject`] exactly once per *occurrence* (e.g. once per solver
/// call, once per engine run), and the [`FaultPlan`] decides whether that
/// occurrence fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Solver entry (`solve_with`): the solve is abandoned and returns
    /// `SolveResult::Injected`.
    SolverSolve,
    /// Directed engine entry: the engine panics (exercises panic
    /// isolation end to end).
    DirectedPanic,
    /// Directed engine entry: the engine reports a forced `loop-dead`
    /// outcome without stepping.
    DirectedLoopDead,
    /// Directed engine entry: the engine wedges — responsive to
    /// cancellation but never making progress — until a watchdog or
    /// deadline escalates its `CancelToken`. Skipped (after counting the
    /// occurrence) when the engine has no token, since the hang would
    /// otherwise be unrecoverable.
    DirectedHang,
    /// Artifact cache hit path: the cached value is discarded and
    /// recomputed as if the lookup had missed.
    CacheMiss,
    /// P4 concrete replay: the replay spuriously reports "no crash".
    P4Replay,
    /// Disk blob store publish: the process "dies" between writing the
    /// temp file and the atomic rename, leaving an orphan temp file and
    /// no published blob (the crash-consistency window).
    StoreRename,
}

impl FaultSite {
    /// Every site, in a fixed order (indexes into per-site counters).
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::SolverSolve,
        FaultSite::DirectedPanic,
        FaultSite::DirectedLoopDead,
        FaultSite::DirectedHang,
        FaultSite::CacheMiss,
        FaultSite::P4Replay,
        FaultSite::StoreRename,
    ];

    /// Stable kebab-case label, used in fault-plan JSON, trace events, and
    /// verdict renderings.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::SolverSolve => "solver-solve",
            FaultSite::DirectedPanic => "directed-panic",
            FaultSite::DirectedLoopDead => "directed-loop-dead",
            FaultSite::DirectedHang => "directed-hang",
            FaultSite::CacheMiss => "cache-miss",
            FaultSite::P4Replay => "p4-replay",
            FaultSite::StoreRename => "store-rename",
        }
    }

    /// Inverse of [`FaultSite::label`].
    pub fn from_label(label: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.label() == label)
    }

    fn index(self) -> usize {
        FaultSite::ALL
            .iter()
            .position(|s| *s == self)
            .expect("site in ALL")
    }
}

/// When a matching rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire exactly on the `n`-th occurrence of the site within a job
    /// (1-based). Occurrence counters persist across retry attempts, so a
    /// `Nth(1)` fault fires on the first attempt and *clears* on retry —
    /// the canonical "transient" fault.
    Nth(u64),
    /// Fire each occurrence independently with this probability, decided
    /// by a deterministic hash of `(seed, site, job, occurrence)`.
    /// `0.0` never fires; `1.0` always fires.
    Probability(f64),
}

/// One line of a [`FaultPlan`]: a site, an optional job filter, and a
/// trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The injection site this rule arms.
    pub site: FaultSite,
    /// Restrict the rule to one job (batch submission index); `None`
    /// matches every job.
    pub job: Option<u32>,
    /// When a matching occurrence fires.
    pub trigger: Trigger,
}

/// A deterministic, replayable description of which faults to inject.
///
/// Build one with the fluent API ([`FaultPlan::nth`],
/// [`FaultPlan::probability`]) or load one from JSON
/// ([`FaultPlan::parse_json`], the format behind
/// `octopocs batch --fault-plan <file>`; see `docs/robustness.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given probability seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// The seed behind probabilistic triggers.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rules, in declaration order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Adds an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Adds a rule firing on the `n`-th occurrence of `site` (optionally
    /// only in job `job`).
    pub fn nth(self, site: FaultSite, job: Option<u32>, n: u64) -> FaultPlan {
        self.rule(FaultRule {
            site,
            job,
            trigger: Trigger::Nth(n),
        })
    }

    /// Adds a rule firing each occurrence of `site` with probability `p`.
    pub fn probability(self, site: FaultSite, job: Option<u32>, p: f64) -> FaultPlan {
        self.rule(FaultRule {
            site,
            job,
            trigger: Trigger::Probability(p),
        })
    }

    /// Decides whether the `occurrence`-th (1-based) hit of `site` in
    /// `job` fires. Pure: same inputs, same answer, forever.
    pub fn decide(&self, site: FaultSite, job: u32, occurrence: u64) -> bool {
        self.rules.iter().any(|r| {
            r.site == site
                && r.job.is_none_or(|j| j == job)
                && match r.trigger {
                    Trigger::Nth(n) => occurrence == n,
                    Trigger::Probability(p) => {
                        if p <= 0.0 {
                            false
                        } else if p >= 1.0 {
                            true
                        } else {
                            let h = splitmix64(
                                self.seed
                                    ^ (site.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                    ^ (u64::from(job) << 32)
                                    ^ occurrence,
                            );
                            (h as f64 / u64::MAX as f64) < p
                        }
                    }
                }
        })
    }

    /// Renders the plan in the same JSON schema [`FaultPlan::parse_json`]
    /// accepts (round-trips exactly).
    pub fn render_json(&self) -> String {
        let mut out = format!("{{\"seed\":{},\"rules\":[", self.seed);
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"site\":\"{}\"", r.site.label()));
            if let Some(j) = r.job {
                out.push_str(&format!(",\"job\":{j}"));
            }
            match r.trigger {
                Trigger::Nth(n) => out.push_str(&format!(",\"nth\":{n}")),
                Trigger::Probability(p) => out.push_str(&format!(",\"probability\":{p}")),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses the fault-plan JSON format:
    ///
    /// ```json
    /// {"seed": 42,
    ///  "rules": [{"site": "directed-panic", "job": 2, "nth": 1},
    ///            {"site": "cache-miss", "probability": 0.25}]}
    /// ```
    ///
    /// `seed` and `rules` are required; per rule, `site` plus exactly one
    /// of `nth` / `probability` are required and `job` is optional.
    /// Unknown keys are rejected so typos fail loudly.
    pub fn parse_json(text: &str) -> Result<FaultPlan, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let plan = p.plan()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(plan)
    }
}

/// SplitMix64: the workspace's stock deterministic bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Minimal recursive-descent parser for the fault-plan schema. The build
/// environment has no route to crates.io (no serde), so this follows the
/// workspace convention of hand-rolled renderers and parsers.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return Err(format!("escape sequences unsupported at byte {}", self.pos));
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("expected number at byte {start}"))
    }

    fn integer(&mut self, what: &str) -> Result<u64, String> {
        let n = self.number()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(format!("{what} must be a non-negative integer, got {n}"));
        }
        Ok(n as u64)
    }

    fn plan(&mut self) -> Result<FaultPlan, String> {
        self.expect(b'{')?;
        let mut seed = None;
        let mut rules = None;
        loop {
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                Some(b',') if seed.is_some() || rules.is_some() => self.pos += 1,
                _ => {}
            }
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "seed" => seed = Some(self.integer("seed")?),
                "rules" => rules = Some(self.rule_array()?),
                other => return Err(format!("unknown fault-plan key \"{other}\"")),
            }
        }
        Ok(FaultPlan {
            seed: seed.ok_or("missing \"seed\"")?,
            rules: rules.ok_or("missing \"rules\"")?,
        })
    }

    fn rule_array(&mut self) -> Result<Vec<FaultRule>, String> {
        self.expect(b'[')?;
        let mut rules = Vec::new();
        loop {
            match self.peek() {
                Some(b']') => {
                    self.pos += 1;
                    return Ok(rules);
                }
                Some(b',') if !rules.is_empty() => self.pos += 1,
                _ => {}
            }
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(rules);
            }
            rules.push(self.rule()?);
        }
    }

    fn rule(&mut self) -> Result<FaultRule, String> {
        self.expect(b'{')?;
        let mut site = None;
        let mut job = None;
        let mut trigger = None;
        loop {
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                Some(b',') if site.is_some() || job.is_some() || trigger.is_some() => self.pos += 1,
                _ => {}
            }
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "site" => {
                    let label = self.string()?;
                    site = Some(
                        FaultSite::from_label(&label)
                            .ok_or_else(|| format!("unknown fault site \"{label}\""))?,
                    );
                }
                "job" => {
                    let j = self.integer("job")?;
                    job = Some(u32::try_from(j).map_err(|_| "job out of range".to_string())?);
                }
                "nth" => {
                    if trigger.is_some() {
                        return Err("rule has both \"nth\" and \"probability\"".to_string());
                    }
                    trigger = Some(Trigger::Nth(self.integer("nth")?));
                }
                "probability" => {
                    if trigger.is_some() {
                        return Err("rule has both \"nth\" and \"probability\"".to_string());
                    }
                    let p = self.number()?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability must be in [0, 1], got {p}"));
                    }
                    trigger = Some(Trigger::Probability(p));
                }
                other => return Err(format!("unknown rule key \"{other}\"")),
            }
        }
        Ok(FaultRule {
            site: site.ok_or("rule missing \"site\"")?,
            job,
            trigger: trigger.ok_or("rule missing \"nth\" or \"probability\"")?,
        })
    }
}

/// Per-job injection state: the plan, the job's submission index, and one
/// occurrence counter per site.
///
/// The batch runner creates one `JobFaults` per job and re-[`install`]s it
/// for every retry attempt, so occurrence counters span attempts — an
/// `Nth(1)` fault fires on the first attempt and passes on the retry.
#[derive(Debug)]
pub struct JobFaults {
    plan: Arc<FaultPlan>,
    job: u32,
    counts: [AtomicU64; SITE_COUNT],
    fired: AtomicU64,
}

impl JobFaults {
    /// A fresh context for `job` under `plan` (all counters zero).
    pub fn new(plan: &Arc<FaultPlan>, job: u32) -> JobFaults {
        JobFaults {
            plan: Arc::clone(plan),
            job,
            counts: Default::default(),
            fired: AtomicU64::new(0),
        }
    }

    /// How many occurrences of `site` this job has hit so far.
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.counts[site.index()].load(Ordering::Relaxed)
    }

    /// How many faults actually fired for this job (across all attempts).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

thread_local! {
    static CTX: RefCell<Option<Arc<JobFaults>>> = const { RefCell::new(None) };
}

/// RAII guard restoring the previously installed context (if any) on drop.
#[must_use = "dropping the guard uninstalls the fault context"]
pub struct FaultGuard {
    prev: Option<Arc<JobFaults>>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `ctx` as the calling thread's fault context until the guard
/// drops. Nested installs restore the outer context.
pub fn install(ctx: &Arc<JobFaults>) -> FaultGuard {
    let prev = CTX.with(|c| c.borrow_mut().replace(Arc::clone(ctx)));
    FaultGuard { prev }
}

/// Whether a fault context is installed on this thread.
pub fn is_active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Counts one occurrence of `site` for the installed job and returns
/// whether the plan fires a fault here. Emits a `FaultInjected` trace
/// event when it does. Always `false` (and counts nothing) when no
/// context is installed — injection sites cost one TLS read in
/// production.
pub fn should_inject(site: FaultSite) -> bool {
    CTX.with(|c| {
        let borrow = c.borrow();
        let Some(ctx) = borrow.as_ref() else {
            return false;
        };
        let occurrence = ctx.counts[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        if ctx.plan.decide(site, ctx.job, occurrence) {
            ctx.fired.fetch_add(1, Ordering::Relaxed);
            octo_trace::emit(TraceKind::FaultInjected { site: site.label() });
            true
        } else {
            false
        }
    })
}

/// How the batch runner re-runs jobs whose failure was transient
/// (deadline, hang, injected fault, panic) before quarantining them.
///
/// `max_attempts` counts *total* attempts, so `1` (the default) disables
/// retry. Backoff doubles per attempt from `base_backoff` plus a
/// deterministic jitter in `[0, base_backoff)` derived from
/// `jitter_seed`, the job index, and the attempt number — never from
/// wall-clock randomness, so schedules replay exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (first run included). `0` is treated as 1.
    pub max_attempts: u32,
    /// Base backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Seed for the deterministic jitter added to each backoff.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// No retries: a single attempt, no backoff.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and no backoff.
    pub fn attempts(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep after `attempt` (1-based) fails for `job`:
    /// `base * 2^(attempt-1) + jitter(jitter_seed, job, attempt)`.
    pub fn backoff_for(&self, job: u32, attempt: u32) -> Duration {
        let base = u64::try_from(self.base_backoff.as_micros()).unwrap_or(u64::MAX);
        if base == 0 {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
        let jitter =
            splitmix64(self.jitter_seed ^ (u64::from(job) << 32) ^ u64::from(attempt)) % base;
        Duration::from_micros(exp.saturating_add(jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::from_label(site.label()), Some(site));
        }
        assert_eq!(FaultSite::from_label("bogus"), None);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plan = FaultPlan::new(0).nth(FaultSite::SolverSolve, Some(4), 3);
        assert!(!plan.decide(FaultSite::SolverSolve, 4, 1));
        assert!(!plan.decide(FaultSite::SolverSolve, 4, 2));
        assert!(plan.decide(FaultSite::SolverSolve, 4, 3));
        assert!(!plan.decide(FaultSite::SolverSolve, 4, 4));
        // Other jobs and sites unaffected.
        assert!(!plan.decide(FaultSite::SolverSolve, 5, 3));
        assert!(!plan.decide(FaultSite::CacheMiss, 4, 3));
    }

    #[test]
    fn probability_edges_and_determinism() {
        let never = FaultPlan::new(7).probability(FaultSite::CacheMiss, None, 0.0);
        let always = FaultPlan::new(7).probability(FaultSite::CacheMiss, None, 1.0);
        let half = FaultPlan::new(7).probability(FaultSite::CacheMiss, None, 0.5);
        let mut fired = 0;
        for occ in 1..=1000 {
            assert!(!never.decide(FaultSite::CacheMiss, 0, occ));
            assert!(always.decide(FaultSite::CacheMiss, 0, occ));
            let a = half.decide(FaultSite::CacheMiss, 0, occ);
            let b = half.decide(FaultSite::CacheMiss, 0, occ);
            assert_eq!(a, b, "decisions must be deterministic");
            fired += u64::from(a);
        }
        assert!(
            (300..700).contains(&fired),
            "p=0.5 fired {fired}/1000 times"
        );
        // A different seed produces a different firing pattern.
        let other = FaultPlan::new(8).probability(FaultSite::CacheMiss, None, 0.5);
        assert!(
            (1..=1000).any(|occ| half.decide(FaultSite::CacheMiss, 0, occ)
                != other.decide(FaultSite::CacheMiss, 0, occ)),
            "seeds 7 and 8 agreed on all 1000 occurrences"
        );
    }

    #[test]
    fn json_round_trips() {
        let plan = FaultPlan::new(42)
            .nth(FaultSite::DirectedPanic, Some(2), 1)
            .probability(FaultSite::CacheMiss, None, 0.25)
            .nth(FaultSite::DirectedHang, Some(7), 1);
        let json = plan.render_json();
        let back = FaultPlan::parse_json(&json).expect("round-trip parse");
        assert_eq!(back, plan);
        assert_eq!(back.render_json(), json);
    }

    #[test]
    fn parse_accepts_whitespace_and_rejects_garbage() {
        let ok = FaultPlan::parse_json(
            "{ \"seed\" : 1 ,\n \"rules\" : [ { \"site\" : \"p4-replay\" , \"nth\" : 2 } ] }",
        )
        .expect("whitespace tolerated");
        assert_eq!(ok.rules().len(), 1);
        assert_eq!(ok.rules()[0].site, FaultSite::P4Replay);

        assert!(FaultPlan::parse_json("{}").is_err(), "missing keys");
        assert!(
            FaultPlan::parse_json("{\"seed\":1,\"rules\":[],\"x\":0}").is_err(),
            "unknown key"
        );
        assert!(
            FaultPlan::parse_json("{\"seed\":1,\"rules\":[{\"site\":\"nope\",\"nth\":1}]}")
                .is_err(),
            "unknown site"
        );
        assert!(
            FaultPlan::parse_json(
                "{\"seed\":1,\"rules\":[{\"site\":\"cache-miss\",\"nth\":1,\"probability\":0.5}]}"
            )
            .is_err(),
            "both triggers"
        );
        assert!(
            FaultPlan::parse_json("{\"seed\":1,\"rules\":[{\"site\":\"cache-miss\"}]}").is_err(),
            "no trigger"
        );
        assert!(
            FaultPlan::parse_json(
                "{\"seed\":1,\"rules\":[{\"site\":\"cache-miss\",\"probability\":1.5}]}"
            )
            .is_err(),
            "probability out of range"
        );
        assert!(
            FaultPlan::parse_json("{\"seed\":1,\"rules\":[]} x").is_err(),
            "trailing data"
        );
    }

    #[test]
    fn should_inject_is_inert_without_context() {
        assert!(!is_active());
        assert!(!should_inject(FaultSite::SolverSolve));
    }

    #[test]
    fn should_inject_counts_occurrences_across_installs() {
        let plan = Arc::new(FaultPlan::new(0).nth(FaultSite::P4Replay, Some(9), 2));
        let ctx = Arc::new(JobFaults::new(&plan, 9));
        {
            let _g = install(&ctx);
            assert!(is_active());
            assert!(!should_inject(FaultSite::P4Replay)); // occurrence 1
        }
        assert!(!is_active());
        {
            // Re-install (a retry attempt): the counter carries over.
            let _g = install(&ctx);
            assert!(should_inject(FaultSite::P4Replay)); // occurrence 2 fires
            assert!(!should_inject(FaultSite::P4Replay)); // occurrence 3
        }
        assert_eq!(ctx.occurrences(FaultSite::P4Replay), 3);
        assert_eq!(ctx.fired(), 1);
    }

    #[test]
    fn nested_installs_restore_the_outer_context() {
        let plan = Arc::new(FaultPlan::new(0).nth(FaultSite::CacheMiss, None, 1));
        let outer = Arc::new(JobFaults::new(&plan, 1));
        let inner = Arc::new(JobFaults::new(&plan, 2));
        let _a = install(&outer);
        {
            let _b = install(&inner);
            assert!(should_inject(FaultSite::CacheMiss));
        }
        assert_eq!(inner.occurrences(FaultSite::CacheMiss), 1);
        // Back on the outer context: its own counter starts fresh.
        assert!(should_inject(FaultSite::CacheMiss));
        assert_eq!(outer.occurrences(FaultSite::CacheMiss), 1);
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            jitter_seed: 99,
        };
        for job in 0..8u32 {
            for attempt in 1..=3u32 {
                let a = p.backoff_for(job, attempt);
                assert_eq!(
                    a,
                    p.backoff_for(job, attempt),
                    "jitter must be seeded, not random"
                );
                let exp = 100u64 << (attempt - 1);
                let micros = u64::try_from(a.as_micros()).unwrap();
                assert!(
                    (exp..exp + 100).contains(&micros),
                    "attempt {attempt}: backoff {micros}us outside [{exp}, {})",
                    exp + 100
                );
            }
        }
        // Jitter varies across jobs (not a constant).
        let spread: std::collections::HashSet<u128> = (0..16u32)
            .map(|j| p.backoff_for(j, 1).as_micros())
            .collect();
        assert!(spread.len() > 1, "jitter identical for all jobs");
        assert_eq!(RetryPolicy::default().backoff_for(3, 1), Duration::ZERO);
    }
}
