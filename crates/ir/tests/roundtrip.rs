//! Property tests: printer/parser round-trips over random programs.

use octo_ir::builder::{FunctionBuilder, ProgramBuilder};
use octo_ir::canonicalize_program;
use octo_ir::parse::parse_program;
use octo_ir::printer::{print_program, print_program_canonical};
use octo_ir::{BinOp, Operand, Program, RegionKind, Terminator, UnOp, Width};
use proptest::prelude::*;

/// Strategy for one straight-line instruction emitted into a builder.
#[derive(Debug, Clone)]
enum GenInst {
    Const(u64),
    Bin(u8, u64),
    Un(u8),
    Alloc(u8, bool),
    LoadStore(u8, u8),
    FileOps,
    Getc,
}

fn arb_inst() -> impl Strategy<Value = GenInst> {
    prop_oneof![
        any::<u64>().prop_map(GenInst::Const),
        (any::<u8>(), any::<u64>()).prop_map(|(o, v)| GenInst::Bin(o, v)),
        any::<u8>().prop_map(GenInst::Un),
        (1u8..64, any::<bool>()).prop_map(|(s, h)| GenInst::Alloc(s, h)),
        (any::<u8>(), 0u8..8).prop_map(|(w, o)| GenInst::LoadStore(w, o)),
        Just(GenInst::FileOps),
        Just(GenInst::Getc),
    ]
}

const BIN_OPS: [BinOp; 12] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::ShrL,
    BinOp::CmpEq,
    BinOp::CmpNe,
    BinOp::CmpLtU,
    BinOp::CmpLeS,
];

const WIDTHS: [Width; 4] = [Width::W1, Width::W2, Width::W4, Width::W8];

/// Builds a random (but always valid) program: a `main` with `n_blocks`
/// blocks of random instructions, block `i` falling through to `i + 1` or
/// branching forward, and a helper function called from the entry.
fn build_program(blocks: Vec<Vec<GenInst>>, branchy: Vec<bool>) -> Program {
    let mut pb = ProgramBuilder::new();
    let helper = pb.declare("helper");

    let mut fb = FunctionBuilder::new("main", 0);
    let fd = fb.emit_open();
    let buf = fb.emit_alloc(Operand::Imm(64), RegionKind::Heap);
    let mut last = fb.emit_call(helper, vec![fd.into()]);
    let n = blocks.len();
    let block_ids: Vec<_> = (0..n).map(|i| fb.block(&format!("b{i}"))).collect();
    let done = fb.block("done");
    fb.terminate(Terminator::Jmp(*block_ids.first().unwrap_or(&done)));

    for (i, insts) in blocks.iter().enumerate() {
        fb.select(block_ids[i]);
        for g in insts {
            last = match g {
                GenInst::Const(v) => fb.emit_const(*v),
                GenInst::Bin(o, v) => fb.emit_bin(
                    BIN_OPS[*o as usize % BIN_OPS.len()],
                    last.into(),
                    Operand::Imm(*v),
                ),
                GenInst::Un(o) => {
                    fb.emit_un(if *o % 2 == 0 { UnOp::Not } else { UnOp::Neg }, last.into())
                }
                GenInst::Alloc(s, heap) => fb.emit_alloc(
                    Operand::Imm(u64::from(*s)),
                    if *heap {
                        RegionKind::Heap
                    } else {
                        RegionKind::Stack
                    },
                ),
                GenInst::LoadStore(w, off) => {
                    let width = WIDTHS[*w as usize % WIDTHS.len()];
                    fb.emit_store(buf.into(), u64::from(*off), last.into(), width);
                    fb.emit_load(buf.into(), u64::from(*off), width)
                }
                GenInst::FileOps => fb.emit_read(fd.into(), buf.into(), Operand::Imm(8)),
                GenInst::Getc => fb.emit_getc(fd.into()),
            };
        }
        let next = block_ids.get(i + 1).copied().unwrap_or(done);
        if branchy.get(i).copied().unwrap_or(false) {
            fb.terminate(Terminator::Br {
                cond: last.into(),
                then_bb: next,
                else_bb: done,
            });
        } else {
            fb.terminate(Terminator::Jmp(next));
        }
    }
    fb.select(done);
    fb.terminate(Terminator::Halt { code: last.into() });
    pb.add(fb.finish().expect("valid main")).expect("add main");

    let mut hb = FunctionBuilder::new("helper", 1);
    let x = hb.param(0);
    let y = hb.emit_bin(BinOp::Add, x.into(), Operand::Imm(1));
    hb.terminate(Terminator::Ret(Some(y.into())));
    pb.define(helper, hb.finish().expect("valid helper"))
        .expect("define helper");
    pb.build("main").expect("valid program")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse(print(p)) == p`: printing then parsing reproduces the exact
    /// program, structurally — every function, block, instruction and
    /// terminator — not merely a textual fixed point.
    #[test]
    fn print_parse_round_trips_exactly(
        blocks in prop::collection::vec(prop::collection::vec(arb_inst(), 0..6), 1..5),
        branchy in prop::collection::vec(any::<bool>(), 0..5),
    ) {
        let p1 = build_program(blocks, branchy);
        octo_ir::validate::validate(&p1).expect("generated program valid");
        let text1 = print_program(&p1);
        let p2 = parse_program(&text1).expect("printed program parses");
        prop_assert_eq!(&p1, &p2, "parse(print(p)) differs from p");
        // The textual fixed point follows, but check it anyway: a printer
        // that loses information could still satisfy == via a forgiving
        // parser default.
        let text2 = print_program(&p2);
        prop_assert_eq!(&text1, &text2, "print/parse not a fixed point");
    }

    /// `parse(print_canonical(p)) == canonicalize(p)`: the canonical
    /// printer is a parse fixed point onto the canonical form, and the
    /// canonical form is idempotent.
    #[test]
    fn canonical_print_parse_round_trips(
        blocks in prop::collection::vec(prop::collection::vec(arb_inst(), 0..6), 1..5),
        branchy in prop::collection::vec(any::<bool>(), 0..5),
    ) {
        let p = build_program(blocks, branchy);
        let canon = canonicalize_program(&p);
        prop_assert_eq!(&canon, &canonicalize_program(&canon), "canonicalize not idempotent");
        let text = print_program_canonical(&p);
        let reparsed = parse_program(&text).expect("canonical text parses");
        prop_assert_eq!(&reparsed, &canon, "parse(print_canonical(p)) != canonicalize(p)");
        prop_assert_eq!(
            print_program_canonical(&reparsed), text,
            "canonical text not a fixed point"
        );
    }
}
