//! Program statistics — the "binary size" metadata of the dataset.
//!
//! The paper characterises its dataset by binary size ("ranging from
//! 2,000 to 557,000 lines of code"); MicroIR's analogue is instruction,
//! block, and function counts, plus a breakdown of the instruction mix.

use std::collections::BTreeMap;

use crate::inst::{Inst, Terminator};
use crate::program::Program;

/// Aggregate statistics for one program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramStats {
    /// Number of functions.
    pub functions: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Total instructions (excluding terminators).
    pub instructions: usize,
    /// Total terminators (== blocks).
    pub terminators: usize,
    /// Conditional branch + switch terminators (decision points).
    pub branches: usize,
    /// Direct call instructions.
    pub calls: usize,
    /// Indirect calls and jumps (the CFG-hostile constructs).
    pub indirect_transfers: usize,
    /// File-input instructions (`open`/`read`/`getc`/`seek`/`tell`/
    /// `size`/`mmap`).
    pub file_ops: usize,
    /// Memory loads and stores.
    pub memory_ops: usize,
    /// Instruction count per function, by name.
    pub per_function: BTreeMap<String, usize>,
}

impl ProgramStats {
    /// Collects statistics over `program`.
    pub fn collect(program: &Program) -> ProgramStats {
        let mut stats = ProgramStats {
            functions: program.function_count(),
            ..ProgramStats::default()
        };
        for (_, func) in program.iter() {
            let mut fn_insts = 0usize;
            for block in &func.blocks {
                stats.blocks += 1;
                stats.terminators += 1;
                match &block.term {
                    Terminator::Br { .. } | Terminator::Switch { .. } => stats.branches += 1,
                    Terminator::JmpIndirect { .. } => stats.indirect_transfers += 1,
                    _ => {}
                }
                for inst in &block.insts {
                    stats.instructions += 1;
                    fn_insts += 1;
                    match inst {
                        Inst::Call { .. } => stats.calls += 1,
                        Inst::CallIndirect { .. } => stats.indirect_transfers += 1,
                        Inst::Load { .. } | Inst::Store { .. } => stats.memory_ops += 1,
                        Inst::FileOpen { .. }
                        | Inst::FileRead { .. }
                        | Inst::FileGetc { .. }
                        | Inst::FileSeek { .. }
                        | Inst::FileTell { .. }
                        | Inst::FileSize { .. }
                        | Inst::MemMap { .. } => stats.file_ops += 1,
                        _ => {}
                    }
                }
            }
            stats.per_function.insert(func.name.clone(), fn_insts);
        }
        stats
    }

    /// The largest function by instruction count.
    pub fn largest_function(&self) -> Option<(&str, usize)> {
        self.per_function
            .iter()
            .max_by_key(|(_, &n)| n)
            .map(|(name, &n)| (name.as_str(), n))
    }
}

impl std::fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} functions, {} blocks, {} instructions ({} branches, {} calls, \
             {} indirect, {} file ops, {} memory ops)",
            self.functions,
            self.blocks,
            self.instructions,
            self.branches,
            self.calls,
            self.indirect_transfers,
            self.file_ops,
            self.memory_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn counts_basic_shapes() {
        let src = r#"
func main() {
entry:
    fd = open
    b = getc fd
    c = eq b, 1
    br c, yes, no
yes:
    r = call f(b)
    halt r
no:
    buf = alloc 4
    store.1 buf, b
    v = load.1 buf
    halt v
}
func f(x) {
entry:
    t = baddr out
    ijmp t
out:
    ret x
}
"#;
        let p = parse_program(src).unwrap();
        let s = ProgramStats::collect(&p);
        assert_eq!(s.functions, 2);
        assert_eq!(s.blocks, 5);
        assert_eq!(s.branches, 1);
        assert_eq!(s.calls, 1);
        assert_eq!(s.indirect_transfers, 1);
        assert_eq!(s.file_ops, 2); // open + getc
        assert_eq!(s.memory_ops, 2); // store + load
        assert_eq!(s.per_function["main"], 7);
        assert_eq!(s.largest_function(), Some(("main", 7)));
        assert!(s.to_string().contains("2 functions"));
    }

    #[test]
    fn empty_function_breakdown() {
        let p = parse_program("func main() {\nentry:\n halt 0\n}\n").unwrap();
        let s = ProgramStats::collect(&p);
        assert_eq!(s.instructions, 0);
        assert_eq!(s.terminators, 1);
        assert_eq!(s.per_function["main"], 0);
    }
}
