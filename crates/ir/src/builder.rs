//! Programmatic construction of MicroIR functions and programs.
//!
//! The builder supports forward references to blocks and functions, so
//! mutually recursive code can be constructed in one pass. It is used by the
//! test suites and the property-based random program generator; the corpus
//! programs are written in the textual dialect instead (see [`crate::parse`]).

use std::collections::HashMap;

use crate::inst::{Inst, Terminator};
use crate::program::{BasicBlock, Function, Program};
use crate::types::{BinOp, BlockId, CheckedOp, FuncId, Operand, Reg, RegionKind, UnOp, Width};

/// Errors produced when finalising a builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(pub String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "build error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Program`] out of declared and defined functions.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    defs: Vec<Option<Function>>,
    names: Vec<String>,
    by_name: HashMap<String, FuncId>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declares a function name (forward reference) and returns its id.
    ///
    /// Declaring the same name twice returns the same id.
    pub fn declare(&mut self, name: &str) -> FuncId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = FuncId(self.defs.len() as u32);
        self.defs.push(None);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Supplies the definition for a previously declared function.
    ///
    /// # Errors
    /// Fails if the function was already defined or the name mismatches the
    /// declaration.
    pub fn define(&mut self, id: FuncId, func: Function) -> Result<(), BuildError> {
        let slot = self
            .defs
            .get_mut(id.0 as usize)
            .ok_or_else(|| BuildError(format!("unknown function id {id}")))?;
        if slot.is_some() {
            return Err(BuildError(format!(
                "function `{}` defined twice",
                self.names[id.0 as usize]
            )));
        }
        if func.name != self.names[id.0 as usize] {
            return Err(BuildError(format!(
                "definition name `{}` does not match declaration `{}`",
                func.name, self.names[id.0 as usize]
            )));
        }
        *slot = Some(func);
        Ok(())
    }

    /// Declares and defines in one step.
    pub fn add(&mut self, func: Function) -> Result<FuncId, BuildError> {
        let id = self.declare(&func.name.clone());
        self.define(id, func)?;
        Ok(id)
    }

    /// Finalises the program with the given entry function name.
    ///
    /// # Errors
    /// Fails if any declared function lacks a definition or the entry does
    /// not exist.
    pub fn build(self, entry: &str) -> Result<Program, BuildError> {
        let mut funcs = Vec::with_capacity(self.defs.len());
        for (i, d) in self.defs.into_iter().enumerate() {
            funcs.push(d.ok_or_else(|| {
                BuildError(format!(
                    "function `{}` declared but never defined",
                    self.names[i]
                ))
            })?);
        }
        Program::from_functions(funcs, entry).map_err(BuildError)
    }
}

/// Builds one [`Function`] incrementally.
///
/// ```
/// use octo_ir::builder::FunctionBuilder;
/// use octo_ir::{Operand, Terminator};
///
/// let mut fb = FunctionBuilder::new("double", 1);
/// let x = fb.param(0);
/// let two = fb.emit_const(2);
/// let y = fb.emit_bin(octo_ir::BinOp::Mul, x.into(), two.into());
/// fb.terminate(Terminator::Ret(Some(Operand::Reg(y))));
/// let func = fb.finish()?;
/// assert_eq!(func.n_params, 1);
/// # Ok::<(), octo_ir::builder::BuildError>(())
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    n_params: u16,
    next_reg: u16,
    blocks: Vec<(String, Vec<Inst>, Option<Terminator>)>,
    labels: HashMap<String, BlockId>,
    current: usize,
}

impl FunctionBuilder {
    /// Starts a function with `n_params` parameters; the entry block is
    /// created automatically and selected as the current block.
    pub fn new(name: &str, n_params: u16) -> FunctionBuilder {
        let mut fb = FunctionBuilder {
            name: name.to_string(),
            n_params,
            next_reg: n_params,
            blocks: Vec::new(),
            labels: HashMap::new(),
            current: 0,
        };
        let entry = fb.block("entry");
        fb.select(entry);
        fb
    }

    /// The register holding parameter `index`.
    ///
    /// # Panics
    /// Panics if `index >= n_params`.
    pub fn param(&self, index: u16) -> Reg {
        assert!(index < self.n_params, "parameter index out of range");
        Reg(index)
    }

    /// Allocates a fresh register.
    pub fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Creates (or returns the id of) a block with the given label.
    pub fn block(&mut self, label: &str) -> BlockId {
        if let Some(&id) = self.labels.get(label) {
            return id;
        }
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((label.to_string(), Vec::new(), None));
        self.labels.insert(label.to_string(), id);
        id
    }

    /// Makes `block` the target of subsequent `emit_*` calls.
    pub fn select(&mut self, block: BlockId) {
        self.current = block.0 as usize;
    }

    /// Appends a raw instruction to the current block.
    ///
    /// # Panics
    /// Panics if the current block is already terminated.
    pub fn emit(&mut self, inst: Inst) {
        let (_, insts, term) = &mut self.blocks[self.current];
        assert!(term.is_none(), "emitting into a terminated block");
        insts.push(inst);
    }

    /// Terminates the current block.
    ///
    /// # Panics
    /// Panics if the current block is already terminated.
    pub fn terminate(&mut self, term: Terminator) {
        let slot = &mut self.blocks[self.current].2;
        assert!(slot.is_none(), "block terminated twice");
        *slot = Some(term);
    }

    /// `dst = value`; returns `dst`.
    pub fn emit_const(&mut self, value: u64) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Const { dst, value });
        dst
    }

    /// `dst = op(lhs, rhs)`; returns `dst`.
    pub fn emit_bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Bin { dst, op, lhs, rhs });
        dst
    }

    /// `dst = op(src)`; returns `dst`.
    pub fn emit_un(&mut self, op: UnOp, src: Operand) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Un { dst, op, src });
        dst
    }

    /// Overflow-checked arithmetic; returns the destination register.
    pub fn emit_checked(&mut self, op: CheckedOp, width: Width, lhs: Operand, rhs: Operand) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::CheckedBin {
            dst,
            op,
            width,
            lhs,
            rhs,
        });
        dst
    }

    /// `dst = *(addr + offset)`; returns `dst`.
    pub fn emit_load(&mut self, addr: Operand, offset: u64, width: Width) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Load {
            dst,
            addr,
            offset,
            width,
        });
        dst
    }

    /// `*(addr + offset) = src`.
    pub fn emit_store(&mut self, addr: Operand, offset: u64, src: Operand, width: Width) {
        self.emit(Inst::Store {
            addr,
            offset,
            src,
            width,
        });
    }

    /// Allocates memory; returns the register holding the base address.
    pub fn emit_alloc(&mut self, size: Operand, region: RegionKind) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Alloc { dst, size, region });
        dst
    }

    /// Calls `callee`; returns the register holding the return value.
    pub fn emit_call(&mut self, callee: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::Call {
            dst: Some(dst),
            callee,
            args,
        });
        dst
    }

    /// Calls `callee`, discarding any return value.
    pub fn emit_call_void(&mut self, callee: FuncId, args: Vec<Operand>) {
        self.emit(Inst::Call {
            dst: None,
            callee,
            args,
        });
    }

    /// Opens the input file; returns the fd register.
    pub fn emit_open(&mut self) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::FileOpen { dst });
        dst
    }

    /// Reads from the input file; returns the count register.
    pub fn emit_read(&mut self, fd: Operand, buf: Operand, len: Operand) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::FileRead { dst, fd, buf, len });
        dst
    }

    /// Reads one byte from the input file; returns the value register.
    pub fn emit_getc(&mut self, fd: Operand) -> Reg {
        let dst = self.fresh();
        self.emit(Inst::FileGetc { dst, fd });
        dst
    }

    /// Finalises the function.
    ///
    /// # Errors
    /// Fails if any block lacks a terminator.
    pub fn finish(self) -> Result<Function, BuildError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (label, insts, term) in self.blocks {
            // A block ending in `trap` never falls through; synthesise an
            // unreachable return so sources need not write one.
            let term = match term {
                Some(t) => t,
                None if matches!(insts.last(), Some(Inst::Trap { .. })) => Terminator::Ret(None),
                None => {
                    return Err(BuildError(format!(
                        "block `{label}` in function `{}` has no terminator",
                        self.name
                    )))
                }
            };
            blocks.push(BasicBlock { label, insts, term });
        }
        if blocks.is_empty() {
            return Err(BuildError(format!(
                "function `{}` has no blocks",
                self.name
            )));
        }
        Ok(Function {
            name: self.name,
            n_params: self.n_params,
            n_regs: self.next_reg.max(self.n_params).max(1),
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_two_block_function() {
        let mut fb = FunctionBuilder::new("f", 1);
        let x = fb.param(0);
        let c = fb.emit_bin(BinOp::CmpEq, x.into(), Operand::Imm(0));
        let yes = fb.block("yes");
        let no = fb.block("no");
        fb.terminate(Terminator::Br {
            cond: c.into(),
            then_bb: yes,
            else_bb: no,
        });
        fb.select(yes);
        fb.terminate(Terminator::Ret(Some(Operand::Imm(1))));
        fb.select(no);
        fb.terminate(Terminator::Ret(Some(Operand::Imm(0))));
        let f = fb.finish().unwrap();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.n_regs, 2);
        assert_eq!(f.block_by_label("yes"), Some(BlockId(1)));
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let fb = FunctionBuilder::new("f", 0);
        let err = fb.finish().unwrap_err();
        assert!(err.0.contains("no terminator"));
    }

    #[test]
    fn program_builder_forward_reference() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee");
        let mut fb = FunctionBuilder::new("main", 0);
        let r = fb.emit_call(callee, vec![]);
        fb.terminate(Terminator::Ret(Some(r.into())));
        pb.add(fb.finish().unwrap()).unwrap();

        let mut fb = FunctionBuilder::new("callee", 0);
        fb.terminate(Terminator::Ret(Some(Operand::Imm(7))));
        pb.define(callee, fb.finish().unwrap()).unwrap();

        let p = pb.build("main").unwrap();
        assert_eq!(p.function_count(), 2);
    }

    #[test]
    fn undefined_declaration_fails_build() {
        let mut pb = ProgramBuilder::new();
        pb.declare("ghost");
        let err = pb.build("ghost").unwrap_err();
        assert!(err.0.contains("never defined"));
    }

    #[test]
    fn double_definition_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut fb = FunctionBuilder::new("f", 0);
        fb.terminate(Terminator::Ret(None));
        let f = fb.finish().unwrap();
        let id = pb.add(f.clone()).unwrap();
        assert!(pb.define(id, f).is_err());
    }
}
