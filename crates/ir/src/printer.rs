//! Pretty-printer emitting the assembler dialect parsed by [`crate::parse`].
//!
//! `parse(print(p))` reproduces `p` up to register names (the printer uses
//! canonical `rN` names); the round-trip property is exercised by the crate's
//! property tests.

use std::fmt::Write as _;

use crate::inst::{Inst, Terminator};
use crate::program::{Function, Program};
use crate::types::Operand;

/// Renders a whole program in assembler syntax.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (_, f) in p.iter() {
        print_function(f, p, &mut out);
        out.push('\n');
    }
    out
}

/// Renders the whole program in canonical form: every function is passed
/// through [`crate::canon::canonicalize_function`] first, so block order,
/// labels and register numbers are normalized. The output is a parse
/// fixed point: `parse(print_program_canonical(p))` equals
/// `canonicalize_program(p)`.
pub fn print_program_canonical(p: &Program) -> String {
    let mut out = String::new();
    for (_, f) in p.iter() {
        print_function_canonical(f, p, &mut out);
        out.push('\n');
    }
    out
}

/// Renders one function in canonical form, appending to `out`. `p` is
/// only consulted for callee names (function ids are preserved by
/// canonicalization).
pub fn print_function_canonical(f: &Function, p: &Program, out: &mut String) {
    let canon = crate::canon::canonicalize_function(f);
    print_function(&canon, p, out);
}

/// Renders one function in assembler syntax, appending to `out`.
pub fn print_function(f: &Function, p: &Program, out: &mut String) {
    let params: Vec<String> = (0..f.n_params).map(|i| format!("r{i}")).collect();
    let _ = writeln!(out, "func {}({}) {{", f.name, params.join(", "));
    for block in &f.blocks {
        let _ = writeln!(out, "{}:", block.label);
        for inst in &block.insts {
            let _ = writeln!(out, "    {}", render_inst(inst, f, p));
        }
        let _ = writeln!(out, "    {}", render_term(&block.term, f));
    }
    let _ = writeln!(out, "}}");
}

fn render_operand(op: &Operand) -> String {
    op.to_string()
}

fn render_inst(inst: &Inst, f: &Function, p: &Program) -> String {
    let label_of = |b: &crate::types::BlockId| f.blocks[b.0 as usize].label.clone();
    match inst {
        Inst::Const { dst, value } => {
            if *value > 0xFFFF {
                format!("{dst} = {value:#x}")
            } else {
                format!("{dst} = {value}")
            }
        }
        Inst::Move { dst, src } => format!("{dst} = {}", render_operand(src)),
        Inst::Bin { dst, op, lhs, rhs } => format!(
            "{dst} = {} {}, {}",
            op.mnemonic(),
            render_operand(lhs),
            render_operand(rhs)
        ),
        Inst::Un { dst, op, src } => {
            format!("{dst} = {} {}", op.mnemonic(), render_operand(src))
        }
        Inst::CheckedBin {
            dst,
            op,
            width,
            lhs,
            rhs,
        } => format!(
            "{dst} = {}.{} {}, {}",
            op.mnemonic(),
            width,
            render_operand(lhs),
            render_operand(rhs)
        ),
        Inst::Load {
            dst,
            addr,
            offset,
            width,
        } => {
            if *offset == 0 {
                format!("{dst} = load.{width} {}", render_operand(addr))
            } else {
                format!("{dst} = load.{width} {} + {offset}", render_operand(addr))
            }
        }
        Inst::Store {
            addr,
            offset,
            src,
            width,
        } => {
            if *offset == 0 {
                format!(
                    "store.{width} {}, {}",
                    render_operand(addr),
                    render_operand(src)
                )
            } else {
                format!(
                    "store.{width} {} + {offset}, {}",
                    render_operand(addr),
                    render_operand(src)
                )
            }
        }
        Inst::Alloc { dst, size, region } => {
            let kw = match region {
                crate::types::RegionKind::Heap => "alloc",
                crate::types::RegionKind::Stack => "salloc",
            };
            format!("{dst} = {kw} {}", render_operand(size))
        }
        Inst::Call { dst, callee, args } => {
            let name = &p.func(*callee).name;
            let args: Vec<String> = args.iter().map(render_operand).collect();
            match dst {
                Some(d) => format!("{d} = call {name}({})", args.join(", ")),
                None => format!("call {name}({})", args.join(", ")),
            }
        }
        Inst::CallIndirect { dst, target, args } => {
            let args: Vec<String> = args.iter().map(render_operand).collect();
            match dst {
                Some(d) => format!(
                    "{d} = icall {}({})",
                    render_operand(target),
                    args.join(", ")
                ),
                None => format!("icall {}({})", render_operand(target), args.join(", ")),
            }
        }
        Inst::FuncAddr { dst, func } => format!("{dst} = faddr {}", p.func(*func).name),
        Inst::BlockAddr { dst, block } => format!("{dst} = baddr {}", label_of(block)),
        Inst::FileOpen { dst } => format!("{dst} = open"),
        Inst::FileRead { dst, fd, buf, len } => format!(
            "{dst} = read {}, {}, {}",
            render_operand(fd),
            render_operand(buf),
            render_operand(len)
        ),
        Inst::FileGetc { dst, fd } => format!("{dst} = getc {}", render_operand(fd)),
        Inst::FileSeek { fd, pos } => {
            format!("seek {}, {}", render_operand(fd), render_operand(pos))
        }
        Inst::FileTell { dst, fd } => format!("{dst} = tell {}", render_operand(fd)),
        Inst::FileSize { dst, fd } => format!("{dst} = fsize {}", render_operand(fd)),
        Inst::MemMap { dst, fd } => format!("{dst} = mmap {}", render_operand(fd)),
        Inst::Trap { code } => format!("trap {code}"),
        Inst::Nop => "nop".to_string(),
    }
}

fn render_term(term: &Terminator, f: &Function) -> String {
    let label_of = |b: &crate::types::BlockId| f.blocks[b.0 as usize].label.clone();
    match term {
        Terminator::Jmp(b) => format!("jmp {}", label_of(b)),
        Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } => format!(
            "br {}, {}, {}",
            render_operand(cond),
            label_of(then_bb),
            label_of(else_bb)
        ),
        Terminator::Switch {
            scrut,
            cases,
            default,
        } => {
            let mut arms: Vec<String> = cases
                .iter()
                .map(|(v, b)| format!("{v} -> {}", label_of(b)))
                .collect();
            arms.push(format!("_ -> {}", label_of(default)));
            format!("switch {} {{ {} }}", render_operand(scrut), arms.join(", "))
        }
        Terminator::JmpIndirect { target } => format!("ijmp {}", render_operand(target)),
        Terminator::Ret(None) => "ret".to_string(),
        Terminator::Ret(Some(v)) => format!("ret {}", render_operand(v)),
        Terminator::Halt { code } => format!("halt {}", render_operand(code)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    const SAMPLE: &str = r#"
func main() {
entry:
    fd = open
    buf = alloc 32
    n = read fd, buf, 32
    v = load.4 buf + 4
    c = eq v, 0x1234_5678
    br c, hit, miss
hit:
    store.1 buf + 1, 9
    r = call helper(v, n)
    ret r
miss:
    switch v { 0 -> hit, _ -> bye }
bye:
    halt 3
}

func helper(a, b) {
entry:
    x = cmul.4 a, b
    ret x
}
"#;

    #[test]
    fn print_parse_roundtrip_is_stable() {
        let p1 = parse_program(SAMPLE).unwrap();
        let text1 = print_program(&p1);
        let p2 = parse_program(&text1).unwrap();
        let text2 = print_program(&p2);
        // Printing canonicalises register names; a second round-trip must be
        // a fixed point.
        assert_eq!(text1, text2);
        assert_eq!(p1.function_count(), p2.function_count());
        for ((_, f1), (_, f2)) in p1.iter().zip(p2.iter()) {
            assert_eq!(f1.blocks.len(), f2.blocks.len());
            assert_eq!(f1.inst_count(), f2.inst_count());
        }
    }

    #[test]
    fn printed_text_contains_labels_and_calls() {
        let p = parse_program(SAMPLE).unwrap();
        let text = print_program(&p);
        assert!(text.contains("miss:"));
        assert!(text.contains("call helper("));
        assert!(text.contains("switch "));
    }
}
