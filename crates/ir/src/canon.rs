//! Canonicalization of MicroIR functions and programs.
//!
//! Canonical form makes two structurally equal-modulo-naming programs
//! *identical*: blocks are reordered into an entry-first DFS preorder,
//! labels are renamed positionally (`b0`, `b1`, …), and registers are
//! renumbered by definition order (parameters keep their slots). The
//! clone fingerprinter (`octo-clone`) hashes canonical instruction
//! streams so register renaming and block reordering cannot change a
//! fingerprint, and `octopocs lint --canonical` prints the same form for
//! diffing hand-written variants.
//!
//! Canonical text is a parse fixed point: `parse(print_canonical(p))`
//! rebuilds exactly `canonicalize_program(p)` for any parseable program.
//! This relies on two assembler properties: blocks are pre-created in
//! label-definition order, and registers are pre-created in
//! definition-statement order (so a block that *uses* a register may be
//! printed before the block defining it).
//!
//! Limits: blocks unreachable from the entry via static terminator edges
//! and `baddr` references keep their relative input order at the tail of
//! the function, so the canonical form of a function is only
//! order-insensitive for its reachable region.

use std::collections::HashMap;

use crate::inst::{Inst, Terminator};
use crate::program::{BasicBlock, Function, Program};
use crate::types::{BlockId, Operand, Reg};

/// The canonical visit order of `f`'s blocks: entry-first DFS preorder
/// over each block's static terminator successors (syntactic order) and
/// `baddr` targets (instruction order), with unreachable blocks appended
/// in their original order.
pub fn canonical_block_order(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut order: Vec<BlockId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut stack = vec![f.entry()];
    while let Some(b) = stack.pop() {
        let bi = b.0 as usize;
        if bi >= n || seen[bi] {
            continue;
        }
        seen[bi] = true;
        order.push(b);
        let block = &f.blocks[bi];
        let mut succs = block.term.static_successors();
        for inst in &block.insts {
            if let Inst::BlockAddr { block, .. } = inst {
                succs.push(*block);
            }
        }
        // Push in reverse so the first successor is visited first.
        for s in succs.into_iter().rev() {
            stack.push(s);
        }
    }
    for (bi, was_seen) in seen.iter().enumerate() {
        if !was_seen {
            order.push(BlockId(bi as u32));
        }
    }
    order
}

/// Rewrites every register and block reference in `inst`.
fn map_inst(inst: &Inst, reg: &impl Fn(Reg) -> Reg, blk: &impl Fn(BlockId) -> BlockId) -> Inst {
    let op = |o: &Operand| match o {
        Operand::Reg(r) => Operand::Reg(reg(*r)),
        Operand::Imm(v) => Operand::Imm(*v),
    };
    match inst {
        Inst::Const { dst, value } => Inst::Const {
            dst: reg(*dst),
            value: *value,
        },
        Inst::Move { dst, src } => Inst::Move {
            dst: reg(*dst),
            src: op(src),
        },
        Inst::Bin {
            dst,
            op: o,
            lhs,
            rhs,
        } => Inst::Bin {
            dst: reg(*dst),
            op: *o,
            lhs: op(lhs),
            rhs: op(rhs),
        },
        Inst::Un { dst, op: o, src } => Inst::Un {
            dst: reg(*dst),
            op: *o,
            src: op(src),
        },
        Inst::CheckedBin {
            dst,
            op: o,
            width,
            lhs,
            rhs,
        } => Inst::CheckedBin {
            dst: reg(*dst),
            op: *o,
            width: *width,
            lhs: op(lhs),
            rhs: op(rhs),
        },
        Inst::Load {
            dst,
            addr,
            offset,
            width,
        } => Inst::Load {
            dst: reg(*dst),
            addr: op(addr),
            offset: *offset,
            width: *width,
        },
        Inst::Store {
            addr,
            offset,
            src,
            width,
        } => Inst::Store {
            addr: op(addr),
            offset: *offset,
            src: op(src),
            width: *width,
        },
        Inst::Alloc { dst, size, region } => Inst::Alloc {
            dst: reg(*dst),
            size: op(size),
            region: *region,
        },
        Inst::Call { dst, callee, args } => Inst::Call {
            dst: dst.map(&reg),
            callee: *callee,
            args: args.iter().map(op).collect(),
        },
        Inst::CallIndirect { dst, target, args } => Inst::CallIndirect {
            dst: dst.map(&reg),
            target: op(target),
            args: args.iter().map(op).collect(),
        },
        Inst::FuncAddr { dst, func } => Inst::FuncAddr {
            dst: reg(*dst),
            func: *func,
        },
        Inst::BlockAddr { dst, block } => Inst::BlockAddr {
            dst: reg(*dst),
            block: blk(*block),
        },
        Inst::FileOpen { dst } => Inst::FileOpen { dst: reg(*dst) },
        Inst::FileRead { dst, fd, buf, len } => Inst::FileRead {
            dst: reg(*dst),
            fd: op(fd),
            buf: op(buf),
            len: op(len),
        },
        Inst::FileGetc { dst, fd } => Inst::FileGetc {
            dst: reg(*dst),
            fd: op(fd),
        },
        Inst::FileSeek { fd, pos } => Inst::FileSeek {
            fd: op(fd),
            pos: op(pos),
        },
        Inst::FileTell { dst, fd } => Inst::FileTell {
            dst: reg(*dst),
            fd: op(fd),
        },
        Inst::FileSize { dst, fd } => Inst::FileSize {
            dst: reg(*dst),
            fd: op(fd),
        },
        Inst::MemMap { dst, fd } => Inst::MemMap {
            dst: reg(*dst),
            fd: op(fd),
        },
        Inst::Trap { code } => Inst::Trap { code: *code },
        Inst::Nop => Inst::Nop,
    }
}

/// Rewrites every register and block reference in `term`.
fn map_term(
    term: &Terminator,
    reg: &impl Fn(Reg) -> Reg,
    blk: &impl Fn(BlockId) -> BlockId,
) -> Terminator {
    let op = |o: &Operand| match o {
        Operand::Reg(r) => Operand::Reg(reg(*r)),
        Operand::Imm(v) => Operand::Imm(*v),
    };
    match term {
        Terminator::Jmp(b) => Terminator::Jmp(blk(*b)),
        Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } => Terminator::Br {
            cond: op(cond),
            then_bb: blk(*then_bb),
            else_bb: blk(*else_bb),
        },
        Terminator::Switch {
            scrut,
            cases,
            default,
        } => Terminator::Switch {
            scrut: op(scrut),
            cases: cases.iter().map(|(v, b)| (*v, blk(*b))).collect(),
            default: blk(*default),
        },
        Terminator::JmpIndirect { target } => Terminator::JmpIndirect { target: op(target) },
        Terminator::Ret(v) => Terminator::Ret(v.as_ref().map(op)),
        Terminator::Halt { code } => Terminator::Halt { code: op(code) },
    }
}

/// Rewrites every register reference through `reg` and every block
/// reference through `blk`, leaving block layout, labels and `n_regs`
/// untouched. Building block for renaming/reordering transforms (the
/// corpus variant synthesizer) and for canonicalization itself.
pub fn rewrite_function(
    f: &Function,
    reg: &impl Fn(Reg) -> Reg,
    blk: &impl Fn(BlockId) -> BlockId,
) -> Function {
    Function {
        name: f.name.clone(),
        n_params: f.n_params,
        n_regs: f.n_regs,
        blocks: f
            .blocks
            .iter()
            .map(|b| BasicBlock {
                label: b.label.clone(),
                insts: b.insts.iter().map(|i| map_inst(i, reg, blk)).collect(),
                term: map_term(&b.term, reg, blk),
            })
            .collect(),
    }
}

/// Canonicalizes one function: blocks in [`canonical_block_order`] with
/// positional labels `b0..bN`, registers renumbered by definition order
/// in the new layout (parameters keep slots `0..n_params`; registers
/// that are read but never written are numbered after all defined ones,
/// in first-use order), and every reference remapped to match.
pub fn canonicalize_function(f: &Function) -> Function {
    let order = canonical_block_order(f);

    // Old block id -> new position.
    let mut block_map: HashMap<u32, u32> = HashMap::with_capacity(order.len());
    for (new, old) in order.iter().enumerate() {
        block_map.insert(old.0, new as u32);
    }

    // Registers: parameters pinned, then definition order, then
    // used-but-never-defined (not expressible in the text dialect, but
    // builder-made programs may rely on the implicit-zero semantics).
    let mut reg_map: HashMap<u16, u16> = HashMap::new();
    let mut next: u16 = f.n_params;
    for p in 0..f.n_params {
        reg_map.insert(p, p);
    }
    let claim = |r: Reg, reg_map: &mut HashMap<u16, u16>, next: &mut u16| {
        reg_map.entry(r.0).or_insert_with(|| {
            let id = *next;
            *next += 1;
            id
        });
    };
    for b in &order {
        for inst in &f.blocks[b.0 as usize].insts {
            if let Some(d) = inst.def() {
                claim(d, &mut reg_map, &mut next);
            }
        }
    }
    for b in &order {
        let block = &f.blocks[b.0 as usize];
        for inst in &block.insts {
            for u in inst.uses() {
                claim(u, &mut reg_map, &mut next);
            }
        }
        for u in block.term.uses() {
            claim(u, &mut reg_map, &mut next);
        }
    }

    let reg = |r: Reg| Reg(*reg_map.get(&r.0).unwrap_or(&r.0));
    let blk = |b: BlockId| BlockId(*block_map.get(&b.0).unwrap_or(&b.0));

    let blocks: Vec<BasicBlock> = order
        .iter()
        .enumerate()
        .map(|(new, old)| {
            let src = &f.blocks[old.0 as usize];
            BasicBlock {
                // The assembler pre-creates a block named `entry` at id 0,
                // so the canonical entry label must be exactly that.
                label: if new == 0 {
                    "entry".to_string()
                } else {
                    format!("b{new}")
                },
                insts: src.insts.iter().map(|i| map_inst(i, &reg, &blk)).collect(),
                term: map_term(&src.term, &reg, &blk),
            }
        })
        .collect();

    Function {
        name: f.name.clone(),
        n_params: f.n_params,
        n_regs: next.max(f.n_params),
        blocks,
    }
}

/// Canonicalizes every function of `p`. Function order (and therefore
/// every [`crate::types::FuncId`], call edge and the entry designation)
/// is preserved — canonicalization is purely intra-function.
pub fn canonicalize_program(p: &Program) -> Program {
    let funcs: Vec<Function> = p.iter().map(|(_, f)| canonicalize_function(f)).collect();
    let entry_name = p.func(p.entry()).name.clone();
    Program::from_functions(funcs, &entry_name).expect("canonicalization preserves program shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::printer::print_program_canonical;

    const SAMPLE: &str = r#"
func helper(x) {
entry:
    y = add x, 1
    ret y
}

func main() {
entry:
    c = 1
    br c, yes, no
no:
    k = 2
    jmp merge
yes:
    v = call helper(c)
    jmp merge
merge:
    r = add c, 1
    ret r
}
"#;

    #[test]
    fn canonical_form_is_idempotent() {
        let p = parse_program(SAMPLE).unwrap();
        let once = canonicalize_program(&p);
        let twice = canonicalize_program(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn dfs_order_follows_branch_syntax() {
        let p = parse_program(SAMPLE).unwrap();
        let f = p.func(p.func_by_name("main").unwrap());
        // Source order: entry, no, yes, merge. DFS follows `br c, yes, no`:
        // entry, yes, merge, no.
        let order = canonical_block_order(f);
        let labels: Vec<&str> = order
            .iter()
            .map(|b| f.blocks[b.0 as usize].label.as_str())
            .collect();
        assert_eq!(labels, vec!["entry", "yes", "merge", "no"]);
    }

    #[test]
    fn canonical_print_parses_back_to_canonical_form() {
        let p = parse_program(SAMPLE).unwrap();
        let canon = canonicalize_program(&p);
        let text = print_program_canonical(&p);
        let reparsed = parse_program(&text).unwrap();
        assert_eq!(reparsed, canon);
        // And canonical text is itself a fixed point.
        assert_eq!(print_program_canonical(&reparsed), text);
    }

    #[test]
    fn renamed_and_reordered_source_has_identical_canonical_text() {
        // Same CFG as `main` above with blocks permuted and registers
        // renamed; only reachable-region layout and names differ.
        let variant = r#"
func helper(q) {
entry:
    w = add q, 1
    ret w
}

func main() {
entry:
    cond = 1
    br cond, t_yes, t_no
t_yes:
    got = call helper(cond)
    jmp t_merge
t_merge:
    out = add cond, 1
    ret out
t_no:
    kk = 2
    jmp t_merge
}
"#;
        let a = parse_program(SAMPLE).unwrap();
        let b = parse_program(variant).unwrap();
        assert_eq!(print_program_canonical(&a), print_program_canonical(&b));
    }

    #[test]
    fn used_but_never_defined_registers_get_trailing_ids() {
        use crate::builder::{FunctionBuilder, ProgramBuilder};
        use crate::inst::{Inst, Terminator};
        use crate::types::{BinOp, Operand, Reg};

        let mut fb = FunctionBuilder::new("main", 0);
        let b0 = fb.block("entry");
        fb.select(b0);
        let x = fb.fresh(); // r0, defined
        let ghost = fb.fresh(); // r1, never defined (implicit zero)
        fb.emit(Inst::Bin {
            dst: x,
            op: BinOp::Add,
            lhs: Operand::Reg(ghost),
            rhs: Operand::Imm(1),
        });
        fb.terminate(Terminator::Ret(Some(Operand::Reg(x))));
        let f = fb.finish().unwrap();
        let mut pb = ProgramBuilder::new();
        let id = pb.declare("main");
        pb.define(id, f).unwrap();
        let p = pb.build("main").unwrap();

        let canon = canonicalize_program(&p);
        let cf = canon.func(canon.func_by_name("main").unwrap());
        // The defined register keeps the first slot; the ghost trails.
        assert_eq!(
            cf.blocks[0].insts[0],
            Inst::Bin {
                dst: Reg(0),
                op: BinOp::Add,
                lhs: Operand::Reg(Reg(1)),
                rhs: Operand::Imm(1),
            }
        );
    }
}
