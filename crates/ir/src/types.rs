//! Core value-level types of MicroIR: registers, identifiers, operators.

use std::fmt;

/// A virtual register index, local to one function.
///
/// Registers are untyped 64-bit slots. Function parameters occupy the lowest
/// indices (`Reg(0)..Reg(n_params)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a function within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifies a basic block within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 1 byte.
    W1,
    /// 2 bytes (little-endian).
    W2,
    /// 4 bytes (little-endian).
    W4,
    /// 8 bytes (little-endian).
    W8,
}

impl Width {
    /// The width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// The width in bits.
    pub fn bits(self) -> u32 {
        (self.bytes() * 8) as u32
    }

    /// A mask selecting the low `bytes()` bytes of a 64-bit value.
    pub fn mask(self) -> u64 {
        match self {
            Width::W8 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// Truncates `value` to this width.
    pub fn truncate(self, value: u64) -> u64 {
        value & self.mask()
    }

    /// Constructs a width from a byte count.
    ///
    /// Returns `None` unless `bytes` is 1, 2, 4, or 8.
    pub fn from_bytes(bytes: u64) -> Option<Width> {
        match bytes {
            1 => Some(Width::W1),
            2 => Some(Width::W2),
            4 => Some(Width::W4),
            8 => Some(Width::W8),
            _ => None,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes())
    }
}

/// Binary operators. Comparison operators produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division. Division by zero is a crash (the VM reports it).
    DivU,
    /// Unsigned remainder. Remainder by zero is a crash.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Logical shift right.
    ShrL,
    /// Arithmetic shift right.
    ShrA,
    /// Equality comparison.
    CmpEq,
    /// Inequality comparison.
    CmpNe,
    /// Unsigned less-than.
    CmpLtU,
    /// Unsigned less-or-equal.
    CmpLeU,
    /// Unsigned greater-than.
    CmpGtU,
    /// Unsigned greater-or-equal.
    CmpGeU,
    /// Signed less-than.
    CmpLtS,
    /// Signed less-or-equal.
    CmpLeS,
    /// Signed greater-than.
    CmpGtS,
    /// Signed greater-or-equal.
    CmpGeS,
}

impl BinOp {
    /// Whether this operator is a comparison (result is 0 or 1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::CmpEq
                | BinOp::CmpNe
                | BinOp::CmpLtU
                | BinOp::CmpLeU
                | BinOp::CmpGtU
                | BinOp::CmpGeU
                | BinOp::CmpLtS
                | BinOp::CmpLeS
                | BinOp::CmpGtS
                | BinOp::CmpGeS
        )
    }

    /// Evaluates the operator on concrete 64-bit values.
    ///
    /// Division or remainder by zero returns `None` (the interpreters turn
    /// this into a crash report).
    pub fn eval(self, a: u64, b: u64) -> Option<u64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::DivU => a.checked_div(b)?,
            BinOp::RemU => a.checked_rem(b)?,
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32),
            BinOp::ShrL => a.wrapping_shr(b as u32),
            BinOp::ShrA => ((a as i64).wrapping_shr(b as u32)) as u64,
            BinOp::CmpEq => u64::from(a == b),
            BinOp::CmpNe => u64::from(a != b),
            BinOp::CmpLtU => u64::from(a < b),
            BinOp::CmpLeU => u64::from(a <= b),
            BinOp::CmpGtU => u64::from(a > b),
            BinOp::CmpGeU => u64::from(a >= b),
            BinOp::CmpLtS => u64::from((a as i64) < (b as i64)),
            BinOp::CmpLeS => u64::from((a as i64) <= (b as i64)),
            BinOp::CmpGtS => u64::from((a as i64) > (b as i64)),
            BinOp::CmpGeS => u64::from((a as i64) >= (b as i64)),
        })
    }

    /// The textual mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::DivU => "udiv",
            BinOp::RemU => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::ShrL => "shr",
            BinOp::ShrA => "sar",
            BinOp::CmpEq => "eq",
            BinOp::CmpNe => "ne",
            BinOp::CmpLtU => "ult",
            BinOp::CmpLeU => "ule",
            BinOp::CmpGtU => "ugt",
            BinOp::CmpGeU => "uge",
            BinOp::CmpLtS => "slt",
            BinOp::CmpLeS => "sle",
            BinOp::CmpGtS => "sgt",
            BinOp::CmpGeS => "sge",
        }
    }

    /// Parses a mnemonic produced by [`BinOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "udiv" => BinOp::DivU,
            "urem" => BinOp::RemU,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::ShrL,
            "sar" => BinOp::ShrA,
            "eq" => BinOp::CmpEq,
            "ne" => BinOp::CmpNe,
            "ult" => BinOp::CmpLtU,
            "ule" => BinOp::CmpLeU,
            "ugt" => BinOp::CmpGtU,
            "uge" => BinOp::CmpGeU,
            "slt" => BinOp::CmpLtS,
            "sle" => BinOp::CmpLeS,
            "sgt" => BinOp::CmpGtS,
            "sge" => BinOp::CmpGeS,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise not.
    Not,
    /// Two's-complement negation.
    Neg,
}

impl UnOp {
    /// Evaluates the operator on a concrete value.
    pub fn eval(self, a: u64) -> u64 {
        match self {
            UnOp::Not => !a,
            UnOp::Neg => a.wrapping_neg(),
        }
    }

    /// The textual mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Overflow-checked arithmetic operators.
///
/// These model C code compiled with overflow traps (or manual overflow
/// checks); exceeding the destination width is a crash of class CWE-190
/// (integer overflow), matching Table II rows with that CWE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckedOp {
    /// Checked addition.
    Add,
    /// Checked subtraction (traps on unsigned underflow).
    Sub,
    /// Checked multiplication.
    Mul,
}

impl CheckedOp {
    /// Evaluates at width `w`; `None` means the operation overflowed.
    pub fn eval(self, w: Width, a: u64, b: u64) -> Option<u64> {
        let (a, b) = (w.truncate(a), w.truncate(b));
        let raw = match self {
            CheckedOp::Add => a.checked_add(b)?,
            CheckedOp::Sub => a.checked_sub(b)?,
            CheckedOp::Mul => a.checked_mul(b)?,
        };
        if raw != w.truncate(raw) {
            None
        } else {
            Some(raw)
        }
    }

    /// The textual mnemonic used by the assembler (without width suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CheckedOp::Add => "cadd",
            CheckedOp::Sub => "csub",
            CheckedOp::Mul => "cmul",
        }
    }
}

impl fmt::Display for CheckedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An instruction operand: either a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read from a register.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(u64),
}

impl Operand {
    /// Returns the register if this operand is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the immediate value if this operand is one.
    pub fn as_imm(self) -> Option<u64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                if *v > 0xFFFF {
                    write!(f, "{v:#x}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// The kind of memory region produced by an allocation.
///
/// The distinction matters only for crash classification (heap vs stack
/// buffer overflow) and mirrors the CWE split in the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegionKind {
    /// Heap allocation (`malloc`-like).
    #[default]
    Heap,
    /// Stack buffer (local array).
    Stack,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionKind::Heap => f.write_str("heap"),
            RegionKind::Stack => f.write_str("stack"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_masks() {
        assert_eq!(Width::W1.mask(), 0xFF);
        assert_eq!(Width::W2.mask(), 0xFFFF);
        assert_eq!(Width::W4.mask(), 0xFFFF_FFFF);
        assert_eq!(Width::W8.mask(), u64::MAX);
        assert_eq!(Width::W2.truncate(0x1_2345), 0x2345);
    }

    #[test]
    fn width_from_bytes_rejects_odd_sizes() {
        assert_eq!(Width::from_bytes(4), Some(Width::W4));
        assert_eq!(Width::from_bytes(3), None);
        assert_eq!(Width::from_bytes(0), None);
    }

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(u64::MAX));
        assert_eq!(BinOp::DivU.eval(7, 2), Some(3));
        assert_eq!(BinOp::DivU.eval(7, 0), None);
        assert_eq!(BinOp::RemU.eval(7, 0), None);
        assert_eq!(BinOp::CmpLtS.eval(u64::MAX, 0), Some(1)); // -1 < 0 signed
        assert_eq!(BinOp::CmpLtU.eval(u64::MAX, 0), Some(0));
    }

    #[test]
    fn binop_mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::DivU,
            BinOp::RemU,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::ShrL,
            BinOp::ShrA,
            BinOp::CmpEq,
            BinOp::CmpNe,
            BinOp::CmpLtU,
            BinOp::CmpLeU,
            BinOp::CmpGtU,
            BinOp::CmpGeU,
            BinOp::CmpLtS,
            BinOp::CmpLeS,
            BinOp::CmpGtS,
            BinOp::CmpGeS,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn checked_ops_trap_on_overflow() {
        assert_eq!(CheckedOp::Add.eval(Width::W1, 200, 100), None);
        assert_eq!(CheckedOp::Add.eval(Width::W1, 200, 55), Some(255));
        assert_eq!(CheckedOp::Mul.eval(Width::W4, 0x10000, 0x10000), None);
        assert_eq!(
            CheckedOp::Mul.eval(Width::W8, 0x10000, 0x10000),
            Some(0x1_0000_0000)
        );
        assert_eq!(CheckedOp::Sub.eval(Width::W4, 3, 5), None);
    }

    #[test]
    fn operand_conversions() {
        let r: Operand = Reg(3).into();
        assert_eq!(r.as_reg(), Some(Reg(3)));
        assert_eq!(r.as_imm(), None);
        let i: Operand = 9u64.into();
        assert_eq!(i.as_imm(), Some(9));
    }
}
