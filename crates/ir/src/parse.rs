//! Textual assembler for MicroIR.
//!
//! The corpus programs (the 15 `S`/`T` pairs of Table II) are written in
//! this dialect. The syntax is line-oriented; `;` starts a comment.
//!
//! ```text
//! func gif_decode(buf, len) {
//! entry:
//!     magic = load.4 buf
//!     ok = eq magic, 0x38464947        ; "GIF8"
//!     br ok, body, bad
//! body:
//!     out = alloc 256
//!     n = getc fd                      ; one byte from the input file
//!     store.1 out + 4, n
//!     ret 0
//! bad:
//!     halt 1
//! }
//! ```
//!
//! Instruction forms (registers are bare identifiers; integers may be
//! decimal, `0x` hex, or `'c'` character literals):
//!
//! | form | meaning |
//! |---|---|
//! | `x = 5` / `x = y` | constant / move |
//! | `x = add a, b` (all [`BinOp`] mnemonics) | binary op |
//! | `x = not a` / `x = neg a` | unary op |
//! | `x = cadd.W a, b` / `csub` / `cmul` | overflow-checked op (crash on overflow) |
//! | `x = load.W p` / `x = load.W p + 8` | memory load |
//! | `store.W p, v` / `store.W p + 8, v` | memory store |
//! | `x = alloc n` / `x = salloc n` | heap / stack allocation |
//! | `x = call f(a, b)` / `call f()` | direct call |
//! | `x = icall t(a)` / `icall t()` | indirect call |
//! | `x = faddr f` / `x = baddr label` | code addresses |
//! | `x = open` | open the input file |
//! | `x = read fd, buf, len` | file read (advances position) |
//! | `x = getc fd` | single-byte read |
//! | `seek fd, pos` / `x = tell fd` / `x = fsize fd` | position control |
//! | `x = mmap fd` | map whole input |
//! | `trap 3` / `nop` | abort / no-op |
//!
//! Terminators: `jmp L`, `br c, L1, L2`,
//! `switch x { 1 -> a, 2 -> b, _ -> d }`, `ijmp t`, `ret [v]`, `halt v`.

use std::collections::HashMap;
use std::fmt;

use crate::builder::{FunctionBuilder, ProgramBuilder};
use crate::inst::{Inst, Terminator};
use crate::program::Program;
use crate::types::{BinOp, CheckedOp, Operand, Reg, RegionKind, UnOp, Width};

/// A parse failure, with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

fn err<T>(line: usize, msg: impl Into<String>) -> PResult<T> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parses a complete program. The entry function must be named `main`.
///
/// # Errors
/// Returns the first syntax or reference error encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_with_entry(src, "main")
}

/// Parses a complete program with an explicit entry function name.
///
/// # Errors
/// Returns the first syntax or reference error encountered, or an error on
/// the last line if the entry function is missing.
pub fn parse_program_with_entry(src: &str, entry: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new(src);
    let mut pb = ProgramBuilder::new();
    let mut n_lines = 0;
    while let Some((line_no, line)) = parser.next_meaningful_line() {
        n_lines = line_no;
        let toks = tokenize(line, line_no)?;
        if toks.first().map(Token::text) == Some("func") {
            parser.parse_function(&toks, line_no, &mut pb)?;
        } else {
            return err(line_no, format!("expected `func`, found `{}`", line.trim()));
        }
    }
    pb.build(entry).map_err(|e| ParseError {
        line: n_lines,
        msg: e.0,
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Int(u64),
    Punct(char),
    Arrow,
}

impl Token {
    fn text(&self) -> &str {
        match self {
            Token::Ident(s) => s,
            _ => "",
        }
    }
}

fn tokenize(line: &str, line_no: usize) -> PResult<Vec<Token>> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            ';' => break,
            ',' | '(' | ')' | '{' | '}' | '=' | '+' | ':' | '_' => {
                // `->` arrow; `=` may start `=` alone.
                if c == '-' {
                    unreachable!()
                }
                toks.push(Token::Punct(c));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    toks.push(Token::Arrow);
                    i += 2;
                } else {
                    // negative integer literal
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    let text: String = bytes[start..j].iter().collect();
                    let v = parse_int(&text)
                        .ok_or(())
                        .or_else(|()| err(line_no, format!("bad integer `-{text}`")))?;
                    toks.push(Token::Int(v.wrapping_neg()));
                    i = j;
                }
            }
            '\'' => {
                // character literal 'c' (or '\n', '\0', '\\', '\'')
                let (ch, consumed) = match bytes.get(i + 1) {
                    Some('\\') => {
                        let esc = bytes.get(i + 2).copied().unwrap_or('?');
                        let v = match esc {
                            'n' => b'\n',
                            't' => b'\t',
                            'r' => b'\r',
                            '0' => 0,
                            '\\' => b'\\',
                            '\'' => b'\'',
                            _ => return err(line_no, format!("bad escape `\\{esc}`")),
                        };
                        (v, 4)
                    }
                    Some(&c2) => (c2 as u8, 3),
                    None => return err(line_no, "unterminated character literal"),
                };
                if bytes.get(i + consumed - 1) != Some(&'\'') {
                    return err(line_no, "unterminated character literal");
                }
                toks.push(Token::Int(u64::from(ch)));
                i += consumed;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                let v = parse_int(&text)
                    .ok_or(())
                    .or_else(|()| err(line_no, format!("bad integer `{text}`")))?;
                toks.push(Token::Int(v));
                i = j;
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_' || bytes[j] == '.')
                {
                    j += 1;
                }
                toks.push(Token::Ident(bytes[start..j].iter().collect()));
                i = j;
            }
            other => return err(line_no, format!("unexpected character `{other}`")),
        }
    }
    Ok(toks)
}

fn parse_int(text: &str) -> Option<u64> {
    let cleaned = text.replace('_', "");
    if let Some(hex) = cleaned
        .strip_prefix("0x")
        .or_else(|| cleaned.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        cleaned.parse().ok()
    }
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

/// Per-function parsing state.
struct FuncCtx {
    fb: FunctionBuilder,
    regs: HashMap<String, Reg>,
}

impl FuncCtx {
    fn reg_use(&self, name: &str, line: usize) -> PResult<Reg> {
        self.regs.get(name).copied().ok_or(ParseError {
            line,
            msg: format!("use of undefined register `{name}`"),
        })
    }

    fn reg_def(&mut self, name: &str) -> Reg {
        if let Some(&r) = self.regs.get(name) {
            r
        } else {
            let r = self.fb.fresh();
            self.regs.insert(name.to_string(), r);
            r
        }
    }

    fn operand(&self, tok: &Token, line: usize) -> PResult<Operand> {
        match tok {
            Token::Int(v) => Ok(Operand::Imm(*v)),
            Token::Ident(name) => Ok(Operand::Reg(self.reg_use(name, line)?)),
            _ => err(line, "expected register or integer operand"),
        }
    }
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            lines: src.lines().enumerate(),
        }
    }

    /// Next non-empty, non-comment line, with its 1-based number.
    fn next_meaningful_line(&mut self) -> Option<(usize, &'a str)> {
        for (idx, line) in self.lines.by_ref() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with(';') {
                continue;
            }
            return Some((idx + 1, line));
        }
        None
    }

    fn parse_function(
        &mut self,
        header: &[Token],
        header_line: usize,
        pb: &mut ProgramBuilder,
    ) -> PResult<()> {
        // func NAME ( params ) {
        let name = match header.get(1) {
            Some(Token::Ident(n)) => n.clone(),
            _ => return err(header_line, "expected function name after `func`"),
        };
        let mut params = Vec::new();
        let mut i = 2;
        if header.get(i) != Some(&Token::Punct('(')) {
            return err(header_line, "expected `(` after function name");
        }
        i += 1;
        while header.get(i) != Some(&Token::Punct(')')) {
            match header.get(i) {
                Some(Token::Ident(p)) => params.push(p.clone()),
                _ => return err(header_line, "expected parameter name"),
            }
            i += 1;
            if header.get(i) == Some(&Token::Punct(',')) {
                i += 1;
            }
        }
        i += 1;
        if header.get(i) != Some(&Token::Punct('{')) {
            return err(header_line, "expected `{` to open function body");
        }
        // Declare before parsing the body so functions receive ids in source
        // order even when they call forward.
        let self_id = pb.declare(&name);

        let mut ctx = FuncCtx {
            fb: FunctionBuilder::new(&name, params.len() as u16),
            regs: HashMap::new(),
        };
        for (idx, p) in params.iter().enumerate() {
            ctx.regs.insert(p.clone(), Reg(idx as u16));
        }

        // Collect the body, then pre-create blocks in label-definition
        // order so block ids follow the source layout (this keeps
        // print→parse a fixed point regardless of reference order).
        let mut body: Vec<(usize, Vec<Token>)> = Vec::new();
        loop {
            let (line_no, line) = self.next_meaningful_line().ok_or(ParseError {
                line: header_line,
                msg: format!("function `{name}` not closed with `}}`"),
            })?;
            let toks = tokenize(line, line_no)?;
            if toks == [Token::Punct('}')] {
                break;
            }
            body.push((line_no, toks));
        }
        for (_, toks) in &body {
            if toks.len() == 2 && matches!(toks[0], Token::Ident(_)) && toks[1] == Token::Punct(':')
            {
                ctx.fb.block(toks[0].text());
            }
            // Pre-create registers in definition order, mirroring the block
            // pre-pass: a use may then textually precede its definition (the
            // canonical printer reorders blocks), while names with no
            // definition anywhere still fail in `reg_use`.
            if toks.len() >= 2 && matches!(toks[0], Token::Ident(_)) && toks[1] == Token::Punct('=')
            {
                ctx.reg_def(toks[0].text());
            }
        }
        for (line_no, toks) in body {
            // Label line: `ident :`
            if toks.len() == 2 && matches!(toks[0], Token::Ident(_)) && toks[1] == Token::Punct(':')
            {
                let id = ctx.fb.block(toks[0].text());
                ctx.fb.select(id);
                continue;
            }
            parse_statement(&toks, line_no, &mut ctx, pb)?;
        }
        let func = ctx.fb.finish().map_err(|e| ParseError {
            line: header_line,
            msg: e.0,
        })?;
        pb.define(self_id, func).map_err(|e| ParseError {
            line: header_line,
            msg: e.0,
        })?;
        Ok(())
    }
}

/// Parses one statement (instruction or terminator) into the current block.
fn parse_statement(
    toks: &[Token],
    line: usize,
    ctx: &mut FuncCtx,
    pb: &mut ProgramBuilder,
) -> PResult<()> {
    // dst = rhs...
    if toks.len() >= 2 && matches!(toks[0], Token::Ident(_)) && toks[1] == Token::Punct('=') {
        let dst_name = toks[0].text().to_string();
        return parse_assignment(&dst_name, &toks[2..], line, ctx, pb);
    }
    let head = match toks.first() {
        Some(Token::Ident(h)) => h.as_str(),
        _ => return err(line, "expected instruction"),
    };
    let rest = &toks[1..];
    match head {
        "jmp" => {
            let target = ident_at(rest, 0, line)?;
            let b = ctx.fb.block(&target);
            ctx.fb.terminate(Terminator::Jmp(b));
        }
        "br" => {
            // br cond, L1, L2
            let parts = split_commas(rest);
            if parts.len() != 3 {
                return err(line, "br expects `br cond, then, else`");
            }
            let cond = single_operand(&parts[0], line, ctx)?;
            let then_bb = ctx.fb.block(&single_ident(&parts[1], line)?);
            let else_bb = ctx.fb.block(&single_ident(&parts[2], line)?);
            ctx.fb.terminate(Terminator::Br {
                cond,
                then_bb,
                else_bb,
            });
        }
        "switch" => {
            parse_switch(rest, line, ctx)?;
        }
        "ijmp" => {
            let target = single_operand(rest, line, ctx)?;
            ctx.fb.terminate(Terminator::JmpIndirect { target });
        }
        "ret" => {
            let value = if rest.is_empty() {
                None
            } else {
                Some(single_operand(rest, line, ctx)?)
            };
            ctx.fb.terminate(Terminator::Ret(value));
        }
        "halt" => {
            let code = single_operand(rest, line, ctx)?;
            ctx.fb.terminate(Terminator::Halt { code });
        }
        "trap" => {
            let code = match rest.first() {
                Some(Token::Int(v)) => *v,
                None => 0,
                _ => return err(line, "trap expects an integer code"),
            };
            ctx.fb.emit(Inst::Trap { code });
        }
        "nop" => ctx.fb.emit(Inst::Nop),
        "call" => {
            let (callee, args) = parse_call_tail(rest, line, ctx, pb)?;
            ctx.fb.emit(Inst::Call {
                dst: None,
                callee,
                args,
            });
        }
        "icall" => {
            let (target, args) = parse_icall_tail(rest, line, ctx)?;
            ctx.fb.emit(Inst::CallIndirect {
                dst: None,
                target,
                args,
            });
        }
        "seek" => {
            let parts = split_commas(rest);
            if parts.len() != 2 {
                return err(line, "seek expects `seek fd, pos`");
            }
            let fd = single_operand(&parts[0], line, ctx)?;
            let pos = single_operand(&parts[1], line, ctx)?;
            ctx.fb.emit(Inst::FileSeek { fd, pos });
        }
        other if other.starts_with("store.") => {
            let width = parse_width(other, "store.", line)?;
            // store.W addr [+ off], value
            let parts = split_commas(rest);
            if parts.len() != 2 {
                return err(line, "store expects `store.W addr [+ off], value`");
            }
            let (addr, offset) = parse_addr(&parts[0], line, ctx)?;
            let src = single_operand(&parts[1], line, ctx)?;
            ctx.fb.emit(Inst::Store {
                addr,
                offset,
                src,
                width,
            });
        }
        other => return err(line, format!("unknown instruction `{other}`")),
    }
    Ok(())
}

fn parse_assignment(
    dst_name: &str,
    rhs: &[Token],
    line: usize,
    ctx: &mut FuncCtx,
    pb: &mut ProgramBuilder,
) -> PResult<()> {
    // Evaluate RHS first so uses of the old value of `dst` resolve before
    // (re)defining it: `x = add x, 1` works.
    let inst = match rhs {
        [Token::Int(v)] => {
            let dst = ctx.reg_def(dst_name);
            Inst::Const { dst, value: *v }
        }
        [Token::Ident(name)] if name == "open" => {
            let dst = ctx.reg_def(dst_name);
            Inst::FileOpen { dst }
        }
        [Token::Ident(src_name)] if !is_keyword(src_name) => {
            let src = ctx.reg_use(src_name, line)?;
            let dst = ctx.reg_def(dst_name);
            Inst::Move {
                dst,
                src: Operand::Reg(src),
            }
        }
        [Token::Ident(op), rest @ ..] => {
            return parse_op_assignment(dst_name, op, rest, line, ctx, pb)
        }
        _ => return err(line, "malformed assignment"),
    };
    ctx.fb.emit(inst);
    Ok(())
}

fn parse_op_assignment(
    dst_name: &str,
    op: &str,
    rest: &[Token],
    line: usize,
    ctx: &mut FuncCtx,
    pb: &mut ProgramBuilder,
) -> PResult<()> {
    if let Some(binop) = BinOp::from_mnemonic(op) {
        let parts = split_commas(rest);
        if parts.len() != 2 {
            return err(line, format!("`{op}` expects two operands"));
        }
        let lhs = single_operand(&parts[0], line, ctx)?;
        let rhs = single_operand(&parts[1], line, ctx)?;
        let dst = ctx.reg_def(dst_name);
        ctx.fb.emit(Inst::Bin {
            dst,
            op: binop,
            lhs,
            rhs,
        });
        return Ok(());
    }
    match op {
        "not" | "neg" => {
            let src = single_operand(rest, line, ctx)?;
            let unop = if op == "not" { UnOp::Not } else { UnOp::Neg };
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::Un { dst, op: unop, src });
        }
        _ if op.starts_with("cadd.") || op.starts_with("csub.") || op.starts_with("cmul.") => {
            let (checked, prefix) = match &op[..4] {
                "cadd" => (CheckedOp::Add, "cadd."),
                "csub" => (CheckedOp::Sub, "csub."),
                _ => (CheckedOp::Mul, "cmul."),
            };
            let width = parse_width(op, prefix, line)?;
            let parts = split_commas(rest);
            if parts.len() != 2 {
                return err(line, format!("`{op}` expects two operands"));
            }
            let lhs = single_operand(&parts[0], line, ctx)?;
            let rhs = single_operand(&parts[1], line, ctx)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::CheckedBin {
                dst,
                op: checked,
                width,
                lhs,
                rhs,
            });
        }
        _ if op.starts_with("load.") => {
            let width = parse_width(op, "load.", line)?;
            let (addr, offset) = parse_addr(rest, line, ctx)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::Load {
                dst,
                addr,
                offset,
                width,
            });
        }
        "alloc" | "salloc" => {
            let size = single_operand(rest, line, ctx)?;
            let region = if op == "alloc" {
                RegionKind::Heap
            } else {
                RegionKind::Stack
            };
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::Alloc { dst, size, region });
        }
        "call" => {
            let (callee, args) = parse_call_tail(rest, line, ctx, pb)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::Call {
                dst: Some(dst),
                callee,
                args,
            });
        }
        "icall" => {
            let (target, args) = parse_icall_tail(rest, line, ctx)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::CallIndirect {
                dst: Some(dst),
                target,
                args,
            });
        }
        "faddr" => {
            let fname = ident_at(rest, 0, line)?;
            let func = pb.declare(&fname);
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::FuncAddr { dst, func });
        }
        "baddr" => {
            let label = ident_at(rest, 0, line)?;
            let block = ctx.fb.block(&label);
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::BlockAddr { dst, block });
        }
        "read" => {
            let parts = split_commas(rest);
            if parts.len() != 3 {
                return err(line, "read expects `read fd, buf, len`");
            }
            let fd = single_operand(&parts[0], line, ctx)?;
            let buf = single_operand(&parts[1], line, ctx)?;
            let len = single_operand(&parts[2], line, ctx)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::FileRead { dst, fd, buf, len });
        }
        "getc" => {
            let fd = single_operand(rest, line, ctx)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::FileGetc { dst, fd });
        }
        "tell" => {
            let fd = single_operand(rest, line, ctx)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::FileTell { dst, fd });
        }
        "fsize" => {
            let fd = single_operand(rest, line, ctx)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::FileSize { dst, fd });
        }
        "mmap" => {
            let fd = single_operand(rest, line, ctx)?;
            let dst = ctx.reg_def(dst_name);
            ctx.fb.emit(Inst::MemMap { dst, fd });
        }
        other => return err(line, format!("unknown operation `{other}`")),
    }
    Ok(())
}

fn parse_switch(rest: &[Token], line: usize, ctx: &mut FuncCtx) -> PResult<()> {
    // switch x { 1 -> a, 2 -> b, _ -> d }
    let brace = rest
        .iter()
        .position(|t| *t == Token::Punct('{'))
        .ok_or(ParseError {
            line,
            msg: "switch expects `{ ... }`".into(),
        })?;
    let scrut = single_operand(&rest[..brace], line, ctx)?;
    let close = rest
        .iter()
        .position(|t| *t == Token::Punct('}'))
        .ok_or(ParseError {
            line,
            msg: "switch not closed with `}`".into(),
        })?;
    let body = &rest[brace + 1..close];
    let mut cases = Vec::new();
    let mut default = None;
    for arm in split_commas(body) {
        // INT -> label   or   _ -> label
        if arm.len() != 3 || arm[1] != Token::Arrow {
            return err(line, "switch arm must be `value -> label`");
        }
        let target = match &arm[2] {
            Token::Ident(l) => ctx.fb.block(l),
            _ => return err(line, "switch arm target must be a label"),
        };
        match &arm[0] {
            Token::Int(v) => cases.push((*v, target)),
            Token::Punct('_') => default = Some(target),
            _ => return err(line, "switch arm value must be an integer or `_`"),
        }
    }
    let default = default.ok_or(ParseError {
        line,
        msg: "switch requires a `_ -> label` default arm".into(),
    })?;
    ctx.fb.terminate(Terminator::Switch {
        scrut,
        cases,
        default,
    });
    Ok(())
}

/// Parses `f(a, b, ...)`.
fn parse_call_tail(
    rest: &[Token],
    line: usize,
    ctx: &mut FuncCtx,
    pb: &mut ProgramBuilder,
) -> PResult<(crate::types::FuncId, Vec<Operand>)> {
    let fname = ident_at(rest, 0, line)?;
    let args = parse_arg_list(&rest[1..], line, ctx)?;
    Ok((pb.declare(&fname), args))
}

/// Parses `t(a, b, ...)` where `t` is an operand (function address).
fn parse_icall_tail(
    rest: &[Token],
    line: usize,
    ctx: &mut FuncCtx,
) -> PResult<(Operand, Vec<Operand>)> {
    if rest.is_empty() {
        return err(line, "icall expects a target");
    }
    let target = ctx.operand(&rest[0], line)?;
    let args = parse_arg_list(&rest[1..], line, ctx)?;
    Ok((target, args))
}

fn parse_arg_list(toks: &[Token], line: usize, ctx: &FuncCtx) -> PResult<Vec<Operand>> {
    if toks.first() != Some(&Token::Punct('(')) {
        return err(line, "expected `(` argument list");
    }
    if toks.last() != Some(&Token::Punct(')')) {
        return err(line, "argument list not closed with `)`");
    }
    let inner = &toks[1..toks.len() - 1];
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    split_commas(inner)
        .iter()
        .map(|part| single_operand(part, line, ctx))
        .collect()
}

/// Parses `addr` or `addr + offset`.
fn parse_addr(toks: &[Token], line: usize, ctx: &FuncCtx) -> PResult<(Operand, u64)> {
    match toks {
        [a] => Ok((ctx.operand(a, line)?, 0)),
        [a, Token::Punct('+'), Token::Int(off)] => Ok((ctx.operand(a, line)?, *off)),
        _ => err(line, "expected `addr` or `addr + offset`"),
    }
}

fn split_commas(toks: &[Token]) -> Vec<Vec<Token>> {
    let mut parts = vec![Vec::new()];
    let mut depth = 0usize;
    for t in toks {
        match t {
            Token::Punct('(') | Token::Punct('{') => {
                depth += 1;
                parts.last_mut().expect("nonempty").push(t.clone());
            }
            Token::Punct(')') | Token::Punct('}') => {
                depth = depth.saturating_sub(1);
                parts.last_mut().expect("nonempty").push(t.clone());
            }
            Token::Punct(',') if depth == 0 => parts.push(Vec::new()),
            _ => parts.last_mut().expect("nonempty").push(t.clone()),
        }
    }
    parts
}

fn single_operand(toks: &[Token], line: usize, ctx: &FuncCtx) -> PResult<Operand> {
    match toks {
        [t] => ctx.operand(t, line),
        _ => err(line, "expected a single operand"),
    }
}

fn single_ident(toks: &[Token], line: usize) -> PResult<String> {
    match toks {
        [Token::Ident(s)] => Ok(s.clone()),
        _ => err(line, "expected an identifier"),
    }
}

fn ident_at(toks: &[Token], idx: usize, line: usize) -> PResult<String> {
    match toks.get(idx) {
        Some(Token::Ident(s)) => Ok(s.clone()),
        _ => err(line, "expected an identifier"),
    }
}

fn parse_width(op: &str, prefix: &str, line: usize) -> PResult<Width> {
    let suffix = op.strip_prefix(prefix).unwrap_or_default();
    suffix
        .parse::<u64>()
        .ok()
        .and_then(Width::from_bytes)
        .ok_or(ParseError {
            line,
            msg: format!("bad width suffix in `{op}` (expected .1/.2/.4/.8)"),
        })
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "open"
            | "call"
            | "icall"
            | "read"
            | "getc"
            | "tell"
            | "seek"
            | "fsize"
            | "mmap"
            | "alloc"
            | "salloc"
            | "faddr"
            | "baddr"
            | "not"
            | "neg"
            | "trap"
            | "nop"
    ) || BinOp::from_mnemonic(s).is_some()
        || s.starts_with("load.")
        || s.starts_with("store.")
        || s.starts_with("cadd.")
        || s.starts_with("csub.")
        || s.starts_with("cmul.")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FuncId;

    #[test]
    fn parse_minimal_program() {
        let p = parse_program("func main() {\nentry:\n ret 0\n}\n").unwrap();
        assert_eq!(p.function_count(), 1);
        let main = p.func(p.entry());
        assert_eq!(main.blocks.len(), 1);
        assert_eq!(main.blocks[0].term, Terminator::Ret(Some(Operand::Imm(0))));
    }

    #[test]
    fn parse_arith_and_branches() {
        let src = r#"
; a tiny branching function
func main() {
entry:
    x = 10
    y = add x, 0x20
    c = ult y, 100
    br c, small, big
small:
    ret 1
big:
    halt 2
}
"#;
        let p = parse_program(src).unwrap();
        let f = p.func(p.entry());
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert!(matches!(f.blocks[0].term, Terminator::Br { .. }));
        assert!(matches!(f.blocks[2].term, Terminator::Halt { .. }));
    }

    #[test]
    fn parse_memory_and_file_ops() {
        let src = r#"
func main() {
entry:
    fd = open
    buf = alloc 64
    n = read fd, buf, 64
    b = getc fd
    pos = tell fd
    sz = fsize fd
    seek fd, 0
    base = mmap fd
    v = load.4 buf + 8
    store.2 buf + 2, v
    stk = salloc 16
    ret n
}
"#;
        let p = parse_program(src).unwrap();
        let f = p.func(p.entry());
        assert_eq!(f.blocks[0].insts.len(), 11);
        assert!(matches!(
            f.blocks[0].insts[8],
            Inst::Load {
                offset: 8,
                width: Width::W4,
                ..
            }
        ));
        assert!(matches!(
            f.blocks[0].insts[10],
            Inst::Alloc {
                region: RegionKind::Stack,
                ..
            }
        ));
    }

    #[test]
    fn parse_calls_and_forward_reference() {
        let src = r#"
func main() {
entry:
    r = call helper(1, 2)
    call helper(r, r)
    f = faddr helper
    s = icall f(3, 4)
    ret s
}

func helper(a, b) {
entry:
    x = add a, b
    ret x
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.function_count(), 2);
        assert_eq!(p.func_by_name("helper"), Some(FuncId(1)));
    }

    #[test]
    fn parse_switch_and_indirect_jump() {
        let src = r#"
func main() {
entry:
    x = 2
    switch x { 1 -> one, 2 -> two, _ -> done }
one:
    t = baddr done
    ijmp t
two:
    jmp done
done:
    ret 0
}
"#;
        let p = parse_program(src).unwrap();
        let f = p.func(p.entry());
        assert!(
            matches!(f.blocks[0].term, Terminator::Switch { ref cases, .. } if cases.len() == 2)
        );
        assert!(matches!(f.blocks[1].term, Terminator::JmpIndirect { .. }));
    }

    #[test]
    fn char_literals_and_checked_math() {
        let src = r#"
func main() {
entry:
    g = 'G'
    nl = '\n'
    z = cmul.4 g, nl
    t = csub.2 z, 1
    ret t
}
"#;
        let p = parse_program(src).unwrap();
        let f = p.func(p.entry());
        assert_eq!(
            f.blocks[0].insts[0],
            Inst::Const {
                dst: Reg(0),
                value: u64::from(b'G')
            }
        );
    }

    #[test]
    fn undefined_register_is_an_error() {
        let e = parse_program("func main() {\nentry:\n x = add ghost, 1\n ret x\n}\n").unwrap_err();
        assert!(e.msg.contains("undefined register"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn use_before_textual_definition_is_allowed() {
        // The canonical printer may order a using block before the defining
        // one; the register pre-pass makes that parseable. `x` is defined in
        // `late`, used in `early` which appears first.
        let src = "func main() {\n\
                   entry:\n c = 1\n br c, early, late\n\
                   early:\n y = add x, 1\n ret y\n\
                   late:\n x = 7\n ret x\n}\n";
        let p = parse_program(src).unwrap();
        let f = p.func(p.entry());
        // Ids follow definition-statement order: `c` (r0), `y` (r1), `x` (r2).
        assert_eq!(f.blocks[1].insts[0].def(), Some(Reg(1)));
        assert_eq!(f.blocks[1].insts[0].uses(), vec![Reg(2)]);
        assert_eq!(f.blocks[2].insts[0].def(), Some(Reg(2)));
    }

    #[test]
    fn unclosed_function_is_an_error() {
        let e = parse_program("func main() {\nentry:\n ret 0\n").unwrap_err();
        assert!(e.msg.contains("not closed"), "{e}");
    }

    #[test]
    fn missing_entry_is_an_error() {
        let e = parse_program("func helper() {\nentry:\n ret 0\n}\n").unwrap_err();
        assert!(e.msg.contains("entry function"), "{e}");
    }

    #[test]
    fn trap_and_negative_literals() {
        let src = "func main() {\nentry:\n x = -1\n trap 7\n ret x\n}\n";
        let p = parse_program(src).unwrap();
        let f = p.func(p.entry());
        assert_eq!(
            f.blocks[0].insts[0],
            Inst::Const {
                dst: Reg(0),
                value: u64::MAX
            }
        );
        assert_eq!(f.blocks[0].insts[1], Inst::Trap { code: 7 });
    }

    #[test]
    fn reassignment_reads_old_value() {
        let src = "func main() {\nentry:\n x = 1\n x = add x, 1\n ret x\n}\n";
        let p = parse_program(src).unwrap();
        let f = p.func(p.entry());
        // Both the const and the add target the same register.
        let d0 = f.blocks[0].insts[0].def();
        let d1 = f.blocks[0].insts[1].def();
        assert_eq!(d0, d1);
    }
}
