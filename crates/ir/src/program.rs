//! Program, function, and basic-block containers.

use std::collections::HashMap;

use crate::inst::{Inst, Terminator};
use crate::types::{BlockId, FuncId, Reg};

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Human-readable label (unique within the function).
    pub label: String,
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl BasicBlock {
    /// Creates a block with the given label and terminator and no body.
    pub fn new(label: impl Into<String>, term: Terminator) -> BasicBlock {
        BasicBlock {
            label: label.into(),
            insts: Vec::new(),
            term,
        }
    }
}

/// A MicroIR function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (unique within the program).
    pub name: String,
    /// Number of parameters; they arrive in registers `r0..r{n_params}`.
    pub n_params: u16,
    /// Total number of registers used (including parameters).
    pub n_regs: u16,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids are only produced by the builder
    /// and parser, which guarantee validity.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Finds a block id by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.label == label)
            .map(|i| BlockId(i as u32))
    }

    /// The function's parameter registers.
    pub fn params(&self) -> impl Iterator<Item = Reg> {
        (0..self.n_params).map(Reg)
    }

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A complete MicroIR program: a set of functions with a designated entry.
///
/// This is the unit that plays the role of a *binary* in the paper: the
/// original vulnerable software `S` and the propagated software `T` are both
/// values of this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    funcs: Vec<Function>,
    by_name: HashMap<String, FuncId>,
    entry: FuncId,
}

impl Program {
    /// Assembles a program from parts.
    ///
    /// # Errors
    /// Returns an error message if function names collide or the entry
    /// function does not exist.
    pub fn from_functions(funcs: Vec<Function>, entry_name: &str) -> Result<Program, String> {
        let mut by_name = HashMap::with_capacity(funcs.len());
        for (i, f) in funcs.iter().enumerate() {
            if by_name.insert(f.name.clone(), FuncId(i as u32)).is_some() {
                return Err(format!("duplicate function name `{}`", f.name));
            }
        }
        let entry = *by_name
            .get(entry_name)
            .ok_or_else(|| format!("entry function `{entry_name}` not found"))?;
        Ok(Program {
            funcs,
            by_name,
            entry,
        })
    }

    /// The program entry function (conventionally `main`).
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Looks up a function by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Looks up a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Mutable access to the function bodies (for program transforms
    /// such as `octo-lint`'s CFG prune).
    ///
    /// Renaming a function through this slice would desynchronise the
    /// name index — transforms must keep names (and the vector length)
    /// intact.
    pub fn funcs_mut(&mut self) -> &mut [Function] {
        &mut self.funcs
    }

    /// Iterates over `(id, function)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.funcs.len()
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }

    /// Resolves a set of function names (e.g. the shared code area `ℓ`)
    /// into ids, ignoring names that do not occur in this program.
    pub fn resolve_names<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Vec<FuncId> {
        names
            .into_iter()
            .filter_map(|n| self.func_by_name(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Operand;

    fn trivial_func(name: &str) -> Function {
        Function {
            name: name.to_string(),
            n_params: 0,
            n_regs: 1,
            blocks: vec![BasicBlock::new(
                "entry",
                Terminator::Ret(Some(Operand::Imm(0))),
            )],
        }
    }

    #[test]
    fn from_functions_resolves_entry() {
        let p =
            Program::from_functions(vec![trivial_func("main"), trivial_func("f")], "main").unwrap();
        assert_eq!(p.entry(), FuncId(0));
        assert_eq!(p.func_by_name("f"), Some(FuncId(1)));
        assert_eq!(p.function_count(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Program::from_functions(vec![trivial_func("main"), trivial_func("main")], "main")
            .unwrap_err();
        assert!(err.contains("duplicate"));
    }

    #[test]
    fn missing_entry_rejected() {
        let err = Program::from_functions(vec![trivial_func("f")], "main").unwrap_err();
        assert!(err.contains("entry"));
    }

    #[test]
    fn resolve_names_skips_unknown() {
        let p =
            Program::from_functions(vec![trivial_func("main"), trivial_func("g")], "main").unwrap();
        assert_eq!(p.resolve_names(["g", "nope"]), vec![FuncId(1)]);
    }
}
