//! Structural validation of MicroIR programs.
//!
//! The interpreters assume these invariants; `validate` is run on every
//! parsed or built program before execution in the pipeline.

use std::fmt;

use crate::inst::{Inst, Terminator};
use crate::program::Program;
use crate::types::{BlockId, FuncId, Operand, Reg};

/// A single validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Function where the problem was found.
    pub func: String,
    /// Block label, when applicable.
    pub block: Option<String>,
    /// Description of the violation.
    pub msg: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.block {
            Some(b) => write!(f, "{}/{}: {}", self.func, b, self.msg),
            None => write!(f, "{}: {}", self.func, self.msg),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates every function of `program`.
///
/// Checked invariants:
/// * block targets of every terminator are in range,
/// * block labels are unique within each function,
/// * register operands are below the function's `n_regs`,
/// * call targets exist and argument counts match the callee arity,
/// * every function's parameters fit its register file (a call writes
///   argument `i` into callee register `i`, so `n_params` beyond `n_regs`
///   would make the interpreters store out of range),
/// * the entry function takes no parameters,
/// * switch case values are unique.
///
/// # Errors
/// Returns all violations found (not just the first).
pub fn validate(program: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    let entry = program.func(program.entry());
    if entry.n_params != 0 {
        errors.push(ValidationError {
            func: entry.name.clone(),
            block: None,
            msg: "entry function must take no parameters".into(),
        });
    }
    for (_, f) in program.iter() {
        if f.n_params > f.n_regs {
            errors.push(ValidationError {
                func: f.name.clone(),
                block: None,
                msg: format!(
                    "function takes {} params but has only {} registers",
                    f.n_params, f.n_regs
                ),
            });
        }
        let mut labels = std::collections::HashSet::new();
        for block in &f.blocks {
            if !labels.insert(block.label.as_str()) {
                errors.push(ValidationError {
                    func: f.name.clone(),
                    block: Some(block.label.clone()),
                    msg: format!("duplicate block label `{}`", block.label),
                });
            }
        }
        let n_blocks = f.blocks.len() as u32;
        let check_block = |b: BlockId| b.0 < n_blocks;
        let check_reg = |r: Reg| r.0 < f.n_regs;
        let check_op = |op: &Operand| match op {
            Operand::Reg(r) => check_reg(*r),
            Operand::Imm(_) => true,
        };
        for block in &f.blocks {
            let mut fail = |msg: String| {
                errors.push(ValidationError {
                    func: f.name.clone(),
                    block: Some(block.label.clone()),
                    msg,
                });
            };
            for inst in &block.insts {
                if let Some(d) = inst.def() {
                    if !check_reg(d) {
                        fail(format!("destination register {d} out of range"));
                    }
                }
                for u in inst.uses() {
                    if !check_reg(u) {
                        fail(format!("register {u} out of range"));
                    }
                }
                match inst {
                    Inst::Call { callee, args, .. } => {
                        check_call(program, *callee, args.len(), &mut fail);
                    }
                    Inst::FuncAddr { func, .. } if func.0 as usize >= program.function_count() => {
                        fail(format!("function address target {func} out of range"));
                    }
                    Inst::BlockAddr { block: b, .. } if !check_block(*b) => {
                        fail(format!("block address target {b} out of range"));
                    }
                    _ => {}
                }
            }
            let mut fail = |msg: String| {
                errors.push(ValidationError {
                    func: f.name.clone(),
                    block: Some(block.label.clone()),
                    msg,
                });
            };
            match &block.term {
                Terminator::Jmp(b) => {
                    if !check_block(*b) {
                        fail(format!("jump target {b} out of range"));
                    }
                }
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    if !check_op(cond) {
                        fail("branch condition register out of range".into());
                    }
                    for b in [then_bb, else_bb] {
                        if !check_block(*b) {
                            fail(format!("branch target {b} out of range"));
                        }
                    }
                }
                Terminator::Switch {
                    scrut,
                    cases,
                    default,
                } => {
                    if !check_op(scrut) {
                        fail("switch scrutinee register out of range".into());
                    }
                    if !check_block(*default) {
                        fail(format!("switch default {default} out of range"));
                    }
                    let mut seen = std::collections::HashSet::new();
                    for (v, b) in cases {
                        if !check_block(*b) {
                            fail(format!("switch target {b} out of range"));
                        }
                        if !seen.insert(*v) {
                            fail(format!("duplicate switch case value {v}"));
                        }
                    }
                }
                Terminator::JmpIndirect { target } => {
                    if !check_op(target) {
                        fail("indirect jump target register out of range".into());
                    }
                }
                Terminator::Ret(Some(v)) => {
                    if !check_op(v) {
                        fail("return value register out of range".into());
                    }
                }
                Terminator::Ret(None) => {}
                Terminator::Halt { code } => {
                    if !check_op(code) {
                        fail("halt code register out of range".into());
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_call(program: &Program, callee: FuncId, n_args: usize, fail: &mut impl FnMut(String)) {
    if callee.0 as usize >= program.function_count() {
        fail(format!("call target {callee} out of range"));
        return;
    }
    let target = program.func(callee);
    if usize::from(target.n_params) != n_args {
        fail(format!(
            "call to `{}` passes {n_args} args but it takes {}",
            target.name, target.n_params
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn valid_program_passes() {
        let p = parse_program(
            "func main() {\nentry:\n r = call f(1)\n ret r\n}\nfunc f(a) {\nentry:\n ret a\n}\n",
        )
        .unwrap();
        assert!(validate(&p).is_ok());
    }

    #[test]
    fn arity_mismatch_detected() {
        let p = parse_program(
            "func main() {\nentry:\n r = call f(1, 2)\n ret r\n}\nfunc f(a) {\nentry:\n ret a\n}\n",
        )
        .unwrap();
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("passes 2 args")));
    }

    #[test]
    fn entry_with_params_detected() {
        let p = parse_program("func main(a) {\nentry:\n ret a\n}\n").unwrap();
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("no parameters")));
    }

    #[test]
    fn duplicate_block_labels_detected() {
        // The parser refuses duplicate labels, so mutate a parsed program.
        let mut p = parse_program("func main() {\nentry:\n jmp next\nnext:\n ret 0\n}\n").unwrap();
        p.funcs_mut()[0].blocks[1].label = "entry".into();
        let errs = validate(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.msg.contains("duplicate block label")),
            "{errs:?}"
        );
    }

    #[test]
    fn callee_params_exceeding_registers_detected() {
        // A callee whose declared arity overflows its register file: the
        // call itself has matching arity, but delivering the arguments
        // would write out-of-range callee registers.
        let mut p = parse_program(
            "func main() {\nentry:\n r = call f(1)\n ret r\n}\nfunc f(a) {\nentry:\n ret a\n}\n",
        )
        .unwrap();
        let f = &mut p.funcs_mut()[1];
        f.n_params = f.n_regs + 1;
        let errs = validate(&p).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.func == "f" && e.msg.contains("params but has only")),
            "{errs:?}"
        );
        // The caller-side arity check fires too (1 arg vs inflated arity).
        assert!(errs.iter().any(|e| e.msg.contains("passes 1 args")));
    }

    #[test]
    fn duplicate_switch_cases_detected() {
        let p = parse_program(
            "func main() {\nentry:\n x = 1\n switch x { 1 -> a, 1 -> b, _ -> a }\na:\n ret 0\nb:\n ret 1\n}\n",
        )
        .unwrap();
        let errs = validate(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("duplicate switch")));
    }
}
