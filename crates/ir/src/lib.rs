//! # octo-ir — MicroIR, the program substrate of the OctoPoCs reproduction.
//!
//! The original OctoPoCs system operates on real x86 binaries through Intel
//! PIN (dynamic taint analysis) and angr (symbolic execution). Neither real
//! binaries nor those frameworks are available here, so this crate provides
//! the substitute substrate: a small register-based intermediate
//! representation ("MicroIR") with exactly the observables those tools
//! expose on native code:
//!
//! * byte-addressable memory with bounded allocations (so out-of-bounds
//!   accesses are detectable, like a SIGSEGV),
//! * explicit file input instructions (`open` / `read` / `getc` / `seek` /
//!   `tell` / `mmap`) including a *file position indicator*, which phase P3
//!   of the paper uses to place crash primitives,
//! * function calls with a real call stack (so crash backtraces exist and
//!   `ep` — the first shared function on the stack — is well defined),
//! * conditional branches and switches whose conditions symbolic execution
//!   can constrain,
//! * indirect jumps/calls through computed addresses, which static CFG
//!   recovery cannot resolve (used to reproduce the paper's Idx-15 failure
//!   mode, an angr CFG-construction bug).
//!
//! Programs can be constructed through [`builder::FunctionBuilder`] or
//! written in a textual assembly dialect parsed by [`parse::parse_program`].
//!
//! ```
//! use octo_ir::parse::parse_program;
//!
//! let src = r#"
//! func main() {
//! entry:
//!     fd = open
//!     buf = alloc 16
//!     n = read fd, buf, 16
//!     ret n
//! }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.function_count(), 1);
//! # Ok::<(), octo_ir::parse::ParseError>(())
//! ```
#![warn(missing_docs)]

pub mod builder;
pub mod canon;
pub mod inst;
pub mod parse;
pub mod printer;
pub mod program;
pub mod stats;
pub mod types;
pub mod validate;

pub use canon::{
    canonical_block_order, canonicalize_function, canonicalize_program, rewrite_function,
};
pub use inst::{Inst, Terminator};
pub use program::{BasicBlock, Function, Program};
pub use stats::ProgramStats;
pub use types::{BinOp, BlockId, CheckedOp, FuncId, Operand, Reg, RegionKind, UnOp, Width};

/// Tag bits used to encode a basic-block address as a runtime value.
///
/// `baddr`/`ijmp` model computed gotos: the address of a block is an opaque
/// 64-bit value that concrete and symbolic interpreters must agree on.
pub const BLOCK_ADDR_TAG: u64 = 0xB10C_0000_0000_0000;
/// Tag bits used to encode a function address as a runtime value (for
/// indirect calls through function pointers).
pub const FUNC_ADDR_TAG: u64 = 0xF0FC_0000_0000_0000;
/// Mask selecting the tag portion of an encoded code address.
pub const ADDR_TAG_MASK: u64 = 0xFFFF_0000_0000_0000;

/// Encodes the address of `block` in `func` as an opaque runtime value.
pub fn encode_block_addr(func: FuncId, block: BlockId) -> u64 {
    BLOCK_ADDR_TAG | (u64::from(func.0) << 32) | u64::from(block.0)
}

/// Decodes a value produced by [`encode_block_addr`].
///
/// Returns `None` if the value does not carry the block-address tag.
pub fn decode_block_addr(value: u64) -> Option<(FuncId, BlockId)> {
    if value & ADDR_TAG_MASK == BLOCK_ADDR_TAG {
        Some((
            FuncId(((value >> 32) & 0xFFFF) as u32),
            BlockId((value & 0xFFFF_FFFF) as u32),
        ))
    } else {
        None
    }
}

/// Encodes the address of `func` as an opaque runtime value.
pub fn encode_func_addr(func: FuncId) -> u64 {
    FUNC_ADDR_TAG | u64::from(func.0)
}

/// Decodes a value produced by [`encode_func_addr`].
///
/// Returns `None` if the value does not carry the function-address tag.
pub fn decode_func_addr(value: u64) -> Option<FuncId> {
    if value & ADDR_TAG_MASK == FUNC_ADDR_TAG {
        Some(FuncId((value & 0xFFFF_FFFF) as u32))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_roundtrip() {
        let v = encode_block_addr(FuncId(7), BlockId(13));
        assert_eq!(decode_block_addr(v), Some((FuncId(7), BlockId(13))));
        assert_eq!(decode_func_addr(v), None);
    }

    #[test]
    fn func_addr_roundtrip() {
        let v = encode_func_addr(FuncId(42));
        assert_eq!(decode_func_addr(v), Some(FuncId(42)));
        assert_eq!(decode_block_addr(v), None);
    }

    #[test]
    fn plain_values_are_not_code_addresses() {
        assert_eq!(decode_block_addr(12345), None);
        assert_eq!(decode_func_addr(0), None);
    }
}
