//! MicroIR instructions and block terminators.

use crate::types::{BinOp, BlockId, CheckedOp, FuncId, Operand, Reg, RegionKind, UnOp, Width};

/// A single (non-terminator) MicroIR instruction.
///
/// Every instruction executes in one step of the concrete or symbolic
/// interpreter. Memory-touching and file-touching instructions are the
/// observables on which the taint engine (paper §III-A) and the combiner
/// (paper §III-C) operate.
///
/// Field names follow one convention throughout: `dst` receives the
/// result, `lhs`/`rhs`/`src` are read, `addr`+`offset` form the effective
/// address, `fd`/`buf`/`len`/`pos` are the file-call parameters.
#[allow(missing_docs)] // variant docs describe each form; field names are conventional
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = imm` — load a 64-bit constant.
    Const { dst: Reg, value: u64 },
    /// `dst = src` — register/immediate move.
    Move { dst: Reg, src: Operand },
    /// `dst = op(lhs, rhs)` — wrapping arithmetic / comparison.
    Bin {
        dst: Reg,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = op(src)` — unary operation.
    Un { dst: Reg, op: UnOp, src: Operand },
    /// Overflow-checked arithmetic at a given width.
    ///
    /// Overflow is a crash (CWE-190, integer overflow) — e.g. the
    /// CVE-2018-20330 row of Table II.
    CheckedBin {
        dst: Reg,
        op: CheckedOp,
        width: Width,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = *(addr + offset)` — load `width` bytes little-endian.
    Load {
        dst: Reg,
        addr: Operand,
        offset: u64,
        width: Width,
    },
    /// `*(addr + offset) = src` — store `width` bytes little-endian.
    Store {
        addr: Operand,
        offset: u64,
        src: Operand,
        width: Width,
    },
    /// Allocate `size` bytes, returning the base address in `dst`.
    ///
    /// Allocations have hard bounds: access outside them is a crash
    /// (CWE-119, buffer overflow).
    Alloc {
        dst: Reg,
        size: Operand,
        region: RegionKind,
    },
    /// Direct call. `dst` receives the return value, if any.
    Call {
        dst: Option<Reg>,
        callee: FuncId,
        args: Vec<Operand>,
    },
    /// Indirect call through a function address (see [`crate::encode_func_addr`]).
    CallIndirect {
        dst: Option<Reg>,
        target: Operand,
        args: Vec<Operand>,
    },
    /// `dst = &func` — materialise a function address.
    FuncAddr { dst: Reg, func: FuncId },
    /// `dst = &&block` — materialise a block address (computed goto).
    BlockAddr { dst: Reg, block: BlockId },
    /// `dst = open()` — open the input file; returns a file descriptor.
    ///
    /// MicroIR programs have exactly one input: "the PoC file". This mirrors
    /// the paper's setting, where the vulnerable binaries take one malformed
    /// file as input.
    FileOpen { dst: Reg },
    /// `dst = read(fd, buf, len)` — read up to `len` bytes at the current
    /// file position into memory at `buf`; returns the byte count and
    /// advances the file position indicator.
    FileRead {
        dst: Reg,
        fd: Operand,
        buf: Operand,
        len: Operand,
    },
    /// `dst = getc(fd)` — read one byte; returns `u64::MAX` at EOF.
    FileGetc { dst: Reg, fd: Operand },
    /// `seek(fd, pos)` — set the file position indicator.
    FileSeek { fd: Operand, pos: Operand },
    /// `dst = tell(fd)` — read the file position indicator (paper §III-C
    /// uses this indicator to place bunches in `poc'`).
    FileTell { dst: Reg, fd: Operand },
    /// `dst = size(fd)` — total input size in bytes.
    FileSize { dst: Reg, fd: Operand },
    /// `dst = mmap(fd)` — map the whole input file; returns the base
    /// address. The paper's taint engine hooks both file-read and
    /// memory-mapping functions (§III-A, Fig. 4).
    MemMap { dst: Reg, fd: Operand },
    /// Unconditional abort with a code (assertion failure / explicit
    /// vulnerability trigger).
    Trap { code: u64 },
    /// No operation (padding; useful for instrumentation tests).
    Nop,
}

impl Inst {
    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Move { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::CheckedBin { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::FuncAddr { dst, .. }
            | Inst::BlockAddr { dst, .. }
            | Inst::FileOpen { dst }
            | Inst::FileRead { dst, .. }
            | Inst::FileGetc { dst, .. }
            | Inst::FileTell { dst, .. }
            | Inst::FileSize { dst, .. }
            | Inst::MemMap { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } | Inst::CallIndirect { dst, .. } => *dst,
            Inst::Store { .. } | Inst::FileSeek { .. } | Inst::Trap { .. } | Inst::Nop => None,
        }
    }

    /// The registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        fn push(v: &mut Vec<Reg>, op: &Operand) {
            if let Operand::Reg(r) = op {
                v.push(*r);
            }
        }
        let mut v = Vec::new();
        match self {
            Inst::Const { .. }
            | Inst::FuncAddr { .. }
            | Inst::BlockAddr { .. }
            | Inst::FileOpen { .. }
            | Inst::Trap { .. }
            | Inst::Nop => {}
            Inst::Move { src, .. } | Inst::Un { src, .. } => push(&mut v, src),
            Inst::Bin { lhs, rhs, .. } | Inst::CheckedBin { lhs, rhs, .. } => {
                push(&mut v, lhs);
                push(&mut v, rhs);
            }
            Inst::Load { addr, .. } => push(&mut v, addr),
            Inst::Store { addr, src, .. } => {
                push(&mut v, addr);
                push(&mut v, src);
            }
            Inst::Alloc { size, .. } => push(&mut v, size),
            Inst::Call { args, .. } => args.iter().for_each(|a| push(&mut v, a)),
            Inst::CallIndirect { target, args, .. } => {
                push(&mut v, target);
                args.iter().for_each(|a| push(&mut v, a));
            }
            Inst::FileRead { fd, buf, len, .. } => {
                push(&mut v, fd);
                push(&mut v, buf);
                push(&mut v, len);
            }
            Inst::FileGetc { fd, .. } | Inst::FileTell { fd, .. } | Inst::FileSize { fd, .. } => {
                push(&mut v, fd)
            }
            Inst::FileSeek { fd, pos } => {
                push(&mut v, fd);
                push(&mut v, pos);
            }
            Inst::MemMap { fd, .. } => push(&mut v, fd),
        }
        v
    }

    /// Whether this instruction can transfer control to another function.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallIndirect { .. })
    }
}

/// A basic-block terminator.
#[allow(missing_docs)] // variant docs describe each form; field names are conventional
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Two-way branch on `cond != 0`.
    Br {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Multi-way branch on an exact value match.
    Switch {
        scrut: Operand,
        cases: Vec<(u64, BlockId)>,
        default: BlockId,
    },
    /// Indirect jump through a block address ([`crate::encode_block_addr`]).
    ///
    /// Static CFG recovery cannot resolve these edges; dynamic CFG recovery
    /// (paper §IV-B) observes them at execution time. A program whose
    /// reachability hinges on an unresolvable indirect jump reproduces the
    /// paper's Idx-15 CFG-construction failure.
    JmpIndirect { target: Operand },
    /// Return from the current function.
    Ret(Option<Operand>),
    /// Terminate the whole program with an exit code.
    Halt { code: Operand },
}

impl Terminator {
    /// Statically known successor blocks (empty for `ijmp`, `ret`, `halt`).
    pub fn static_successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jmp(b) => vec![*b],
            Terminator::Br {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Switch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v.dedup();
                v
            }
            Terminator::JmpIndirect { .. } | Terminator::Ret(_) | Terminator::Halt { .. } => {
                Vec::new()
            }
        }
    }

    /// Whether the terminator leaves the function (return or program exit).
    pub fn is_exit(&self) -> bool {
        matches!(self, Terminator::Ret(_) | Terminator::Halt { .. })
    }

    /// Whether control flow past this terminator cannot be derived from the
    /// program text alone.
    pub fn is_indirect(&self) -> bool {
        matches!(self, Terminator::JmpIndirect { .. })
    }

    /// The registers read by this terminator (mirrors [`Inst::uses`]).
    pub fn uses(&self) -> Vec<Reg> {
        let op = match self {
            Terminator::Jmp(_) | Terminator::Ret(None) => return Vec::new(),
            Terminator::Br { cond, .. } => cond,
            Terminator::Switch { scrut, .. } => scrut,
            Terminator::JmpIndirect { target } => target,
            Terminator::Ret(Some(v)) => v,
            Terminator::Halt { code } => code,
        };
        match op {
            Operand::Reg(r) => vec![*r],
            Operand::Imm(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            dst: Reg(5),
            op: BinOp::Add,
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::Imm(3),
        };
        assert_eq!(i.def(), Some(Reg(5)));
        assert_eq!(i.uses(), vec![Reg(1)]);

        let s = Inst::Store {
            addr: Operand::Reg(Reg(2)),
            offset: 4,
            src: Operand::Reg(Reg(3)),
            width: Width::W4,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg(2), Reg(3)]);
    }

    #[test]
    fn call_uses_args_and_target() {
        let c = Inst::CallIndirect {
            dst: Some(Reg(0)),
            target: Operand::Reg(Reg(9)),
            args: vec![Operand::Reg(Reg(1)), Operand::Imm(2)],
        };
        assert!(c.is_call());
        assert_eq!(c.uses(), vec![Reg(9), Reg(1)]);
    }

    #[test]
    fn switch_successors_dedup() {
        let t = Terminator::Switch {
            scrut: Operand::Reg(Reg(0)),
            cases: vec![(1, BlockId(2)), (2, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.static_successors(), vec![BlockId(2), BlockId(3)]);
        assert!(!t.is_exit());
    }

    #[test]
    fn indirect_has_no_static_successors() {
        let t = Terminator::JmpIndirect {
            target: Operand::Reg(Reg(0)),
        };
        assert!(t.static_successors().is_empty());
        assert!(t.is_indirect());
    }
}
