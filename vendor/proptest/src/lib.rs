//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `proptest` its test-suites use:
//! [`strategy::Strategy`] with `prop_map` / `prop_recursive` / `boxed`,
//! [`strategy::Just`], integer-range and tuple strategies, `any::<T>()`,
//! [`collection::vec`], [`array::uniform3`], and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//! macros.
//!
//! Differences from upstream proptest, deliberate and documented:
//! - **No shrinking.** A failing case panics with the case number and the
//!   deterministic seed; values are not minimised.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   fully-qualified name, so failures reproduce across runs and machines.
//! - **Uniform sampling.** No bias towards edge cases; properties must
//!   hold for all inputs anyway.

pub mod test_runner {
    //! Execution machinery used by the `proptest!` macro expansion.

    /// Why a single generated case did not produce a pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is discarded, not failed.
        Reject(&'static str),
        /// A `prop_assert*!` failed with this rendered message.
        Fail(String),
    }

    impl TestCaseError {
        /// An explicit failure with a custom message (usable with `return
        /// Err(...)` inside a property body).
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// An explicit rejection (the case is discarded, not failed).
        pub fn reject(reason: &'static str) -> TestCaseError {
            TestCaseError::Reject(reason)
        }
    }

    /// Runner configuration (`cases` is the only knob this subset honours).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config that runs `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a raw seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Creates a generator seeded from a test's qualified name, so each
        /// property gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators this subset supports.

    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree: strategies generate
    /// final values directly and nothing shrinks.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `recurse` receives the strategy for the
        /// previous depth level and returns the strategy for one more
        /// level. `_desired_size` / `_expected_branch_size` are accepted
        /// for signature compatibility but unused (no size accounting).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                cur = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            cur
        }

        /// Type-erases the strategy behind a cheaply-clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, reference-counted strategy handle.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> BoxedStrategy<V> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Union<V> {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Union<V> {
        /// A union over the given (non-empty) alternatives.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.below(span)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span)) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+)
                ;
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace samples.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + 'static {
        /// Generates one value covering the whole domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<A>(core::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// Full-domain strategy for `A` (`any::<u8>()`, `any::<bool>()`, …).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! `prop::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy with `size` elements (count or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    //! `prop::array::uniform3`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[V; 3]` from one element strategy.
    #[derive(Debug, Clone)]
    pub struct Uniform3<S>(S);

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }

    /// Three independent samples of `element` as a fixed-size array.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude` for the supported subset.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = u64::from(config.cases) * 16 + 64;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many prop_assume! rejections ({} attempts, {} passes)",
                    stringify!($name), attempts, passed,
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (no shrinking): {}",
                            stringify!($name), passed, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice between the listed strategies (all must share one value
/// type). Weighted arms are not supported by this subset.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Discards the current case when the assumption does not hold; the runner
/// draws a fresh case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_tree() -> BoxedStrategy<Tree> {
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 1u16..=35, z in 0u64..300) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=35).contains(&y));
            prop_assert!(z < 300);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<u8>(), 2..5), w in prop::collection::vec(any::<bool>(), 3)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn tuple_and_oneof((a, b) in (any::<u8>(), 1u8..4), pick in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!((1..4).contains(&b));
            prop_assert!(pick == 1 || pick == 2 || pick == 5 || pick == 6);
            let _ = a;
        }

        #[test]
        fn recursive_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn assume_rejects(v in any::<u8>()) {
            prop_assume!(v != 0);
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn arrays(a in prop::array::uniform3(any::<u8>())) {
            prop_assert_eq!(a.len(), 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::from_name("x::y");
        let mut r2 = crate::test_runner::TestRng::from_name("x::y");
        let s = crate::collection::vec(any::<u64>(), 4);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
