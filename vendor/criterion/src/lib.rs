//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the criterion surface its benches use: `Criterion`,
//! `benchmark_group` (+ `sample_size` / `throughput` / `finish`),
//! `bench_function`, `Bencher::iter` / `iter_batched`, `BatchSize`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs `sample_size` timed samples of
//! one routine invocation each (after one warm-up invocation) and reports
//! min / mean / max wall-time. With `--test` on the command line (CI runs
//! `cargo bench -- --test`) every routine executes exactly once and
//! nothing is timed — matching criterion's test mode, which is how these
//! benches are smoke-checked.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. This subset re-runs setup per
/// invocation regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: upstream batches many per allocation.
    SmallInput,
    /// Large inputs: upstream batches few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Routine processes this many abstract elements per invocation.
    Elements(u64),
    /// Routine processes this many bytes per invocation.
    Bytes(u64),
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher<'a> {
    test_mode: bool,
    samples: usize,
    durations: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, discarding its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let rounds = if self.test_mode { 1 } else { self.samples + 1 };
        for i in 0..rounds {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            drop(out);
            // First round is warm-up (skipped in test mode, where nothing
            // is recorded at all).
            if !self.test_mode && i > 0 {
                self.durations.push(elapsed);
            }
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let rounds = if self.test_mode { 1 } else { self.samples + 1 };
        for i in 0..rounds {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            drop(out);
            if !self.test_mode && i > 0 {
                self.durations.push(elapsed);
            }
        }
    }
}

fn report(id: &str, durations: &[Duration], throughput: Option<Throughput>) {
    if durations.is_empty() {
        println!("bench {id:<40} ok (test mode)");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().copied().unwrap_or_default();
    let max = durations.iter().max().copied().unwrap_or_default();
    let thr = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {id:<40} mean {mean:>12?}  [min {min:?}, max {max:?}, n={}]{thr}",
        durations.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Overrides the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.default_samples = n.max(1);
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut durations = Vec::new();
        let mut b = Bencher {
            test_mode: self.test_mode,
            samples: self.default_samples,
            durations: &mut durations,
        };
        f(&mut b);
        report(id, &durations, None);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            samples: None,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    parent: &'c Criterion,
    name: String,
    samples: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(1));
        self
    }

    /// Declares per-invocation throughput for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut durations = Vec::new();
        let mut b = Bencher {
            test_mode: self.parent.test_mode,
            samples: self.samples.unwrap_or(self.parent.default_samples),
            durations: &mut durations,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            &durations,
            self.throughput,
        );
        self
    }

    /// Ends the group. (No-op beyond API compatibility.)
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = <$crate::Criterion as ::core::default::Default>::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            test_mode: false,
            default_samples: 3,
        };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Elements(10));
            g.bench_function("id", |b| b.iter(|| ran += 1));
            g.finish();
        }
        // one warm-up + two timed samples
        assert_eq!(ran, 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            default_samples: 10,
        };
        let mut ran = 0u32;
        c.bench_function("once", |b| {
            b.iter_batched(|| 1u8, |x| ran += u32::from(x), BatchSize::SmallInput)
        });
        assert_eq!(ran, 1);
    }
}
