//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the handful of `rand` items it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_ratio`. The generator is
//! a deterministic SplitMix64 — statistically fine for fuzzing mutation
//! schedules, and identical across platforms, which the fuzzer's
//! reproducible-seed contract wants anyway. It is **not** a CSPRNG.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full bit pattern of a
/// random word (the subset of `rand`'s `Standard` distribution we need).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Use the high bit: SplitMix64's low bits are fine too, but the
        // high bit matches how rand derives bools from words.
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples one value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<Ra: SampleRange>(&mut self, range: Ra) -> Ra::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when
            // used as a word stream; period 2^64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1u8..=35);
            assert!((1..=35).contains(&w));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn ratio_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..4000).filter(|_| rng.gen_ratio(1, 8)).count();
        // Expectation 500; allow wide slack — this is a smoke test.
        assert!((300..700).contains(&hits), "hits={hits}");
    }
}
