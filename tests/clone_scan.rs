//! End-to-end clone scanning over the Table II corpus: the scan must
//! *rediscover* every pair's shared set ℓ (the paper takes ℓ as input;
//! `octo-clone` derives it), the expanded batch's true-pair verdicts
//! must be byte-identical to the known-ℓ golden verdicts, and the
//! candidate document must be deterministic at any worker count (CI
//! diffs it against `tests/golden/clone_candidates.json`).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

use octo_clone::CloneParams;
use octo_corpus::all_pairs;
use octo_sched::NullSink;
use octopocs::batch::{run_batch, BatchJob, BatchOptions};
use octopocs::{corpus_scan_inputs, expand_scan, run_scan, PipelineConfig};

const GOLDEN_CANDIDATES: &str = include_str!("golden/clone_candidates.json");
const GOLDEN_VERDICTS: &str = include_str!("golden/batch_verdicts.json");

#[test]
fn corpus_scan_rediscovers_every_shared_set() {
    let (sources, targets) = corpus_scan_inputs();
    let expansion = expand_scan(&sources, &targets, &CloneParams::default());
    for pair in all_pairs() {
        let name = pair.display_name();
        let job = expansion
            .jobs
            .iter()
            .find(|j| j.name == format!("{name} => {name}"))
            .unwrap_or_else(|| panic!("true pair {name} not expanded — recall broken"));
        let discovered: BTreeSet<&str> = job.shared.iter().map(String::as_str).collect();
        let expected: BTreeSet<&str> = pair.shared.iter().map(String::as_str).collect();
        assert_eq!(
            discovered, expected,
            "{name}: discovered ℓ differs from the curated shared set"
        );
    }
}

#[test]
fn corpus_scan_candidates_match_the_golden_file() {
    let (sources, targets) = corpus_scan_inputs();
    let expansion = expand_scan(&sources, &targets, &CloneParams::default());
    assert_eq!(
        expansion.render_candidates_json(),
        GOLDEN_CANDIDATES,
        "retrieval drifted — regenerate tests/golden/clone_candidates.json \
         (octopocs scan --corpus --candidates-json) and review the diff"
    );
    // The corpus's cross-pair source sharing shows up as off-diagonal
    // expanded jobs: 31 in total for 15 true pairs.
    assert_eq!(expansion.jobs.len(), 31, "expansion shape changed");
}

#[test]
fn scan_verdicts_on_true_pairs_are_byte_identical_to_known_shared_golden() {
    let (sources, targets) = corpus_scan_inputs();
    let config = PipelineConfig::default();
    let report = run_scan(
        &sources,
        &targets,
        &CloneParams::default(),
        &config,
        &BatchOptions {
            workers: 4,
            ..BatchOptions::default()
        },
        &NullSink,
    );
    // Index the scan's verdict lines by job name. The golden file's
    // lines carry the bare pair name; the scan names jobs
    // "{source} => {target}", so the diagonal lines must match the
    // golden byte-for-byte once the name prefix is accounted for.
    let strip = |line: &str| line.trim_end_matches(',').to_string();
    let scan_json = report.batch.render_verdicts_json();
    let mut scan_lines: Vec<String> = Vec::new();
    for line in scan_json.lines() {
        if let Some(rest) = line.strip_prefix("{\"name\":\"") {
            if let Some((name, tail)) = rest.split_once("\",\"verdict\"") {
                if let Some((src, tgt)) = name.split_once(" => ") {
                    if src == tgt {
                        scan_lines.push(strip(&format!("{{\"name\":\"{src}\",\"verdict\"{tail}")));
                    }
                }
            }
        }
    }
    let golden_lines: Vec<String> = GOLDEN_VERDICTS
        .lines()
        .filter(|l| l.starts_with("{\"name\":\""))
        .map(strip)
        .collect();
    assert_eq!(golden_lines.len(), 15);
    assert_eq!(
        scan_lines, golden_lines,
        "true-pair verdicts diverge from the known-ℓ golden"
    );
}

#[test]
fn scan_off_diagonal_jobs_agree_with_direct_batch() {
    // Every expanded job — diagonal or not — must verify exactly as a
    // hand-built batch job with the same discovered shared set would.
    let (sources, targets) = corpus_scan_inputs();
    let params = CloneParams::default();
    let config = PipelineConfig::default();
    let expansion = expand_scan(&sources, &targets, &params);
    let off_diag: Vec<BatchJob> = expansion
        .jobs
        .iter()
        .filter(|j| {
            let (src, tgt) = j.name.split_once(" => ").expect("scan job name");
            src != tgt
        })
        .take(4)
        .cloned()
        .collect();
    assert!(!off_diag.is_empty(), "corpus has off-diagonal clones");
    let direct = run_batch(&off_diag, &config, &BatchOptions::default(), &NullSink);
    let scanned = run_scan(
        &sources,
        &targets,
        &params,
        &config,
        &BatchOptions::default(),
        &NullSink,
    );
    for job in &off_diag {
        let a = direct
            .entries
            .iter()
            .find(|e| e.name == job.name)
            .expect("direct entry");
        let b = scanned
            .batch
            .entries
            .iter()
            .find(|e| e.name == job.name)
            .expect("scanned entry");
        assert_eq!(
            a.report.verdict.type_label(),
            b.report.verdict.type_label(),
            "{}",
            job.name
        );
    }
}

fn cli_path() -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/ or release/
    p.push("octopocs");
    p
}

fn ensure_cli() -> PathBuf {
    let cli = cli_path();
    if !cli.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "octopocs", "--bin", "octopocs"])
            .status()
            .expect("cargo build");
        assert!(status.success());
    }
    cli
}

#[test]
fn cli_scan_corpus_candidates_are_deterministic_across_workers() {
    let cli = ensure_cli();
    let dir = std::env::temp_dir().join(format!("octopocs-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");
    let mut docs = Vec::new();
    for workers in ["1", "2", "8"] {
        let path = dir.join(format!("cand_{workers}.json"));
        let output = Command::new(&cli)
            .args([
                "scan",
                "--corpus",
                "--workers",
                workers,
                "--verdicts-json",
                "--candidates-json",
                path.to_str().expect("utf8"),
            ])
            .output()
            .expect("spawn cli");
        assert_eq!(
            output.status.code(),
            Some(0),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        docs.push(std::fs::read_to_string(&path).expect("candidates written"));
    }
    assert_eq!(docs[0], GOLDEN_CANDIDATES, "CLI output drifted from golden");
    assert_eq!(docs[0], docs[1], "worker count changed the candidates");
    assert_eq!(docs[0], docs[2], "worker count changed the candidates");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_clone_and_canonical_lint_work_on_files() {
    use octo_ir::printer::print_program;
    let cli = ensure_cli();
    let dir = std::env::temp_dir().join(format!("octopocs-clone-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");
    let pair = all_pairs().into_iter().next().expect("idx1");
    let s_path = dir.join("s.mir");
    let t_path = dir.join("t.mir");
    std::fs::write(&s_path, print_program(&pair.s)).expect("write s");
    std::fs::write(&t_path, print_program(&pair.t)).expect("write t");

    // clone: the shared function is found, exit code 0.
    let output = Command::new(&cli)
        .args([
            "clone",
            "--s",
            s_path.to_str().expect("utf8"),
            "--t",
            t_path.to_str().expect("utf8"),
            "--json",
        ])
        .output()
        .expect("spawn cli");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for shared in &pair.shared {
        assert!(
            stdout.contains(&format!("\"s_func\":\"{shared}\"")),
            "{stdout}"
        );
    }

    // lint --canonical: prints a canonical program that is a parseable
    // fixed point.
    let output = Command::new(&cli)
        .args(["lint", t_path.to_str().expect("utf8"), "--canonical"])
        .output()
        .expect("spawn cli");
    assert_eq!(output.status.code(), Some(0));
    let canon_text = String::from_utf8(output.stdout).expect("utf8");
    let reparsed = octo_ir::parse::parse_program(&canon_text).expect("canonical text parses");
    assert_eq!(
        octo_ir::printer::print_program_canonical(&reparsed),
        canon_text,
        "canonical print must be a fixed point"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
