//! Property tests over the whole pipeline: randomly generated software
//! pairs must verify correctly.
//!
//! The generator produces "gated reader" pairs: `S` guards the shared
//! vulnerable decoder behind a random sequence of byte gates; `T` guards
//! the *same cloned decoder* behind a different random gate sequence. For
//! every generated pair the pipeline must report the vulnerability as
//! triggered and the reformed `poc'` must actually crash `T` inside the
//! clone — across hundreds of random shapes, not just the 15 corpus rows.

use octo_ir::parse::parse_program;
use octo_ir::Program;
use octo_poc::PocFile;
use octopocs::{verify, PipelineConfig, SoftwarePairInput, TriggerKind, Verdict};
use proptest::prelude::*;

/// The cloned vulnerable function: crashes when its input byte equals the
/// trigger value.
fn shared_fragment(trigger: u8) -> String {
    format!(
        r#"
func decode(fd) {{
entry:
    v = getc fd
    c = eq v, {trigger}
    br c, boom, fine
boom:
    buf = alloc 4
    store.1 buf + 4, v
    jmp fine
fine:
    ret
}}
"#
    )
}

/// A reader that checks `gates` byte-by-byte, then hands the file to the
/// cloned decoder.
fn gated_reader(gates: &[u8], trigger: u8) -> Program {
    let mut src = String::from("func main() {\nentry:\n    fd = open\n    jmp g0\n");
    for (i, g) in gates.iter().enumerate() {
        src.push_str(&format!(
            "g{i}:\n    b{i} = getc fd\n    c{i} = eq b{i}, {g}\n    br c{i}, g{next}, rej\n",
            next = i + 1
        ));
    }
    src.push_str(&format!(
        "g{}:\n    call decode(fd)\n    halt 0\nrej:\n    halt 1\n}}\n{}",
        gates.len(),
        shared_fragment(trigger)
    ));
    parse_program(&src).expect("generated reader parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any propagated gated pair is verified as triggered, with the
    /// correct Type-I/Type-II split, and the reformed PoC works.
    #[test]
    fn random_gated_pairs_verify_as_triggered(
        s_gates in prop::collection::vec(1u8..=255, 0..4),
        t_gates in prop::collection::vec(1u8..=255, 0..4),
        trigger in 1u8..=255,
    ) {
        let s = gated_reader(&s_gates, trigger);
        let t = gated_reader(&t_gates, trigger);
        let mut poc_bytes = s_gates.clone();
        poc_bytes.push(trigger);
        let poc = PocFile::new(poc_bytes);
        let shared = vec!["decode".to_string()];
        let input = SoftwarePairInput { s: &s, t: &t, poc: &poc, shared: &shared };
        let report = verify(&input, &PipelineConfig::default());

        let Verdict::Triggered { kind, poc_prime, .. } = &report.verdict else {
            return Err(TestCaseError::fail(format!(
                "expected triggered, got {:?} (s_gates={s_gates:?}, t_gates={t_gates:?})",
                report.verdict
            )));
        };
        // The reformed PoC crashes T inside the clone.
        let out = octo_vm::Vm::new(&t, poc_prime.bytes()).run();
        let crash = out.crash().expect("poc' must crash T");
        let decode = t.func_by_name("decode").expect("clone in T");
        prop_assert!(crash.backtrace.any_in(&[decode]));
        // poc' layout: T's gates then the trigger byte.
        for (i, g) in t_gates.iter().enumerate() {
            prop_assert_eq!(poc_prime.byte(i as u32), *g);
        }
        prop_assert_eq!(poc_prime.byte(t_gates.len() as u32), trigger);
        // Identical gates ⇒ the original guiding input fits ⇒ Type-I.
        if t_gates == s_gates {
            prop_assert_eq!(*kind, TriggerKind::TypeI);
        }
    }

    /// If the trigger value can never be delivered in T (hard-coded
    /// argument), verification must say Type-III, never Triggered.
    #[test]
    fn hardcoded_argument_pairs_verify_as_not_triggerable(
        s_gates in prop::collection::vec(1u8..=255, 0..3),
        fixed_arg in 0u64..=255,
        trigger in 1u8..=255,
    ) {
        prop_assume!(fixed_arg != u64::from(trigger));
        let s = gated_reader(&s_gates, trigger);
        // T calls the clone with a constant byte that differs from the
        // trigger — the tiffsplit/opj_compress situation.
        let t_src = format!(
            r#"
func main() {{
entry:
    fd = open
    buf = alloc 1
    store.1 buf, {fixed_arg}
    call decode_wrap(buf)
    halt 0
}}
func decode_wrap(p) {{
entry:
    v = load.1 p
    c = eq v, {trigger}
    br c, boom, fine
boom:
    ob = alloc 4
    store.1 ob + 4, v
    jmp fine
fine:
    ret
}}
"#
        );
        let t = parse_program(&t_src).expect("t parses");
        let mut poc_bytes = s_gates.clone();
        poc_bytes.push(trigger);
        let poc = PocFile::new(poc_bytes);
        // ℓ here is the decoder in S; T's clone has a different name on
        // purpose — ep missing means the vulnerable code is absent, which
        // must never be reported as triggered.
        let shared = vec!["decode".to_string()];
        let input = SoftwarePairInput { s: &s, t: &t, poc: &poc, shared: &shared };
        let report = verify(&input, &PipelineConfig::default());
        prop_assert!(
            !report.verdict.poc_generated(),
            "must not claim triggered: {:?}",
            report.verdict
        );
    }
}
