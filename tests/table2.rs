//! Integration test: the full pipeline reproduces Table II of the paper.
//!
//! For every one of the 15 software pairs, `octopocs::verify` must produce
//! the classification the paper reports: six Type-I, three Type-II, five
//! Type-III, one Failure — with `poc'` generated exactly for the nine
//! triggered rows, and every generated `poc'` actually crashing `T` inside
//! the shared code with the row's vulnerability class.

use octo_corpus::{all_pairs, Expected};
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn verify_pair(pair: &octo_corpus::SoftwarePair) -> octopocs::VerificationReport {
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    verify(&input, &PipelineConfig::default())
}

#[test]
fn table2_every_row_matches_the_paper() {
    for pair in all_pairs() {
        let t0 = std::time::Instant::now();
        let report = verify_pair(&pair);
        eprintln!(
            "Idx-{:<2} {:<24} -> {:<8} ({:.2}s)",
            pair.idx,
            pair.t_name,
            report.verdict.type_label(),
            t0.elapsed().as_secs_f64()
        );
        assert_eq!(
            report.verdict.type_label(),
            pair.expected.label(),
            "Idx-{} ({} → {}): expected {}, got {} [{:?}]",
            pair.idx,
            pair.s_name,
            pair.t_name,
            pair.expected.label(),
            report.verdict.type_label(),
            report.verdict,
        );
        assert_eq!(
            report.verdict.poc_generated(),
            pair.expected.poc_generated(),
            "Idx-{}: poc' column mismatch",
            pair.idx
        );
        assert_eq!(
            report.verdict.verified(),
            pair.expected.verified(),
            "Idx-{}: verification column mismatch",
            pair.idx
        );
    }
}

#[test]
fn generated_pocs_crash_t_inside_shared_code() {
    for pair in all_pairs() {
        if !pair.expected.poc_generated() {
            continue;
        }
        let report = verify_pair(&pair);
        let poc_prime = report
            .poc_prime()
            .unwrap_or_else(|| panic!("Idx-{}: no poc' produced", pair.idx));
        let mut vm = octo_vm::Vm::new(&pair.t, poc_prime.bytes());
        let out = vm.run();
        let crash = out
            .crash()
            .unwrap_or_else(|| panic!("Idx-{}: poc' does not crash T", pair.idx));
        let shared = pair.t.resolve_names(pair.shared.iter().map(String::as_str));
        assert!(
            crash.backtrace.any_in(&shared),
            "Idx-{}: poc' crash outside ℓ: {crash}",
            pair.idx
        );
        // The crash class matches the propagated vulnerability's class.
        match pair.cwe {
            "CWE-119" | "CWE-190" | "CWE-835" => {
                assert_eq!(crash.kind.class(), pair.cwe, "Idx-{}", pair.idx)
            }
            _ => {}
        }
    }
}

#[test]
fn original_poc_fails_on_type_ii_targets() {
    // The motivation of the paper: for Type-II rows the *original* PoC
    // does not trigger the propagated vulnerability in T (e.g. mutool
    // "can receive only a PDF file as input").
    for pair in all_pairs() {
        if pair.expected != Expected::TypeII {
            continue;
        }
        let out = octo_vm::Vm::new(&pair.t, pair.poc.bytes()).run();
        let shared = pair.t.resolve_names(pair.shared.iter().map(String::as_str));
        let crashed_in_shared = out
            .crash()
            .map(|c| c.backtrace.any_in(&shared))
            .unwrap_or(false);
        assert!(
            !crashed_in_shared,
            "Idx-{}: original poc should NOT crash T, got {out:?}",
            pair.idx
        );
    }
}

#[test]
fn original_poc_already_works_on_type_i_targets() {
    // Conversely, Type-I means the original guiding input fits T: the
    // original PoC itself triggers the propagated vulnerability.
    for pair in all_pairs() {
        if pair.expected != Expected::TypeI {
            continue;
        }
        let out = octo_vm::Vm::new(&pair.t, pair.poc.bytes()).run();
        let shared = pair.t.resolve_names(pair.shared.iter().map(String::as_str));
        let crashed_in_shared = out
            .crash()
            .map(|c| c.backtrace.any_in(&shared))
            .unwrap_or(false);
        assert!(
            crashed_in_shared,
            "Idx-{}: original poc should crash the Type-I target, got {out:?}",
            pair.idx
        );
    }
}
