//! Integration test: Table IV — naive vs directed symbolic execution.
//!
//! The shape that must hold (paper Table IV):
//! * directed execution generates `poc'` on all three comparison pairs;
//! * naive exploration succeeds only on the smallest target (opj_dump)
//!   and dies with `MemError` (path explosion) on MuPDF and the
//!   artificial gif2png;
//! * on the pair where both succeed, naive consumes at least as much
//!   memory as directed.

use octo_cfg::{build_cfg, CfgMode, DistanceMap};
use octo_corpus::pair_by_idx;
use octo_symex::{
    DirectedConfig, DirectedEngine, DirectedOutcome, DirectedStats, NaiveExplorer, NaiveOutcome,
    NaiveStats,
};
use octo_taint::{extract_crash_primitives, TaintConfig};

fn run_both(idx: u32) -> (NaiveOutcome, NaiveStats, DirectedOutcome, DirectedStats) {
    let pair = pair_by_idx(idx).expect("pair");
    let ep_s = pair.s.func_by_name(&pair.shared[0]).unwrap();
    let q = extract_crash_primitives(
        &pair.s,
        &pair.poc,
        &TaintConfig::new(
            ep_s,
            pair.s.resolve_names(pair.shared.iter().map(String::as_str)),
        ),
    )
    .expect("P1")
    .primitives;

    let ep_t = pair.t.func_by_name(&pair.shared[0]).unwrap();
    let file_len = pair.poc.len() as u64 + 64;

    let (n_out, n_stats) = NaiveExplorer::new(&pair.t, file_len, ep_t).run();

    let cfg = build_cfg(&pair.t, CfgMode::Dynamic).expect("cfg");
    let map = DistanceMap::compute(&pair.t, &cfg, ep_t);
    let config = DirectedConfig {
        file_len,
        ..DirectedConfig::default()
    };
    let (d_out, d_stats) = DirectedEngine::new(&pair.t, ep_t, &map, &q, config).run();
    (n_out, n_stats, d_out, d_stats)
}

#[test]
fn directed_generates_poc_on_all_three() {
    for idx in [7u32, 8, 9] {
        let (_, _, d_out, _) = run_both(idx);
        assert!(d_out.generated(), "Idx-{idx}: directed failed: {d_out:?}");
    }
}

#[test]
fn naive_succeeds_only_on_the_small_target() {
    // Idx 7: T = opj_dump — small enough for undirected exploration.
    let (n_out, n_stats, _, d_stats) = run_both(7);
    assert!(
        matches!(n_out, NaiveOutcome::ReachedTarget { .. }),
        "opj_dump naive should succeed: {n_out:?}"
    );
    // Where both work, naive is not cheaper in memory than directed.
    assert!(
        n_stats.peak_mem_bytes >= d_stats.peak_mem_bytes / 4,
        "naive {} vs directed {}",
        n_stats.peak_mem_bytes,
        d_stats.peak_mem_bytes
    );
}

#[test]
fn naive_memerrors_on_mupdf() {
    let (n_out, n_stats, _, _) = run_both(8);
    assert!(
        matches!(n_out, NaiveOutcome::MemError),
        "MuPDF naive should path-explode: {n_out:?} ({n_stats:?})"
    );
    assert!(n_stats.states_created > 100, "{n_stats:?}");
}

#[test]
fn naive_memerrors_on_gif2png_artificial() {
    let (n_out, n_stats, _, _) = run_both(9);
    assert!(
        matches!(n_out, NaiveOutcome::MemError),
        "gif2png(arti.) naive should path-explode: {n_out:?} ({n_stats:?})"
    );
}
