//! Integration test: Table V — fuzzing baselines vs OctoPoCs.
//!
//! Shape (with a scaled-down virtual budget; the outcome classes match
//! the paper's 20-hour runs):
//! * AFLFast verifies only the artificial gif2png (the shallow bug) and
//!   exhausts its budget on the magic-gated opj_dump and MuPDF targets;
//! * AFLGo cannot even start on MuPDF (static-CFG tool error) and
//!   exhausts its budget on opj_dump;
//! * OctoPoCs verifies all three.

use octo_corpus::pair_by_idx;
use octo_fuzz::{run_aflfast, run_aflgo, FuzzConfig, FuzzOutcome, FuzzTarget};
use octo_poc::formats::{mini_gif, mini_j2k};
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

fn config(budget: f64) -> FuzzConfig {
    FuzzConfig {
        budget_virtual_secs: budget,
        ..FuzzConfig::default()
    }
}

fn target<'p>(pair: &'p octo_corpus::SoftwarePair) -> FuzzTarget<'p> {
    FuzzTarget {
        program: &pair.t,
        shared: pair.t.resolve_names(pair.shared.iter().map(String::as_str)),
        limits: octo_vm::Limits::default(),
    }
}

#[test]
fn aflfast_cracks_gif2png_but_not_opj_dump() {
    // gif2png (artificial): shallow bug, valid seed → crash found.
    let gif = pair_by_idx(9).unwrap();
    let seed = mini_gif::Builder::new().block(&[1, 2, 3]).build();
    let out = run_aflfast(&target(&gif), &[seed], config(3_600.0));
    assert!(
        matches!(out, FuzzOutcome::CrashFound { .. }),
        "gif2png: {out:?}"
    );

    // opj_dump: five exact bytes behind a magic gate → budget exhausted.
    let opj = pair_by_idx(7).unwrap();
    let seed = mini_j2k::Builder::new()
        .components(1)
        .tile(8, 8)
        .data(&[1, 2, 3, 4])
        .build();
    let out = run_aflfast(&target(&opj), &[seed], config(120.0));
    assert!(
        matches!(out, FuzzOutcome::BudgetExhausted { .. }),
        "opj_dump: {out:?}"
    );
}

#[test]
fn aflgo_tool_errors_on_mupdf() {
    let mupdf = pair_by_idx(8).unwrap();
    let t = target(&mupdf);
    let ep = mupdf.t.func_by_name(&mupdf.shared[0]).unwrap();
    let out = run_aflgo(&t, ep, &[vec![0u8; 8]], config(60.0));
    match out {
        FuzzOutcome::ToolError { message } => {
            assert!(message.contains("opj_read_header"), "{message}");
        }
        other => panic!("expected tool error, got {other:?}"),
    }
}

#[test]
fn aflgo_runs_but_exhausts_on_opj_dump() {
    let opj = pair_by_idx(7).unwrap();
    let t = target(&opj);
    let ep = opj.t.func_by_name(&opj.shared[0]).unwrap();
    let seed = mini_j2k::Builder::new().components(1).tile(8, 8).build();
    let out = run_aflgo(&t, ep, &[seed], config(120.0));
    assert!(
        matches!(out, FuzzOutcome::BudgetExhausted { .. }),
        "opj_dump aflgo: {out:?}"
    );
}

#[test]
fn octopocs_verifies_all_three_quickly() {
    for idx in [7u32, 8, 9] {
        let pair = pair_by_idx(idx).unwrap();
        let input = SoftwarePairInput {
            s: &pair.s,
            t: &pair.t,
            poc: &pair.poc,
            shared: &pair.shared,
        };
        let t0 = std::time::Instant::now();
        let report = verify(&input, &PipelineConfig::default());
        let secs = t0.elapsed().as_secs_f64();
        assert!(
            report.verdict.poc_generated(),
            "Idx-{idx}: {:?}",
            report.verdict
        );
        // "OctoPoCs required less than 15 min" — we are far below that.
        assert!(secs < 900.0, "Idx-{idx} took {secs}s");
    }
}
