//! End-to-end service suite: a real `octopocsd` subprocess, driven
//! through the `octopocs` client subcommands and the `octo_serve`
//! client library, must reproduce the Table II golden verdicts at every
//! worker count, converge to the same bytes after being killed
//! mid-batch and restarted on its journal, refuse submissions over
//! capacity with an explicit rejection (never a hang), and honour the
//! drain signals and numeric-flag validation of `octopocs batch`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use octo_serve::{Client, Endpoint, Request, Response};

/// The golden corpus verdicts (also pinned by `batch_golden.rs`).
const GOLDEN: &str = include_str!("golden/batch_verdicts.json");

/// The pinned metric catalogue (also pinned by `metrics_golden.rs`);
/// every `/metrics` scrape must expose exactly this key set.
const METRICS_SCHEMA: &str = include_str!("golden/metrics_schema.txt");

/// A fault plan that wedges every job's directed engine (cancellable,
/// never progressing) — the deterministic way to keep a worker busy.
const HANG_PLAN: &str = "{\"seed\":1,\"rules\":[{\"site\":\"directed-hang\",\"nth\":1}]}";

fn bin_path(name: &str) -> PathBuf {
    // The binaries live in the same target directory as this test.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/ or release/
    p.push(name);
    if !p.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "octopocs", "--bin", name])
            .status()
            .expect("cargo build");
        assert!(status.success());
    }
    p
}

/// A scratch directory holding the daemon's socket and journal.
fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("octopocs-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("workdir");
    dir
}

/// Starts `octopocsd` in `dir` and waits until its socket accepts
/// connections.
// The child is returned to the caller, which always kills or waits it;
// the lint cannot see ownership escaping through the poll loop.
#[allow(clippy::zombie_processes)]
fn start_daemon(dir: &Path, extra: &[&str]) -> (Child, PathBuf) {
    let socket = dir.join("d.sock");
    let mut child = Command::new(bin_path("octopocsd"))
        .current_dir(dir)
        .args(["--socket", "d.sock", "--journal", "d.journal"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn octopocsd");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if Client::connect(&Endpoint::Unix(socket.clone())).is_ok() {
            return (child, socket);
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("daemon never came up");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Runs an `octopocs` client subcommand against `socket`, returning
/// (exit code, stdout, stderr).
fn client(socket: &Path, args: &[&str]) -> (i32, String, String) {
    let output = Command::new(bin_path("octopocs"))
        .args(args)
        .args(["--socket", socket.to_str().expect("utf8 socket path")])
        .output()
        .expect("spawn octopocs client");
    (
        output.status.code().expect("client exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn queue_status(socket: &Path) -> octo_serve::QueueStatus {
    let mut c = Client::connect(&Endpoint::Unix(socket.to_path_buf())).expect("connect");
    match c.request(&Request::Status { id: None }).expect("status") {
        Response::Status(s) => s,
        other => panic!("unexpected status reply: {other:?}"),
    }
}

/// Corpus → daemon → golden verdicts, at 1, 2 and 8 workers. The
/// verdicts document must be byte-identical to the batch golden — the
/// daemon is just another route to the same engine.
#[test]
fn daemon_reproduces_golden_verdicts_across_worker_counts() {
    for workers in [1usize, 2, 8] {
        let dir = workdir(&format!("golden{workers}"));
        let (mut child, socket) = start_daemon(&dir, &["--workers", &workers.to_string()]);

        let (code, stdout, stderr) = client(&socket, &["submit", "--corpus"]);
        assert_eq!(code, 0, "submit failed: {stderr}");
        assert_eq!(
            stdout
                .lines()
                .filter(|l| l.starts_with("accepted "))
                .count(),
            15,
            "expected 15 accepted jobs: {stdout}"
        );

        let (code, verdicts, stderr) = client(&socket, &["results", "--wait", "--verdicts-json"]);
        assert_eq!(code, 0, "results failed: {stderr}");
        assert_eq!(
            verdicts, GOLDEN,
            "daemon verdicts drifted from the golden at {workers} worker(s)"
        );

        let (code, _, stderr) = client(&socket, &["drain"]);
        assert_eq!(code, 0, "drain failed: {stderr}");
        let status = child.wait().expect("daemon exit");
        assert_eq!(status.code(), Some(0), "daemon should exit cleanly");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill the daemon mid-batch (SIGKILL — no chance to flush anything
/// beyond what the journal already holds), restart it on the same
/// journal, and the finished document must still be byte-identical:
/// replay resubmits exactly the incomplete jobs under their original
/// ids.
#[test]
fn killed_daemon_replays_journal_and_converges() {
    let dir = workdir("replay");
    let (mut child, socket) = start_daemon(&dir, &["--workers", "1"]);

    let (code, _, stderr) = client(&socket, &["submit", "--corpus"]);
    assert_eq!(code, 0, "submit failed: {stderr}");

    // Wait until at least 3 verdicts are journaled, then kill the
    // daemon where it stands (best effort mid-batch; if the corpus
    // outran the poll, replay is simply a no-op and the bytes must
    // still match).
    let deadline = Instant::now() + Duration::from_secs(60);
    while queue_status(&socket).done < 3 {
        assert!(Instant::now() < deadline, "no progress before kill");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap daemon");

    let (mut child, socket) = start_daemon(&dir, &["--workers", "2"]);
    let (code, verdicts, stderr) = client(&socket, &["results", "--wait", "--verdicts-json"]);
    assert_eq!(code, 0, "results failed: {stderr}");
    assert_eq!(
        verdicts, GOLDEN,
        "journal replay did not converge to the golden verdicts"
    );

    let (code, _, stderr) = client(&socket, &["drain"]);
    assert_eq!(code, 0, "drain failed: {stderr}");
    assert_eq!(child.wait().expect("daemon exit").code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: an orderly drain compacts the journal. After a full
/// corpus run every job has a verdict, so the compacted journal is
/// empty, and a restart on it replays nothing.
#[test]
fn drained_daemon_compacts_its_journal() {
    let dir = workdir("compact");
    let (mut child, socket) = start_daemon(&dir, &["--workers", "2"]);

    let (code, _, stderr) = client(&socket, &["submit", "--corpus"]);
    assert_eq!(code, 0, "submit failed: {stderr}");
    let (code, verdicts, stderr) = client(&socket, &["results", "--wait", "--verdicts-json"]);
    assert_eq!(code, 0, "results failed: {stderr}");
    assert_eq!(verdicts, GOLDEN);

    let journal = dir.join("d.journal");
    let before = std::fs::metadata(&journal).expect("journal exists").len();
    assert!(before > 0, "15 jobs + 15 verdicts were journaled");

    let (code, _, stderr) = client(&socket, &["drain"]);
    assert_eq!(code, 0, "drain failed: {stderr}");
    assert_eq!(child.wait().expect("daemon exit").code(), Some(0));
    let after = std::fs::metadata(&journal).expect("journal exists").len();
    assert_eq!(
        after, 0,
        "everything finished, so the compacted journal is empty (was {before} bytes)"
    );

    // Restart on the compacted journal: nothing is restored, nothing
    // is resubmitted.
    let (mut child, socket) = start_daemon(&dir, &["--workers", "1"]);
    let status = queue_status(&socket);
    assert_eq!(status.done, 0, "no finished jobs restored");
    assert_eq!(
        status.queued_interactive + status.queued_bulk + status.running,
        0,
        "no incomplete jobs resubmitted"
    );
    let (code, _, stderr) = client(&socket, &["drain"]);
    assert_eq!(code, 0, "drain failed: {stderr}");
    assert_eq!(child.wait().expect("daemon exit").code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Backpressure is explicit: with one worker wedged on a hanging job
/// and a capacity-1 queue, the third submission is answered with a
/// `rejected` line (exit 1) — the client is never left hanging.
#[test]
fn full_queue_submission_is_rejected_not_hung() {
    let dir = workdir("backpressure");
    std::fs::write(dir.join("hang.json"), HANG_PLAN).expect("write plan");
    let (mut child, socket) = start_daemon(
        &dir,
        &[
            "--workers",
            "1",
            "--capacity",
            "1",
            "--fault-plan",
            "hang.json",
        ],
    );

    // Job 1 wedges the only worker; job 2 fills the queue.
    let submit_one = |tag: &str| {
        let mut c = Client::connect(&Endpoint::Unix(socket.clone())).expect("connect");
        let job = octopocs::batch_job_to_spec(
            &octo_corpus::all_pairs()
                .into_iter()
                .map(|p| octopocs::BatchJob {
                    name: format!("{tag} {}", p.display_name()),
                    s: p.s,
                    t: p.t,
                    poc: p.poc,
                    shared: p.shared,
                })
                .next()
                .expect("corpus pair"),
            octo_serve::Priority::Bulk,
        );
        c.request(&Request::Submit { job }).expect("submit reply")
    };
    assert!(matches!(submit_one("a"), Response::Accepted { id: 1 }));
    // Wait for the worker to pick job 1 up so the queue is truly empty.
    let deadline = Instant::now() + Duration::from_secs(30);
    while queue_status(&socket).running < 1 {
        assert!(Instant::now() < deadline, "worker never started the job");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(matches!(submit_one("b"), Response::Accepted { id: 2 }));
    match submit_one("c") {
        Response::Rejected { reason } => {
            assert!(
                reason.contains("queue full"),
                "rejection should say the queue is full: {reason}"
            );
        }
        other => panic!("third submit should be rejected, got {other:?}"),
    }

    // Shutdown cancels the wedged job; the daemon still exits cleanly.
    let (code, stdout, stderr) = client(&socket, &["drain", "--shutdown"]);
    assert_eq!(code, 0, "shutdown failed: {stderr}");
    assert!(stdout.contains("shutting down"), "ack missing: {stdout}");
    assert_eq!(child.wait().expect("daemon exit").code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `watch` streams a job's events and ends with its verdict line.
#[test]
fn watch_streams_events_until_the_verdict() {
    let dir = workdir("watch");
    let (mut child, socket) = start_daemon(&dir, &["--workers", "1"]);

    let (code, _, stderr) = client(&socket, &["submit", "--corpus"]);
    assert_eq!(code, 0, "submit failed: {stderr}");
    let (code, stdout, stderr) = client(&socket, &["watch", "--id", "1"]);
    assert_eq!(code, 0, "watch failed: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(!lines.is_empty());
    let last = Response::parse(lines.last().expect("last line")).expect("verdict line parses");
    assert!(
        matches!(&last, Response::Done { id: 1, .. }),
        "watch must end with the verdict: {last:?}"
    );

    // The daemon's metrics are fetchable over the wire and carry the
    // serve_* keys next to the engine's batch_* keys.
    let metrics_path = dir.join("metrics.json");
    let (code, _, stderr) = client(
        &socket,
        &[
            "status",
            "--metrics-json",
            metrics_path.to_str().expect("utf8"),
        ],
    );
    assert_eq!(code, 0, "status --metrics-json failed: {stderr}");
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file");
    for key in [
        "serve_admissions_total",
        "serve_queue_depth_bulk",
        "serve_queue_depth_interactive",
        "serve_uptime_seconds",
        "serve_queue_wait_micros",
        "serve_rejections_total",
        "serve_replays_total",
        "batch_jobs_total",
    ] {
        assert!(metrics.contains(key), "metrics missing {key}");
    }

    let (code, _, stderr) = client(&socket, &["drain"]);
    assert_eq!(code, 0, "drain failed: {stderr}");
    assert_eq!(child.wait().expect("daemon exit").code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Starts `octopocsd` with the octo-scope HTTP plane on an ephemeral
/// port and returns the bound address (scraped from the daemon's
/// startup banner).
#[allow(clippy::zombie_processes)]
fn start_daemon_http(dir: &Path, extra: &[&str]) -> (Child, PathBuf, String) {
    let socket = dir.join("d.sock");
    let banner = dir.join("stderr.log");
    let errlog = std::fs::File::create(&banner).expect("stderr log");
    let mut child = Command::new(bin_path("octopocsd"))
        .current_dir(dir)
        .args([
            "--socket",
            "d.sock",
            "--journal",
            "d.journal",
            "--http",
            "127.0.0.1:0",
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::from(errlog))
        .spawn()
        .expect("spawn octopocsd");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let log = std::fs::read_to_string(&banner).unwrap_or_default();
        let addr = log
            .lines()
            .find_map(|l| l.split("observability plane on http://").nth(1))
            .map(str::trim);
        if let Some(addr) = addr {
            if Client::connect(&Endpoint::Unix(socket.clone())).is_ok() {
                return (child, socket, addr.to_string());
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("daemon (with --http) never came up; banner: {log:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The metric family names advertised by a Prometheus exposition body
/// (its `# TYPE` lines), in order — and, as a side effect, a validity
/// check: every sample line must belong to the family announced above
/// it.
fn prometheus_families(body: &str) -> Vec<String> {
    let mut families = Vec::new();
    let mut current = String::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            current = rest
                .split_whitespace()
                .next()
                .unwrap_or_default()
                .to_string();
            assert!(!current.is_empty(), "empty TYPE line: {line:?}");
            families.push(current.clone());
        } else if !line.is_empty() && !line.starts_with('#') {
            let name = line
                .split(['{', ' '])
                .next()
                .expect("sample line has a name");
            assert!(
                name.starts_with(current.as_str()),
                "sample {name} outside its family {current}"
            );
            assert!(
                line.rsplit(' ').next().is_some_and(|v| !v.is_empty()),
                "sample line has no value: {line:?}"
            );
        }
    }
    families
}

fn schema_keys() -> Vec<&'static str> {
    METRICS_SCHEMA.lines().filter(|l| !l.is_empty()).collect()
}

/// Tentpole: a live daemon with `--http` serves the whole octo-scope
/// surface — health, the pinned-schema metrics, the job table, a
/// complete per-job timeline with monotonic timestamps, rate windows —
/// and answers malformed requests with structured 4xx while the JSON
/// protocol keeps working.
#[test]
fn http_plane_serves_metrics_jobs_and_timelines() {
    let dir = workdir("http");
    let (mut child, socket, addr) = start_daemon_http(&dir, &["--workers", "2"]);
    let get = |path: &str| {
        octo_serve::http_get(&addr, path, Duration::from_secs(10)).expect("http reachable")
    };

    let (status, body) = get("/healthz");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}\n"));

    let (code, _, stderr) = client(&socket, &["submit", "--corpus"]);
    assert_eq!(code, 0, "submit failed: {stderr}");
    let (code, verdicts, stderr) = client(&socket, &["results", "--wait", "--verdicts-json"]);
    assert_eq!(code, 0, "results failed: {stderr}");
    assert_eq!(verdicts, GOLDEN, "verdicts drifted under --http");

    // /metrics: exactly the pinned schema, valid exposition format.
    let (status, body) = get("/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        prometheus_families(&body),
        schema_keys(),
        "scraped key set drifted from tests/golden/metrics_schema.txt"
    );
    assert!(
        body.contains("octopocs_build_info{version=\""),
        "build info label missing: {body}"
    );

    // /jobs: queue summary plus all fifteen corpus jobs.
    let (status, body) = get("/jobs");
    assert_eq!(status, 200);
    let jobs = octo_serve::json::parse_json(&body).expect("jobs body parses");
    assert_eq!(
        jobs.get("queue")
            .and_then(|q| q.get("done"))
            .and_then(|v| v.as_u64()),
        Some(15),
        "{body}"
    );
    assert_eq!(
        jobs.get("jobs").and_then(|j| j.as_array()).map(<[_]>::len),
        Some(15),
        "{body}"
    );

    // /jobs/1: the full timeline — queue wait, at least one attempt,
    // the prepare phase span, strictly monotonic step timestamps.
    let (status, body) = get("/jobs/1");
    assert_eq!(status, 200);
    let timeline = octo_serve::json::parse_json(&body).expect("timeline parses");
    assert!(
        timeline
            .get("queue_wait_us")
            .and_then(|v| v.as_u64())
            .is_some(),
        "{body}"
    );
    assert!(
        timeline
            .get("finished_us")
            .and_then(|v| v.as_u64())
            .is_some(),
        "{body}"
    );
    let attempts = timeline
        .get("attempts")
        .and_then(|a| a.as_array())
        .expect("attempts array");
    assert_eq!(attempts.len(), 1, "healthy corpus job runs once: {body}");
    let steps = timeline
        .get("steps")
        .and_then(|s| s.as_array())
        .expect("steps array");
    assert!(!steps.is_empty(), "{body}");
    let mut last = 0u64;
    let mut phases = Vec::new();
    for step in steps {
        let at = step.get("at_us").and_then(|v| v.as_u64()).expect("at_us");
        assert!(
            at > last,
            "timeline steps must be strictly monotonic: {body}"
        );
        last = at;
        if step.get("step").and_then(|v| v.as_str()) == Some("phase") {
            phases.push(
                step.get("phase")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_string(),
            );
        }
    }
    assert!(
        phases.contains(&"prepare".to_string()),
        "prepare span missing from {phases:?}"
    );
    assert_eq!(
        steps
            .last()
            .and_then(|s| s.get("step"))
            .and_then(|v| v.as_str()),
        Some("finished"),
        "{body}"
    );

    // /metrics/rates: the sampler has been running since startup.
    let (status, body) = get("/metrics/rates");
    assert_eq!(status, 200);
    assert!(body.contains("\"windows\":["), "{body}");

    // `octopocs top` consumes the same windows end to end. The corpus
    // run above took well over a sampling interval, so windows exist.
    let top = Command::new(bin_path("octopocs"))
        .args(["top", "--http", &addr, "--json"])
        .output()
        .expect("spawn octopocs top");
    assert_eq!(
        top.status.code(),
        Some(0),
        "top failed: {}",
        String::from_utf8_lossy(&top.stderr)
    );
    let top_out = String::from_utf8_lossy(&top.stdout);
    assert!(top_out.contains("\"jobs_per_sec\":"), "{top_out}");
    assert!(top_out.contains("\"cache_hit_rate\":"), "{top_out}");

    // Structured 4xx, and the JSON protocol is unharmed afterwards.
    assert_eq!(get("/nope").0, 404);
    assert_eq!(get("/jobs/zzz").0, 400);
    assert!(
        get("/jobs/999").1.contains("\"error\""),
        "error body is JSON"
    );
    let status = queue_status(&socket);
    assert_eq!(status.done, 15, "JSON protocol must survive HTTP noise");

    let (code, _, stderr) = client(&socket, &["drain"]);
    assert_eq!(code, 0, "drain failed: {stderr}");
    assert_eq!(child.wait().expect("daemon exit").code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: concurrent `/metrics` scrapes while a corpus batch runs.
/// Every response must be complete, valid Prometheus exposition whose
/// key set matches the pinned schema — no torn writes, no partial
/// registries, no panics under scrape pressure.
#[test]
fn concurrent_scrapes_stay_complete_during_a_batch() {
    let dir = workdir("scrape");
    let (mut child, socket, addr) = start_daemon_http(&dir, &["--workers", "4"]);

    let (code, _, stderr) = client(&socket, &["submit", "--corpus"]);
    assert_eq!(code, 0, "submit failed: {stderr}");

    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut scrapes = 0usize;
                while !done.load(std::sync::atomic::Ordering::Relaxed) || scrapes == 0 {
                    let (status, body) =
                        octo_serve::http_get(&addr, "/metrics", Duration::from_secs(10))
                            .expect("scrape reachable");
                    assert_eq!(status, 200);
                    assert_eq!(
                        prometheus_families(&body),
                        schema_keys(),
                        "mid-batch scrape lost or gained keys"
                    );
                    assert!(body.ends_with('\n'), "scrape truncated");
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    let (code, verdicts, stderr) = client(&socket, &["results", "--wait", "--verdicts-json"]);
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    assert_eq!(code, 0, "results failed: {stderr}");
    assert_eq!(verdicts, GOLDEN, "verdicts drifted under scrape pressure");
    let total: usize = scrapers
        .into_iter()
        .map(|t| t.join().expect("scraper thread"))
        .sum();
    assert!(total >= 4, "every scraper completed at least one scrape");

    let (code, _, stderr) = client(&socket, &["drain"]);
    assert_eq!(code, 0, "drain failed: {stderr}");
    assert_eq!(child.wait().expect("daemon exit").code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: the first SIGTERM drains `octopocs batch` gracefully —
/// in-flight jobs wind down as cancelled, the partial report is still
/// written, and the exit code is 130.
#[test]
fn batch_drains_gracefully_on_sigterm() {
    let dir = workdir("sigterm");
    std::fs::write(dir.join("hang.json"), HANG_PLAN).expect("write plan");
    let child = Command::new(bin_path("octopocs"))
        .current_dir(&dir)
        .args([
            "batch",
            "--corpus",
            "--workers",
            "1",
            "--fault-plan",
            "hang.json",
            "--verdicts-json",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn batch");
    // Give the batch time to wedge on job 1, then ask it to drain.
    std::thread::sleep(Duration::from_millis(400));
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let output = child.wait_with_output().expect("batch exit");
    assert_eq!(
        output.status.code(),
        Some(130),
        "drained batch must exit 130; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("\"jobs\":["),
        "partial verdicts report missing: {stdout}"
    );
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("drained by signal"),
        "drain notice missing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: numeric flags are validated with clear errors (exit 3)
/// instead of spinning up a broken run.
#[test]
fn numeric_flags_are_validated() {
    let cases: &[(&[&str], &str)] = &[
        (&["batch", "--corpus", "--workers", "0"], "--workers"),
        (
            &["batch", "--corpus", "--deadline-secs", "0"],
            "--deadline-secs",
        ),
        (
            &["batch", "--corpus", "--deadline-secs", "-2"],
            "--deadline-secs",
        ),
        (
            &["batch", "--corpus", "--retry-backoff-ms", "0"],
            "--retry-backoff-ms",
        ),
        (&["scan", "--corpus", "--top-k", "0"], "--top-k"),
        (&["scan", "--corpus", "--workers", "0"], "--workers"),
    ];
    for (args, flag) in cases {
        let output = Command::new(bin_path("octopocs"))
            .args(*args)
            .output()
            .expect("spawn octopocs");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(3),
            "{args:?} must be a usage error; stderr: {stderr}"
        );
        assert!(
            stderr.contains(flag),
            "{args:?} diagnostic should name {flag}: {stderr}"
        );
    }
    // The daemon validates the same flags at startup.
    for args in [
        &["--workers", "0"][..],
        &["--capacity", "0"],
        &["--deadline-secs", "0"],
        &["--retry-backoff-ms", "0"],
    ] {
        let output = Command::new(bin_path("octopocsd"))
            .args(args)
            .output()
            .expect("spawn octopocsd");
        assert_eq!(
            output.status.code(),
            Some(3),
            "octopocsd {args:?} must be a usage error"
        );
    }
}
