//! End-to-end: exported corpus files drive the `octopocs` CLI binary and
//! reproduce the Table II verdicts through the *serialised* program
//! representation (printer → files → parser → pipeline), closing the loop
//! between the dataset, the assembler round-trip, and the tool.

use std::path::PathBuf;
use std::process::Command;

use octo_corpus::{all_pairs, Expected};
use octo_ir::printer::print_program;

fn cli_path() -> PathBuf {
    // The octopocs binary lives in the same target directory as this test.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/ or release/
    p.push("octopocs");
    p
}

#[test]
fn cli_reproduces_table2_verdicts_from_exported_files() {
    let cli = cli_path();
    if !cli.exists() {
        // The binary is built as part of the workspace; if this test runs
        // in isolation before the binary exists, build it.
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "octopocs", "--bin", "octopocs"])
            .status()
            .expect("cargo build");
        assert!(status.success());
    }
    let dir = std::env::temp_dir().join(format!("octopocs-corpus-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");

    // A representative row per verdict class (running all 15 through a
    // subprocess each would slow the suite without adding coverage).
    for idx in [1u32, 8, 10, 15] {
        let pair = all_pairs().into_iter().find(|p| p.idx == idx).expect("idx");
        let s_path = dir.join(format!("s{idx}.mir"));
        let t_path = dir.join(format!("t{idx}.mir"));
        let poc_path = dir.join(format!("poc{idx}.bin"));
        std::fs::write(&s_path, print_program(&pair.s)).expect("write s");
        std::fs::write(&t_path, print_program(&pair.t)).expect("write t");
        std::fs::write(&poc_path, pair.poc.bytes()).expect("write poc");

        let output = Command::new(&cli)
            .args([
                "--s",
                s_path.to_str().expect("utf8"),
                "--t",
                t_path.to_str().expect("utf8"),
                "--poc",
                poc_path.to_str().expect("utf8"),
                "--shared",
                &pair.shared.join(","),
                "--json",
            ])
            .output()
            .expect("spawn cli");
        let stdout = String::from_utf8_lossy(&output.stdout);
        let expected_code = match pair.expected {
            Expected::TypeI | Expected::TypeII => 0,
            Expected::TypeIII => 1,
            Expected::Failure => 2,
        };
        assert_eq!(
            output.status.code(),
            Some(expected_code),
            "Idx-{idx}: exit code mismatch; stdout: {stdout}"
        );
        assert!(
            stdout.contains(&format!("\"verdict\":\"{}\"", pair.expected.label())),
            "Idx-{idx}: verdict mismatch in {stdout}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
