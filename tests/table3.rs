//! Integration test: Table III — context-aware vs context-free taint.
//!
//! The paper: "the taint analysis technique without context information
//! failed to generate poc' in three of nine datasets, whereas
//! context-aware taint analysis successfully generated poc' for all
//! cases." The three failing rows are exactly the pairs where `S` enters
//! `ep` multiple times (flagged `multi_entry` in the corpus).

use octo_corpus::all_pairs;
use octopocs::{verify, PipelineConfig, SoftwarePairInput, Verdict};

fn run(pair: &octo_corpus::SoftwarePair, config: PipelineConfig) -> Verdict {
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    verify(&input, &config).verdict
}

#[test]
fn context_aware_succeeds_on_all_nine() {
    for pair in all_pairs()
        .into_iter()
        .filter(|p| p.expected.poc_generated())
    {
        let verdict = run(&pair, PipelineConfig::default());
        assert!(
            matches!(verdict, Verdict::Triggered { .. }),
            "Idx-{}: context-aware must verify, got {verdict:?}",
            pair.idx
        );
    }
}

#[test]
fn context_free_fails_exactly_on_multi_entry_pairs() {
    let mut failed = Vec::new();
    let mut succeeded = Vec::new();
    for pair in all_pairs()
        .into_iter()
        .filter(|p| p.expected.poc_generated())
    {
        let verdict = run(&pair, PipelineConfig::default().context_free());
        let ok = matches!(verdict, Verdict::Triggered { .. });
        if ok {
            succeeded.push(pair.idx);
        } else {
            failed.push(pair.idx);
        }
        assert_eq!(
            !ok,
            pair.multi_entry,
            "Idx-{}: context-free expected {} but verdict was {verdict:?}",
            pair.idx,
            if pair.multi_entry {
                "failure"
            } else {
                "success"
            },
        );
    }
    // Three of nine fail, as in Table III.
    assert_eq!(failed.len(), 3, "failing rows: {failed:?}");
    assert_eq!(succeeded.len(), 6);
    assert_eq!(failed, vec![3, 4, 9]);
}
