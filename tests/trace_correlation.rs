//! Span/trace correlation: every `octo_obs::Span` a batch run opens must
//! appear exactly once as a balanced `B`/`E` pair in the Chrome export,
//! regardless of worker count. The batch event stream is the ground
//! truth — each `PhaseFinished { job, phase }` event corresponds to one
//! finished span, bridged into the flight recorder by the batch runner.

use std::collections::HashMap;
use std::sync::Arc;

use octo_poc::PocFile;
use octo_sched::{EventKind, EventLog};
use octopocs::batch::{run_batch, BatchJob, BatchOptions};
use octopocs::{FlightRecorder, PipelineConfig};

const SHARED: &str = r#"
func shared(v) {
entry:
    c = eq v, 0x41
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#;

fn program(main_body: &str) -> octo_ir::Program {
    octo_ir::parse::parse_program(&format!("func main() {{\n{main_body}\n}}\n{SHARED}")).unwrap()
}

/// A mixed job set: Type-II pairs (full prepare → symex → p4 span
/// coverage), a Type-III pair, and distinct sources so several `prepare`
/// spans fire.
fn jobs() -> Vec<BatchJob> {
    let s = program("entry:\n fd = open\n b = getc fd\n call shared(b)\n halt 0");
    let s2 = program("entry:\n fd = open\n pad = getc fd\n b = getc fd\n call shared(b)\n halt 0");
    let t_gated = program(
        "entry:\n fd = open\n m = getc fd\n ok = eq m, 0x99\n br ok, go, rej\ngo:\n \
         b = getc fd\n call shared(b)\n halt 0\nrej:\n halt 1",
    );
    let t_safe = program("entry:\n halt 0");
    let mk = |name: &str, s: &octo_ir::Program, t: &octo_ir::Program, poc: &[u8]| BatchJob {
        name: name.to_string(),
        s: s.clone(),
        t: t.clone(),
        poc: PocFile::from(poc),
        shared: vec!["shared".to_string()],
    };
    vec![
        mk("gated-a", &s, &t_gated, b"A"),
        mk("safe", &s, &t_safe, b"A"),
        mk("gated-b", &s, &t_gated, b"A"),
        mk("gated-c", &s2, &t_gated, b"ZA"),
        mk("safe-2", &s2, &t_safe, b"ZA"),
        mk("gated-d", &s2, &t_gated, b"ZA"),
    ]
}

/// Extracts `(tid, name, phase)` triples from the Chrome export — enough
/// structure to count `B`/`E` pairs per worker lane without a JSON
/// parser.
fn chrome_events(text: &str) -> Vec<(u64, String, char)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\":");
            let at = line.find(&pat)? + pat.len();
            let rest = &line[at..];
            let rest = rest.strip_prefix('"').unwrap_or(rest);
            let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
            Some(rest[..end].to_string())
        };
        let (Some(ph), Some(name), Some(tid)) = (field("ph"), field("name"), field("tid")) else {
            continue;
        };
        let ph = ph.chars().next().unwrap_or('?');
        if ph == 'B' || ph == 'E' {
            out.push((tid.parse().unwrap_or(u64::MAX), name, ph));
        }
    }
    out
}

fn spans_appear_exactly_once(workers: usize) {
    let rec = Arc::new(FlightRecorder::with_default_capacity());
    let log = EventLog::new();
    let options = BatchOptions {
        workers,
        trace: Some(Arc::clone(&rec)),
        ..BatchOptions::default()
    };
    let report = run_batch(&jobs(), &PipelineConfig::default(), &options, &log);
    assert_eq!(report.entries.len(), 6);

    // Ground truth: every finished span as the event stream saw it.
    let mut expected: HashMap<&'static str, usize> = HashMap::new();
    for e in log.snapshot() {
        if let EventKind::PhaseFinished { phase, .. } = e.kind {
            *expected.entry(phase).or_default() += 1;
        }
    }
    assert!(
        expected["prepare"] >= 2,
        "two distinct sources: {expected:?}"
    );
    assert_eq!(expected["symex"], 6, "every job runs the directed engine");
    assert_eq!(expected["p4"], 4, "the four gated jobs replay poc'");

    // The export must pair them all, once each, balanced per lane.
    let chrome = octo_trace::chrome::render_chrome(&rec.snapshot());
    let stats = octo_trace::chrome::validate(&chrome).expect("valid Chrome trace");
    let parsed = chrome_events(&chrome);
    let mut begins: HashMap<String, usize> = HashMap::new();
    let mut ends: HashMap<String, usize> = HashMap::new();
    let mut lanes: HashMap<u64, i64> = HashMap::new();
    for (tid, name, ph) in &parsed {
        assert!(*tid < workers as u64, "lane {tid} out of range");
        let depth = lanes.entry(*tid).or_default();
        if *ph == 'B' {
            *begins.entry(name.clone()).or_default() += 1;
            *depth += 1;
        } else {
            *ends.entry(name.clone()).or_default() += 1;
            *depth -= 1;
        }
        assert!(*depth >= 0, "E before B on lane {tid}");
    }
    assert!(
        lanes.values().all(|d| *d == 0),
        "unbalanced lanes: {lanes:?}"
    );
    for (phase, count) in &expected {
        assert_eq!(
            begins.get(*phase as &str),
            Some(count),
            "every {phase} span opens exactly once in the export ({workers} workers)"
        );
        assert_eq!(
            ends.get(*phase as &str),
            Some(count),
            "every {phase} span closes exactly once in the export ({workers} workers)"
        );
    }
    // The validator agrees with the hand count (pairs also include
    // solver entries, which the event stream does not carry).
    let span_pairs: usize = expected.values().sum();
    assert!(stats.pairs >= span_pairs, "{} < {span_pairs}", stats.pairs);
}

#[test]
fn spans_pair_exactly_once_with_one_worker() {
    spans_appear_exactly_once(1);
}

#[test]
fn spans_pair_exactly_once_with_two_workers() {
    spans_appear_exactly_once(2);
}

#[test]
fn spans_pair_exactly_once_with_eight_workers() {
    spans_appear_exactly_once(8);
}
