//! Chaos suite: the Table II corpus under deterministic fault injection.
//!
//! The batch layer's robustness contract (see `docs/robustness.md`) is
//! that a fault in one job — a panic, a wedge, a poisoned solver — is
//! *isolated*: every other job finishes with exactly the verdict it
//! would have produced in a fault-free run, byte for byte against the
//! checked-in golden file, at any worker count. The committed plan in
//! `tests/golden/fault_plan.json` doubles as the CI chaos fixture.

use std::sync::Arc;
use std::time::Duration;

use octo_corpus::all_pairs;
use octo_faults::{FaultPlan, FaultSite, RetryPolicy};
use octo_sched::{NullSink, WatchdogConfig};
use octopocs::batch::{run_batch, BatchJob, BatchOptions, BatchReport};
use octopocs::verdict::{FailureReason, Verdict};
use octopocs::PipelineConfig;

/// The fault-free corpus verdicts CI pins (`tests/golden/batch_verdicts.json`).
const GOLDEN: &str = include_str!("golden/batch_verdicts.json");
/// The committed CI chaos plan (`--fault-plan tests/golden/fault_plan.json`).
const PLAN: &str = include_str!("golden/fault_plan.json");
/// The corpus verdicts under the committed plan, as CI diffs them.
const CHAOS_GOLDEN: &str = include_str!("golden/chaos_verdicts.json");

/// Submission indices the chaos plans target: a panicking job and a
/// wedged/poisoned job, both with unshared prefixes so the cache
/// statistics stay identical to the fault-free run.
const PANIC_JOB: usize = 2;
const FAULTED_JOB: usize = 7;

fn corpus_jobs() -> Vec<BatchJob> {
    all_pairs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.display_name(),
            s: p.s,
            t: p.t,
            poc: p.poc,
            shared: p.shared,
        })
        .collect()
}

/// Per-job lines of the stable verdict rendering (strips the wrapper).
fn job_lines(rendered: &str) -> Vec<String> {
    rendered
        .lines()
        .filter(|l| l.starts_with('{') && l.contains("\"name\""))
        .map(str::to_string)
        .collect()
}

fn run_chaos(workers: usize) -> BatchReport {
    // Nth(1) on the hang site: the wedge fires once, then the watchdog
    // escalates the token and the attempt reports `Hung`. The quiet
    // budget must comfortably exceed the longest legitimate beat gap
    // (the whole prepare phase beats only on engine entry), or healthy
    // jobs in non-polling phases pick up harmless extra escalations.
    let plan = Arc::new(
        FaultPlan::new(42)
            .nth(FaultSite::DirectedPanic, Some(PANIC_JOB as u32), 1)
            .nth(FaultSite::DirectedHang, Some(FAULTED_JOB as u32), 1),
    );
    let options = BatchOptions {
        workers,
        faults: Some(plan),
        watchdog: Some(WatchdogConfig::with_quiet(Duration::from_secs(1))),
        ..BatchOptions::default()
    };
    run_batch(
        &corpus_jobs(),
        &PipelineConfig::default(),
        &options,
        &NullSink,
    )
}

#[test]
fn injected_panic_and_hang_leave_the_other_verdicts_byte_identical() {
    let golden_lines = job_lines(GOLDEN);
    assert_eq!(golden_lines.len(), 15, "corpus golden changed shape?");
    for workers in [1usize, 2, 8] {
        let report = run_chaos(workers);
        assert_eq!(report.entries.len(), 15);

        // The panicking job degrades to an Internal verdict with a
        // synthesized post-mortem; the wedged job is escalated to Hung.
        match &report.entries[PANIC_JOB].report.verdict {
            Verdict::Failure {
                reason: FailureReason::Internal { panic_msg },
            } => assert!(panic_msg.contains("injected panic"), "{panic_msg}"),
            other => panic!("workers={workers}: expected Internal, got {other:?}"),
        }
        assert_eq!(
            report.entries[PANIC_JOB]
                .report
                .post_mortem
                .as_ref()
                .expect("panic post-mortem")
                .event,
            "panic"
        );
        assert!(matches!(
            report.entries[FAULTED_JOB].report.verdict,
            Verdict::Failure {
                reason: FailureReason::Hung
            }
        ));
        assert_eq!(report.quarantined, vec![PANIC_JOB, FAULTED_JOB]);

        // Every *other* job's stable line is byte-identical to the
        // fault-free golden run — fault isolation, not fault tolerance.
        let lines = job_lines(&report.render_verdicts_json());
        assert_eq!(lines.len(), 15);
        for (i, (got, want)) in lines.iter().zip(golden_lines.iter()).enumerate() {
            if i == PANIC_JOB || i == FAULTED_JOB {
                continue;
            }
            assert_eq!(got, want, "workers={workers}: job {i} drifted");
        }

        // The faults fired after prepare, so the cache statistics match
        // the fault-free run (10 distinct prefixes, 5 collapsed jobs).
        assert_eq!(report.cache.misses, 10, "workers={workers}");
        assert_eq!(report.cache.hits, 5, "workers={workers}");
        // At least the wedged job escalates. An escalation can also
        // harmlessly land on a healthy job inside a phase that does not
        // poll its token (e.g. the concrete P4 replay) — such a job
        // finishes normally, so only the wedge reports `Hung`.
        assert!(
            report
                .metrics
                .get_counter("batch_watchdog_fired_total")
                .expect("registered")
                .get()
                >= 1,
            "workers={workers}: the wedged job must escalate"
        );
        let hung = report
            .entries
            .iter()
            .filter(|e| {
                matches!(
                    e.report.verdict,
                    Verdict::Failure {
                        reason: FailureReason::Hung
                    }
                )
            })
            .count();
        assert_eq!(hung, 1, "workers={workers}: only the wedge hangs");
    }
}

#[test]
fn same_plan_seed_replays_byte_identical() {
    // The acceptance criterion: two runs with the same FaultPlan seed
    // produce byte-identical stable report JSON.
    let first = run_chaos(2).render_verdicts_json();
    let second = run_chaos(2).render_verdicts_json();
    assert_eq!(first, second);
}

#[test]
fn committed_fault_plan_matches_the_chaos_golden() {
    // The exact artifact CI runs: the committed plan file through the
    // corpus, diffed against the committed chaos golden.
    let plan = FaultPlan::parse_json(PLAN).expect("committed plan parses");
    assert_eq!(plan.render_json().trim(), PLAN.trim(), "plan round-trips");
    let options = BatchOptions {
        workers: 4,
        faults: Some(Arc::new(plan)),
        ..BatchOptions::default()
    };
    let report = run_batch(
        &corpus_jobs(),
        &PipelineConfig::default(),
        &options,
        &NullSink,
    );
    assert_eq!(report.render_verdicts_json(), CHAOS_GOLDEN);
    assert_eq!(report.quarantined, vec![PANIC_JOB, FAULTED_JOB]);
}

/// Satellite: the `store-rename` fault site dies between the temp-file
/// write and the atomic rename — the blob is never published. The batch
/// must not notice (verdicts golden), the orphan temp must be left on
/// disk for `gc` to sweep, and a second run over the same cache
/// directory must heal the hole.
#[test]
fn store_rename_fault_leaves_orphan_temp_and_golden_verdicts() {
    let dir = std::env::temp_dir().join(format!("octopocs-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Job 0's first disk publish dies between temp write and rename.
    let plan = Arc::new(FaultPlan::new(9).nth(FaultSite::StoreRename, Some(0), 1));
    let options = BatchOptions {
        workers: 2,
        faults: Some(plan),
        cache_dir: Some(dir.clone()),
        ..BatchOptions::default()
    };
    let report = run_batch(
        &corpus_jobs(),
        &PipelineConfig::default(),
        &options,
        &NullSink,
    );
    assert_eq!(
        report.render_verdicts_json(),
        GOLDEN,
        "a dropped blob publish must never change a verdict"
    );
    let disk = report.disk.as_ref().expect("disk stats present");
    assert!(!disk.degraded, "a skipped rename is not an I/O failure");

    // The orphan temp file survives under shards/.
    let orphans = count_files(&dir.join("shards"), |name| name.contains(".tmp-"));
    assert_eq!(orphans, 1, "exactly one orphan temp expected");

    // A clean second run heals: the unpublished key misses, recomputes,
    // republishes; every published blob hits. Verdicts stay golden.
    let options = BatchOptions {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..BatchOptions::default()
    };
    let report = run_batch(
        &corpus_jobs(),
        &PipelineConfig::default(),
        &options,
        &NullSink,
    );
    assert_eq!(report.render_verdicts_json(), GOLDEN);
    let disk = report.disk.as_ref().expect("disk stats present");
    assert_eq!(disk.corrupt, 0, "an orphan temp is not corruption");
    assert_eq!(disk.misses, 1, "only the unpublished key misses");
    assert_eq!(disk.writes, 1, "the hole is re-written");
    assert_eq!(disk.entries, 10, "all 10 distinct prefixes published");

    // gc sweeps the orphan.
    let store = octopocs::BlobStore::open(&dir);
    let swept = store.gc(None, None).temps_swept;
    assert_eq!(swept, 1, "gc sweeps the orphan temp");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recursively counts files under `root` whose name matches `pred`.
fn count_files(root: &std::path::Path, pred: fn(&str) -> bool) -> usize {
    let mut n = 0;
    let Ok(entries) = std::fs::read_dir(root) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            n += count_files(&path, pred);
        } else if path.file_name().and_then(|s| s.to_str()).is_some_and(pred) {
            n += 1;
        }
    }
    n
}

/// Satellite: SIGKILL a batch mid-run with a live `--cache-dir` — no
/// chance to flush the index or finish in-flight temp writes — then
/// restart on the same directory. The restart must not panic, must
/// treat whatever the kill left behind as a quarantine or a clean miss
/// (never an error), and must produce the golden verdict bytes.
#[test]
fn sigkilled_batch_restarts_clean_on_the_same_cache_dir() {
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("octopocs-chaos-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("workdir");
    let cache = dir.join("cache");

    let mut child = Command::new(bin_path("octopocs"))
        .args(["batch", "--corpus", "--workers", "2", "--verdicts-json"])
        .args(["--cache-dir", cache.to_str().expect("utf8 path")])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn batch");
    // Let it get partway into the corpus (and into disk writes), then
    // kill it where it stands. If the batch outran the sleep, the kill
    // is a no-op and the restart is simply a warm run.
    std::thread::sleep(Duration::from_millis(300));
    let _ = child.kill();
    let _ = child.wait();

    let output = Command::new(bin_path("octopocs"))
        .args(["batch", "--corpus", "--workers", "2", "--verdicts-json"])
        .args(["--cache-dir", cache.to_str().expect("utf8 path")])
        .output()
        .expect("restart batch");
    assert_eq!(
        output.status.code(),
        Some(0),
        "restart on a torn cache dir must exit cleanly; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&output.stdout),
        GOLDEN,
        "restart verdicts drifted from the golden"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The binaries live in the same target directory as this test.
fn bin_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/ or release/
    p.push(name);
    if !p.exists() {
        let status = std::process::Command::new(env!("CARGO"))
            .args(["build", "-p", "octopocs", "--bin", name])
            .status()
            .expect("cargo build");
        assert!(status.success());
    }
    p
}

#[test]
fn retry_rescues_the_one_shot_fault_but_not_the_persistent_one() {
    // Under the committed plan, the panic is Nth(1) — consumed by the
    // first attempt, so a retry runs clean — while the solver poisoning
    // is probability 1.0 and survives every attempt.
    let plan = FaultPlan::parse_json(PLAN).expect("committed plan parses");
    let options = BatchOptions {
        workers: 4,
        faults: Some(Arc::new(plan)),
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
            jitter_seed: 7,
        },
        ..BatchOptions::default()
    };
    let report = run_batch(
        &corpus_jobs(),
        &PipelineConfig::default(),
        &options,
        &NullSink,
    );

    let rescued = &report.entries[PANIC_JOB];
    assert_eq!(rescued.report.attempts, 2);
    assert!(!rescued.quarantined);
    let golden_lines = job_lines(GOLDEN);
    // The rescued job recovers its fault-free verdict (the stable line
    // differs only in the attempt count).
    assert_eq!(
        job_lines(&report.render_verdicts_json())[PANIC_JOB]
            .replace("\"attempts\":2", "\"attempts\":1"),
        golden_lines[PANIC_JOB]
    );

    let poisoned = &report.entries[FAULTED_JOB];
    assert_eq!(poisoned.report.attempts, 2);
    assert!(poisoned.quarantined);
    assert!(matches!(
        poisoned.report.verdict,
        Verdict::Failure {
            reason: FailureReason::Injected {
                site: "solver-solve"
            }
        }
    ));
    assert_eq!(report.quarantined, vec![FAULTED_JOB]);
    assert_eq!(
        report
            .metrics
            .get_counter("batch_retries_total")
            .expect("registered")
            .get(),
        2,
        "both faulted jobs spent their one retry"
    );
}
