//! Warm-start suite for the disk-backed artifact cache (`octo-store`):
//! a second corpus run over the same `--cache-dir` must produce
//! byte-identical verdicts with a ≥ 90% prepare-phase hit rate, and an
//! unusable cache directory must degrade the whole run to memory-only —
//! exit 0, all verdicts intact, one warning.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The fault-free corpus verdicts CI pins (`tests/golden/batch_verdicts.json`).
const GOLDEN: &str = include_str!("golden/batch_verdicts.json");

/// The binaries live in the same target directory as this test.
fn bin_path(name: &str) -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/ or release/
    p.push(name);
    if !p.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "octopocs", "--bin", name])
            .status()
            .expect("cargo build");
        assert!(status.success());
    }
    p
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("octopocs-warm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("workdir");
    dir
}

/// Runs `octopocs batch --corpus --verdicts-json --cache-dir <cache>`,
/// dumping metrics beside it. Returns (exit code, stdout, stderr).
fn run_batch(cache: &Path, metrics: &Path) -> (i32, String, String) {
    let output = Command::new(bin_path("octopocs"))
        .args(["batch", "--corpus", "--workers", "2", "--verdicts-json"])
        .args(["--cache-dir", cache.to_str().expect("utf8 path")])
        .args(["--metrics-json", metrics.to_str().expect("utf8 path")])
        .output()
        .expect("spawn batch");
    (
        output.status.code().expect("batch exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Pulls one counter/gauge value out of the metrics JSON dump.
fn metric(metrics_json: &str, name: &str) -> u64 {
    let tag = format!("\"name\":\"{name}\",");
    let line = metrics_json
        .lines()
        .find(|l| l.contains(&tag))
        .unwrap_or_else(|| panic!("metric {name} missing from dump"));
    let at = line.find("\"value\":").expect("value field") + "\"value\":".len();
    line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer metric value")
}

/// Cold run fills the store, warm run reads it back: verdict bytes are
/// identical to the golden both times, and the warm run's prepare-phase
/// hit rate (memory + disk hits over jobs) is at least 90%.
#[test]
fn warm_run_is_byte_identical_with_high_hit_rate() {
    let dir = workdir("golden");
    let cache = dir.join("cache");

    let (code, cold, stderr) = run_batch(&cache, &dir.join("cold.json"));
    assert_eq!(code, 0, "cold run failed: {stderr}");
    assert_eq!(cold, GOLDEN, "cold verdicts drifted from the golden");
    let cold_metrics = std::fs::read_to_string(dir.join("cold.json")).expect("cold metrics");
    assert_eq!(
        metric(&cold_metrics, "cache_disk_hits_total"),
        0,
        "an empty store cannot hit"
    );
    assert_eq!(
        metric(&cold_metrics, "cache_disk_writes_total"),
        10,
        "every distinct prefix is published once"
    );

    let (code, warm, stderr) = run_batch(&cache, &dir.join("warm.json"));
    assert_eq!(code, 0, "warm run failed: {stderr}");
    assert_eq!(warm, cold, "warm verdicts must be byte-identical");
    let warm_metrics = std::fs::read_to_string(dir.join("warm.json")).expect("warm metrics");
    let disk_hits = metric(&warm_metrics, "cache_disk_hits_total");
    let mem_hits = metric(&warm_metrics, "cache_hits_total");
    let jobs = metric(&warm_metrics, "batch_jobs_total");
    assert_eq!(jobs, 15);
    assert!(
        (mem_hits + disk_hits) * 10 >= jobs * 9,
        "prepare-phase hit rate below 90%: {mem_hits} memory + {disk_hits} disk of {jobs}"
    );
    assert_eq!(disk_hits, 10, "every distinct prefix comes off disk warm");
    assert_eq!(
        metric(&warm_metrics, "cache_disk_corrupt_total"),
        0,
        "a clean store has nothing to quarantine"
    );
    assert_eq!(metric(&warm_metrics, "cache_disk_degraded"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unusable `--cache-dir` (a regular file where the directory should
/// be) degrades the run to memory-only: exit 0, golden verdicts, the
/// degraded gauge set, and a single stderr warning.
#[test]
fn unusable_cache_dir_degrades_to_memory_only() {
    let dir = workdir("degrade");
    let blocker = dir.join("not-a-dir");
    std::fs::write(&blocker, b"occupied").expect("blocker file");

    let (code, stdout, stderr) = run_batch(&blocker, &dir.join("metrics.json"));
    assert_eq!(code, 0, "degraded run must still exit 0: {stderr}");
    assert_eq!(stdout, GOLDEN, "all 15 verdicts intact without the disk");
    let metrics = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics");
    assert_eq!(metric(&metrics, "cache_disk_degraded"), 1);
    assert_eq!(metric(&metrics, "cache_disk_hits_total"), 0);
    assert_eq!(metric(&metrics, "cache_disk_writes_total"), 0);
    assert!(
        stderr.contains("degrad"),
        "one-time degrade warning missing: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flip one bit in one published blob: `octopocs cache verify` reports
/// exactly that entry as corrupt (exit 1), and the next batch over the
/// same directory quarantines it, recomputes, and still matches the
/// golden — corruption can never change a verdict.
#[test]
fn bit_flipped_blob_is_quarantined_and_verdicts_hold() {
    let dir = workdir("bitflip");
    let cache = dir.join("cache");

    let (code, _, stderr) = run_batch(&cache, &dir.join("m0.json"));
    assert_eq!(code, 0, "cold run failed: {stderr}");

    // Flip a payload bit in the lexicographically first blob.
    let blob = first_blob(&cache.join("shards")).expect("a published blob");
    let mut bytes = std::fs::read(&blob).expect("read blob");
    let at = bytes.len() - 1;
    bytes[at] ^= 0x10;
    std::fs::write(&blob, &bytes).expect("write flipped blob");

    let verify = Command::new(bin_path("octopocs"))
        .args(["cache", "verify", "--cache-dir"])
        .arg(&cache)
        .output()
        .expect("spawn cache verify");
    assert_eq!(
        verify.status.code(),
        Some(1),
        "verify must fail on a corrupt store"
    );
    let report = String::from_utf8_lossy(&verify.stdout);
    assert_eq!(
        report.lines().filter(|l| l.starts_with("corrupt:")).count(),
        1,
        "exactly one corrupt entry: {report}"
    );

    let (code, stdout, stderr) = run_batch(&cache, &dir.join("m1.json"));
    assert_eq!(code, 0, "post-corruption run failed: {stderr}");
    assert_eq!(stdout, GOLDEN, "corruption changed a verdict");
    let metrics = std::fs::read_to_string(dir.join("m1.json")).expect("metrics");
    assert_eq!(metric(&metrics, "cache_disk_corrupt_total"), 1);
    assert_eq!(metric(&metrics, "cache_disk_quarantined_total"), 1);
    assert_eq!(
        metric(&metrics, "cache_disk_writes_total"),
        1,
        "the quarantined key is recomputed and re-published"
    );
    let quarantined = std::fs::read_dir(cache.join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(quarantined, 1, "the bad blob moved to quarantine/");
    let _ = std::fs::remove_dir_all(&dir);
}

/// First `.blob` file under `root`, in sorted walk order.
fn first_blob(root: &Path) -> Option<PathBuf> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)
        .ok()?
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            if let Some(found) = first_blob(&entry) {
                return Some(found);
            }
        } else if entry.extension().is_some_and(|e| e == "blob") {
            return Some(entry);
        }
    }
    None
}
