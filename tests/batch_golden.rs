//! Batch verification over the Table II corpus: the scheduled, cached
//! batch must produce exactly the verdicts of the sequential pipeline
//! (checked both against `verify` run pair-by-pair and against the
//! checked-in golden file CI diffs), and the artifact cache must collapse
//! the corpus's shared `(S, poc, ℓ)` groups into single P1 runs.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::Command;

use octo_corpus::all_pairs;
use octo_ir::printer::print_program;
use octo_sched::NullSink;
use octopocs::batch::{prefix_cache_key, run_batch, BatchJob, BatchOptions};
use octopocs::{verify, PipelineConfig, SoftwarePairInput};

const GOLDEN: &str = include_str!("golden/batch_verdicts.json");

fn corpus_jobs() -> Vec<BatchJob> {
    all_pairs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.display_name(),
            s: p.s,
            t: p.t,
            poc: p.poc,
            shared: p.shared,
        })
        .collect()
}

#[test]
fn batch_over_corpus_matches_the_golden_file() {
    let jobs = corpus_jobs();
    let config = PipelineConfig::default();
    let report = run_batch(
        &jobs,
        &config,
        &BatchOptions {
            workers: 4,
            ..BatchOptions::default()
        },
        &NullSink,
    );
    assert_eq!(report.render_verdicts_json(), GOLDEN);

    // The corpus shares sources: {1,2}, {6,14}, {7,13}, {10,11,12} — so a
    // full run must show exactly as many misses as distinct prefix keys,
    // and one hit per collapsed job.
    let distinct: HashSet<u64> = jobs
        .iter()
        .map(|j| prefix_cache_key(&j.s, &j.poc, &j.shared, &config))
        .collect();
    assert_eq!(distinct.len(), 10, "corpus sharing structure changed?");
    assert_eq!(report.cache.misses, distinct.len() as u64);
    assert_eq!(report.cache.hits, (jobs.len() - distinct.len()) as u64);
    assert_eq!(report.cache.entries, distinct.len() as u64);
}

#[test]
fn batch_verdicts_match_sequential_verify_for_every_pair() {
    let jobs = corpus_jobs();
    let config = PipelineConfig::default();
    let report = run_batch(
        &jobs,
        &config,
        &BatchOptions {
            workers: 8,
            ..BatchOptions::default()
        },
        &NullSink,
    );
    assert_eq!(report.entries.len(), jobs.len());
    for (entry, job) in report.entries.iter().zip(jobs.iter()) {
        let input = SoftwarePairInput {
            s: &job.s,
            t: &job.t,
            poc: &job.poc,
            shared: &job.shared,
        };
        let sequential = verify(&input, &config);
        assert_eq!(
            entry.report.verdict.type_label(),
            sequential.verdict.type_label(),
            "{}: batch and sequential verdicts diverge",
            job.name
        );
        assert_eq!(
            entry.report.verdict.poc_generated(),
            sequential.verdict.poc_generated(),
            "{}",
            job.name
        );
    }
}

#[test]
fn two_targets_of_one_source_share_a_single_p1_run() {
    // Idx 10 and 11 are both tiffsplit → {opj_compress, libsdl2} under the
    // same PoC, so the batch pays for preprocessing + P1 exactly once.
    let jobs: Vec<BatchJob> = corpus_jobs().into_iter().skip(9).take(2).collect();
    assert!(jobs[0].name.starts_with("idx10"), "{}", jobs[0].name);
    assert!(jobs[1].name.starts_with("idx11"), "{}", jobs[1].name);
    let report = run_batch(
        &jobs,
        &PipelineConfig::default(),
        &BatchOptions {
            workers: 2,
            ..BatchOptions::default()
        },
        &NullSink,
    );
    assert_eq!(report.cache.misses, 1, "P1 must run exactly once");
    assert_eq!(report.cache.hits, 1);
    assert!(report.entries[0].report.p1_insts > 0);
    assert_eq!(
        report.entries[0].report.p1_insts, report.entries[1].report.p1_insts,
        "both entries must carry the one shared P1 artifact"
    );
    assert_eq!(
        report.entries.iter().filter(|e| e.cache_hit).count(),
        1,
        "exactly one of the two jobs hits"
    );
}

fn cli_path() -> PathBuf {
    // The octopocs binary lives in the same target directory as this test.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/ or release/
    p.push("octopocs");
    p
}

fn ensure_cli() -> PathBuf {
    let cli = cli_path();
    if !cli.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "octopocs", "--bin", "octopocs"])
            .status()
            .expect("cargo build");
        assert!(status.success());
    }
    cli
}

#[test]
fn cli_batch_runs_a_job_file_with_events() {
    let cli = ensure_cli();
    let dir = std::env::temp_dir().join(format!("octopocs-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");

    // Export idx10 and idx11 (shared source) as a two-line job file.
    let mut lines = String::from("# exported from the corpus\n");
    for pair in all_pairs()
        .into_iter()
        .filter(|p| [10, 11].contains(&p.idx))
    {
        let s_path = dir.join(format!("s{}.mir", pair.idx));
        let t_path = dir.join(format!("t{}.mir", pair.idx));
        let poc_path = dir.join(format!("poc{}.bin", pair.idx));
        std::fs::write(&s_path, print_program(&pair.s)).expect("write s");
        std::fs::write(&t_path, print_program(&pair.t)).expect("write t");
        std::fs::write(&poc_path, pair.poc.bytes()).expect("write poc");
        lines.push_str(&format!(
            "job{} {} {} {} {}\n",
            pair.idx,
            s_path.display(),
            t_path.display(),
            poc_path.display(),
            pair.shared.join(",")
        ));
    }
    let jobs_path = dir.join("jobs.txt");
    std::fs::write(&jobs_path, lines).expect("write job file");

    let output = Command::new(&cli)
        .args([
            "batch",
            "--jobs",
            jobs_path.to_str().expect("utf8"),
            "--workers",
            "2",
            "--json",
            "--events",
        ])
        .output()
        .expect("spawn cli");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("\"name\":\"job10\",\"verdict\":\"Type-III\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"hits\":1"), "{stdout}");
    // --events streams the lifecycle to stderr.
    assert!(stderr.contains("start"), "{stderr}");
    assert!(stderr.contains("done"), "{stderr}");
    assert!(stderr.contains("cache"), "{stderr}");

    // Usage errors exit 3.
    let bad = Command::new(&cli)
        .args(["batch", "--workers", "2"])
        .output()
        .expect("spawn cli");
    assert_eq!(bad.status.code(), Some(3));

    let _ = std::fs::remove_dir_all(&dir);
}
