//! Pipeline-level ablation tests for the design decisions in DESIGN.md §5.

use octo_corpus::pair_by_idx;
use octopocs::{verify, NotTriggerableReason, PipelineConfig, SoftwarePairInput, Verdict};

fn run(idx: u32, config: PipelineConfig) -> Verdict {
    let pair = pair_by_idx(idx).expect("pair");
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    verify(&input, &config).verdict
}

#[test]
fn static_cfg_loses_the_mupdf_verdict() {
    // §IV-B: the dynamic CFG is the default because only it contains
    // indirect edges. With the static CFG, MuPDF's dispatch edge is
    // missing, `ep` looks unreachable, and the pipeline wrongly concludes
    // Type-III — the vulnerability IS triggerable (Table II says Type-II).
    let dynamic = run(8, PipelineConfig::default());
    assert!(
        matches!(dynamic, Verdict::Triggered { .. }),
        "dynamic CFG must verify MuPDF: {dynamic:?}"
    );
    let static_ = run(8, PipelineConfig::default().static_cfg());
    assert!(
        matches!(
            static_,
            Verdict::NotTriggerable {
                reason: NotTriggerableReason::EpNotCalled
            }
        ),
        "static CFG must miss the indirect path: {static_:?}"
    );
}

#[test]
fn static_cfg_is_sufficient_without_indirection() {
    // On targets with only direct control flow the two modes agree.
    for idx in [1u32, 6, 9] {
        let dynamic = run(idx, PipelineConfig::default());
        let static_ = run(idx, PipelineConfig::default().static_cfg());
        assert_eq!(
            dynamic.type_label(),
            static_.type_label(),
            "Idx-{idx}: CFG modes disagree"
        );
    }
}

#[test]
fn tiny_theta_breaks_the_loop_heavy_pair() {
    // gif2png's first image block needs ~40 copy-loop iterations inside ℓ
    // at the first ep entry; θ=4 cannot cover them and verification
    // degrades from the correct Type-II.
    let generous = run(9, PipelineConfig::default());
    assert!(
        matches!(generous, Verdict::Triggered { .. }),
        "θ=120 must verify gif2png: {generous:?}"
    );
    let starved = run(9, PipelineConfig::default().with_theta(4));
    assert!(
        !matches!(starved, Verdict::Triggered { .. }),
        "θ=4 should not verify the 40-iteration block copy: {starved:?}"
    );
}

#[test]
fn theta_does_not_matter_for_straight_line_pairs() {
    // Pairs whose paths to ep are loop-free verify identically at any θ.
    for theta in [2u32, 120] {
        let verdict = run(5, PipelineConfig::default().with_theta(theta));
        assert!(
            matches!(verdict, Verdict::Triggered { .. }),
            "Idx-5 at θ={theta}: {verdict:?}"
        );
    }
}

#[test]
fn word_level_taint_bloats_primitives_on_partial_buffer_use() {
    // DESIGN.md §5 decision 5 / paper §IV-A: byte-level tainting is
    // required for precision. The effect shows whenever ℓ consumes only a
    // *subset* of an uploaded buffer: word-level grouping drags the
    // untouched neighbours into the bunch. (The corpus ℓ functions consume
    // their whole header buffers, so this uses a dedicated S.)
    use octo_ir::parse::parse_program;
    use octo_poc::PocFile;
    use octo_taint::{extract_crash_primitives, TaintConfig};
    let s = parse_program(
        r#"
func main() {
entry:
    fd = open
    buf = alloc 8
    n = read fd, buf, 8
    call shared(buf)
    halt 0
}
func shared(p) {
entry:
    v = load.1 p + 2
    c = eq v, 0x7F
    br c, boom, fine
boom:
    trap 1
fine:
    ret
}
"#,
    )
    .expect("parses");
    let poc = PocFile::from(&[0u8, 1, 0x7F, 3, 4, 5, 6, 7][..]);
    let ep = s.func_by_name("shared").unwrap();
    let byte = extract_crash_primitives(&s, &poc, &TaintConfig::new(ep, vec![ep]))
        .expect("byte-level extraction");
    let word = extract_crash_primitives(&s, &poc, &TaintConfig::new(ep, vec![ep]).word_level())
        .expect("word-level extraction");
    assert_eq!(byte.primitives.total_bytes(), 1, "byte-level is precise");
    assert!(
        word.primitives.total_bytes() > byte.primitives.total_bytes(),
        "word-level must over-taint: {} vs {}",
        word.primitives.total_bytes(),
        byte.primitives.total_bytes()
    );
}

#[test]
fn loop_acceleration_rescues_starved_theta() {
    // The §III-D future-work extension at pipeline level: with θ starved
    // below gif2png's 40-iteration block copy, plain directed execution
    // fails, but loop acceleration makes the forced copy-loop branches
    // free and the verdict returns.
    let starved = run(9, PipelineConfig::default().with_theta(4));
    assert!(
        !matches!(starved, Verdict::Triggered { .. }),
        "θ=4 without acceleration: {starved:?}"
    );
    let rescued = run(
        9,
        PipelineConfig::default().with_theta(4).accelerate_loops(),
    );
    assert!(
        matches!(rescued, Verdict::Triggered { .. }),
        "θ=4 with acceleration: {rescued:?}"
    );
}

#[test]
fn loop_acceleration_does_not_change_correct_verdicts() {
    // Acceleration is an optimisation, not a semantics change: every
    // corpus row classifies identically with it enabled.
    for pair in octo_corpus::all_pairs() {
        let input = SoftwarePairInput {
            s: &pair.s,
            t: &pair.t,
            poc: &pair.poc,
            shared: &pair.shared,
        };
        let plain = verify(&input, &PipelineConfig::default());
        let accel = verify(&input, &PipelineConfig::default().accelerate_loops());
        assert_eq!(
            plain.verdict.type_label(),
            accel.verdict.type_label(),
            "Idx-{}: acceleration changed the verdict",
            pair.idx
        );
    }
}
