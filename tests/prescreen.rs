//! Integration test: the P0 static pre-screen is verdict-preserving.
//!
//! With `PipelineConfig::static_prescreen` enabled, every Table II pair
//! must keep its exact paper classification (Type I/II/III/Failure, and
//! `poc'` generated exactly for Idx 1–9) — P0 may only *shortcut* work,
//! never change an answer. At least one Type-III pair must be decided in
//! P0 without any symbolic execution, and the shipped corpus must lint
//! clean of error-severity diagnostics.

use octo_corpus::all_pairs;
use octopocs::{verify, PipelineConfig, SoftwarePairInput, Verdict};

fn verify_pair(
    pair: &octo_corpus::SoftwarePair,
    config: &PipelineConfig,
) -> octopocs::VerificationReport {
    let input = SoftwarePairInput {
        s: &pair.s,
        t: &pair.t,
        poc: &pair.poc,
        shared: &pair.shared,
    };
    verify(&input, config)
}

#[test]
fn prescreen_preserves_every_table2_verdict() {
    let config = PipelineConfig::default().with_static_prescreen();
    let mut decided_statically = 0u32;
    for pair in all_pairs() {
        let report = verify_pair(&pair, &config);
        assert_eq!(
            report.verdict.type_label(),
            pair.expected.label(),
            "Idx-{} ({} → {}): prescreen changed the verdict to {:?}",
            pair.idx,
            pair.s_name,
            pair.t_name,
            report.verdict,
        );
        assert_eq!(
            report.verdict.poc_generated(),
            pair.expected.poc_generated(),
            "Idx-{}: poc' column mismatch under prescreen",
            pair.idx
        );
        assert_eq!(
            report.verdict.verified(),
            pair.expected.verified(),
            "Idx-{}: verification column mismatch under prescreen",
            pair.idx
        );
        if report.prescreen {
            // P0 verdicts are always Type-III and never run symex.
            assert!(
                matches!(report.verdict, Verdict::NotTriggerable { .. }),
                "Idx-{}: P0 decided a non-Type-III verdict",
                pair.idx
            );
            assert!(
                report.symex_stats.is_none(),
                "Idx-{}: P0 decided the pair but symex still ran",
                pair.idx
            );
            decided_statically += 1;
        }
    }
    assert!(
        decided_statically >= 1,
        "no Type-III pair was decided statically in P0"
    );
}

#[test]
fn prescreen_off_reports_flag_unset() {
    for pair in all_pairs() {
        let report = verify_pair(&pair, &PipelineConfig::default());
        assert!(
            !report.prescreen,
            "Idx-{}: prescreen flag set with the phase disabled",
            pair.idx
        );
    }
}

#[test]
fn shipped_corpus_lints_without_errors() {
    for pair in all_pairs() {
        for (name, program) in [(&pair.s_name, &pair.s), (&pair.t_name, &pair.t)] {
            let report = octo_lint::lint_program(program);
            assert_eq!(
                report.error_count(),
                0,
                "Idx-{} {}: error-severity diagnostics:\n{}",
                pair.idx,
                name,
                report.render_human()
            );
        }
    }
}
