//! Metrics over the Table II corpus: the key *set* is pinned by a golden
//! schema file (values are wall-clock-volatile and therefore never
//! compared), and the deterministic counters — job totals, verdict
//! tallies, cache traffic, per-phase instruction counts — must be exact
//! and identical across runs, whatever the worker count.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

use octo_corpus::all_pairs;
use octo_sched::NullSink;
use octopocs::batch::{run_batch, BatchJob, BatchOptions, BatchReport};
use octopocs::PipelineConfig;

const SCHEMA: &str = include_str!("golden/metrics_schema.txt");

fn corpus_jobs() -> Vec<BatchJob> {
    all_pairs()
        .into_iter()
        .map(|p| BatchJob {
            name: p.display_name(),
            s: p.s,
            t: p.t,
            poc: p.poc,
            shared: p.shared,
        })
        .collect()
}

fn run_corpus(workers: usize) -> BatchReport {
    run_batch(
        &corpus_jobs(),
        &PipelineConfig::default(),
        &BatchOptions {
            workers,
            ..BatchOptions::default()
        },
        &NullSink,
    )
}

fn schema_names() -> Vec<&'static str> {
    SCHEMA.lines().filter(|l| !l.is_empty()).collect()
}

#[test]
fn metric_key_set_matches_the_golden_schema() {
    let report = run_corpus(4);
    let names = report.metrics.names();
    assert_eq!(
        names,
        schema_names(),
        "metric catalogue drifted — update tests/golden/metrics_schema.txt, \
         docs/observability.md and the CI schema diff together"
    );
    // The JSON rendering carries exactly the schema'd keys, in order.
    let json = report.metrics.render_json();
    let mut seen = Vec::new();
    for part in json.split("\"name\":\"").skip(1) {
        seen.push(part.split('"').next().unwrap().to_string());
    }
    assert_eq!(seen, names);
}

#[test]
fn corpus_counters_are_exact_and_deterministic() {
    let report = run_corpus(4);
    let m = &report.metrics;
    let counter = |name: &str| m.get_counter(name).expect(name).get();

    // 15 pairs; sources are shared {1,2}, {6,14}, {7,13}, {10,11,12} →
    // 10 distinct prefixes (see tests/batch_golden.rs).
    assert_eq!(counter("batch_jobs_total"), 15);
    assert_eq!(counter("cache_misses_total"), 10);
    assert_eq!(counter("cache_hits_total"), 5);
    let verdicts = counter("batch_verdict_type_i_total")
        + counter("batch_verdict_type_ii_total")
        + counter("batch_verdict_type_iii_total")
        + counter("batch_verdict_failure_total");
    assert_eq!(verdicts, 15, "every job lands in exactly one bucket");
    assert_eq!(counter("batch_prescreen_decided_total"), 0, "P0 is opt-in");

    // Phase totals line up with the per-entry reports.
    assert!(counter("pipeline_p1_insts_total") > 0);
    assert!(counter("pipeline_p4_insts_total") > 0);
    assert!(counter("taint_bytes_uploaded_total") > 0);
    assert!(counter("symex_steps_total") > 0);
    assert!(counter("solver_calls_total") > 0);
    let steps: u64 = report
        .entries
        .iter()
        .filter_map(|e| e.report.symex_stats.as_ref())
        .map(|s| s.total_steps)
        .sum();
    assert_eq!(counter("symex_steps_total"), steps);

    // Per-phase wall-time histograms: every job pays a prefix, only the
    // jobs that ran a phase appear in its histogram.
    let hist_count = |name: &str| m.get_histogram(name).expect(name).count();
    assert_eq!(hist_count("job_wall_micros"), 15);
    assert_eq!(hist_count("job_queue_latency_micros"), 15);
    assert_eq!(hist_count("phase_p1_micros"), 15);
    let symex_jobs = report
        .entries
        .iter()
        .filter(|e| e.report.symex_stats.is_some())
        .count() as u64;
    assert!(symex_jobs > 0);
    assert_eq!(hist_count("phase_p2p3_micros"), symex_jobs);
    let p4_jobs = report
        .entries
        .iter()
        .filter(|e| e.report.p4_insts > 0)
        .count() as u64;
    assert!(p4_jobs > 0, "some pair reaches the concrete P4 replay");
    assert_eq!(hist_count("phase_p4_micros"), p4_jobs);

    // Deterministic counters are identical across runs and worker
    // counts (scheduler counters are the exception: steal traffic
    // depends on worker interleaving).
    let again = run_corpus(1);
    for name in again.metrics.names() {
        if name.starts_with("sched_") {
            continue;
        }
        if let Some(c) = again.metrics.get_counter(&name) {
            assert_eq!(
                c.get(),
                counter(&name),
                "{name} differs between 1-worker and 4-worker runs"
            );
        }
    }
}

fn cli_path() -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/ or release/
    p.push("octopocs");
    p
}

fn ensure_cli() -> PathBuf {
    let cli = cli_path();
    if !cli.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "octopocs", "--bin", "octopocs"])
            .status()
            .expect("cargo build");
        assert!(status.success());
    }
    cli
}

#[test]
fn cli_metrics_exports_match_the_schema() {
    let cli = ensure_cli();
    let dir = std::env::temp_dir().join(format!("octopocs-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("workdir");
    let json_path = dir.join("metrics.json");
    let prom_path = dir.join("metrics.prom");

    let output = Command::new(&cli)
        .args([
            "batch",
            "--corpus",
            "--workers",
            "4",
            "--verdicts-json",
            "--metrics-json",
            json_path.to_str().expect("utf8"),
            "--metrics-prom",
            prom_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn cli");
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The JSON export names exactly the schema'd metrics.
    let json = std::fs::read_to_string(&json_path).expect("metrics json written");
    let mut names = BTreeSet::new();
    for part in json.split("\"name\":\"").skip(1) {
        names.insert(part.split('"').next().unwrap().to_string());
    }
    let expected: BTreeSet<String> = schema_names().iter().map(|s| s.to_string()).collect();
    assert_eq!(names, expected, "{json}");
    assert!(!json.contains("NaN"), "{json}");
    assert!(json.contains("\"p50\":"), "{json}");

    // The Prometheus export types every metric and renders cumulative
    // histogram buckets.
    let prom = std::fs::read_to_string(&prom_path).expect("metrics prom written");
    for name in schema_names() {
        assert!(prom.contains(&format!("# TYPE {name} ")), "{name}");
    }
    assert!(prom.contains("le=\"+Inf\""), "{prom}");

    let _ = std::fs::remove_dir_all(&dir);
}
